//! A minimal, dependency-free HTTP/1.1 server for live observability.
//!
//! Built on `std::net::TcpListener` with a thread-per-connection model
//! behind a bounded concurrency gate: the accept loop runs on one
//! background thread, each accepted connection is handled on its own
//! short-lived thread, and connections beyond the cap are answered
//! `503` instead of queueing unboundedly. Shutdown is graceful — the
//! guard sets a flag, wakes the accept loop with a loopback
//! connection, joins it, runs any [`ServerBuilder::on_shutdown`]
//! hooks, and flushes the installed telemetry sink so buffered JSONL
//! events reach disk before the process exits.
//!
//! Every server answers three built-in routes:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4
//!   ([`crate::expose::render_prometheus`]);
//! * `GET /healthz` — `200 ok` liveness probe;
//! * `GET /summary.json` — the JSON registry summary.
//!
//! Additional routes (e.g. the serving path's `POST /decide`) are
//! registered through [`ServerBuilder::route`]. Each request also
//! feeds `http.requests` / `http.request.ns` registry metrics, so the
//! server observes itself.
//!
//! The server is hardened against hostile clients: request bodies are
//! capped ([`ServerBuilder::max_body_bytes`], `413`), stalled reads
//! time out ([`ServerBuilder::request_timeout`], `408`), every
//! server-generated failure is a structured JSON body
//! (`{"error": …, "status": …}`, see [`Response::error`]), and a
//! panicking handler is contained to a `500` plus an `http.panics`
//! counter instead of tearing down the connection.
//!
//! Requests carry an identity: a client-supplied `X-Request-Id` is
//! validated ([`valid_request_id`]; malformed ids are rejected with a
//! structured `422` before any handler runs) and echoed on every
//! response, including error responses generated after the headers
//! were parsed (oversized body, truncated body, non-UTF-8 body).
//! Handlers can stamp their own id (e.g. a minted one) via
//! [`Response::with_header`]; the echo only fills the gap.
//!
//! # Example
//!
//! ```
//! use hvac_telemetry::http::{HttpServer, Response};
//!
//! let server = HttpServer::builder()
//!     .route("GET", "/hello", |_req| Response::text(200, "hi"))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! let (status, body) =
//!     hvac_telemetry::http::blocking_request(server.addr(), "GET", "/hello", "").unwrap();
//! assert_eq!((status, body.as_str()), (200, "hi"));
//! server.shutdown();
//! ```

use crate::registry::{counter, histogram, LATENCY_BOUNDS_NS};
use crate::{expose, Level};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum concurrently handled connections before `503` shedding.
const MAX_INFLIGHT: usize = 64;
/// Default per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Maximum accepted request header block.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default maximum accepted request body.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// Per-server request limits, configurable on [`ServerBuilder`].
#[derive(Debug, Clone, Copy)]
struct Limits {
    max_body_bytes: usize,
    request_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_body_bytes: MAX_BODY_BYTES,
            request_timeout: IO_TIMEOUT,
        }
    }
}

/// Header carrying the per-request trace id (client-supplied or
/// minted by the server; always echoed on the response).
pub const REQUEST_ID_HEADER: &str = "X-Request-Id";

/// Longest accepted client-supplied request id, matching
/// [`crate::ring::MAX_TRACE_ID_BYTES`].
pub const MAX_REQUEST_ID_BYTES: usize = 128;

/// A valid request id is 1–128 bytes of printable ASCII with no
/// spaces (`0x21..=0x7E`) — safe to embed verbatim in JSON, JSONL
/// audit records, and Prometheus-adjacent text without escaping
/// surprises.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_REQUEST_ID_BYTES
        && id.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/decide`).
    pub path: String,
    /// Request headers in arrival order (names as sent; values
    /// trimmed). Lookup via [`Request::header`].
    pub headers: Vec<(String, String)>,
    /// Request body (empty when none was sent).
    pub body: String,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The client-supplied `X-Request-Id`, if any (not validated).
    pub fn request_id(&self) -> Option<&str> {
        self.header(REQUEST_ID_HEADER)
    }
}

/// An HTTP response to send back.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. the echoed `X-Request-Id`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// A structured JSON error: `{"error": message, "status": status}`.
    ///
    /// All server-generated failures (parse errors, 404/405, panics,
    /// shedding) use this shape so clients never have to sniff whether
    /// an error body is prose or JSON.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{},\"status\":{status}}}",
                crate::json::escaped(message)
            ),
        )
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    path: String,
    handler: Handler,
}

/// Configures routes before binding an [`HttpServer`].
#[derive(Default)]
pub struct ServerBuilder {
    routes: Vec<Route>,
    limits: Limits,
    shutdown_hooks: Vec<Box<dyn FnOnce() + Send>>,
}

impl ServerBuilder {
    /// Registers a handler for `method path` (exact path match, query
    /// strings stripped). User routes take precedence over the
    /// built-in `/metrics`, `/healthz`, and `/summary.json`.
    pub fn route(
        mut self,
        method: &'static str,
        path: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method,
            path: path.into(),
            handler: Arc::new(handler),
        });
        self
    }

    /// Caps the accepted request body; larger `Content-Length`s are
    /// answered `413` without reading the body. Defaults to 256 KiB.
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.limits.max_body_bytes = bytes;
        self
    }

    /// Socket read/write timeout per request; a client that stalls
    /// mid-request is answered `408`. Defaults to 10 s.
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.limits.request_timeout = timeout;
        self
    }

    /// Registers a hook run exactly once on graceful shutdown (explicit
    /// [`HttpServer::shutdown`] or drop), after the accept loop has
    /// been joined — i.e. after the last accepted request finished
    /// dispatching. Serving layers use this to seal audit chains and
    /// flush durable logs before the process exits.
    pub fn on_shutdown(mut self, hook: impl FnOnce() + Send + 'static) -> Self {
        self.shutdown_hooks.push(Box::new(hook));
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral)
    /// and starts serving on a background accept thread.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(mut self, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        self.routes.push(Route {
            method: "GET",
            path: "/metrics".into(),
            handler: Arc::new(|_| {
                let mut r = Response::text(200, expose::render_prometheus());
                r.content_type = "text/plain; version=0.0.4; charset=utf-8";
                r
            }),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/healthz".into(),
            handler: Arc::new(|_| Response::text(200, "ok")),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/summary.json".into(),
            handler: Arc::new(|_| Response::json(200, expose::render_summary_json())),
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let routes = Arc::new(self.routes);
        let limits = self.limits;
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("hvac-http-accept".into())
                .spawn(move || accept_loop(&listener, &routes, limits, &shutdown))?
        };
        crate::message(
            Level::Info,
            format_args!("metrics server listening on http://{local}"),
        );
        Ok(HttpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            shutdown_hooks: Mutex::new(self.shutdown_hooks),
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    routes: &Arc<Vec<Route>>,
    limits: Limits,
    shutdown: &Arc<AtomicBool>,
) {
    let inflight = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(limits.request_timeout));
        let _ = stream.set_write_timeout(Some(limits.request_timeout));
        if inflight.load(Ordering::Acquire) >= MAX_INFLIGHT {
            counter("http.rejected").incr();
            let _ = Response::error(503, "server busy").write_to(&mut stream);
            continue;
        }
        inflight.fetch_add(1, Ordering::AcqRel);
        let routes = Arc::clone(routes);
        let conn_inflight = Arc::clone(&inflight);
        let spawned = std::thread::Builder::new()
            .name("hvac-http-conn".into())
            .spawn(move || {
                handle_connection(&mut stream, &routes, limits);
                conn_inflight.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, routes: &[Route], limits: Limits) {
    let started = Instant::now();
    let (mut response, request_id) = match read_request(stream, limits) {
        Ok(request) => match request.request_id() {
            // A malformed client id is rejected before dispatch so no
            // handler ever observes (or propagates) an id that cannot
            // be embedded safely downstream.
            Some(id) if !valid_request_id(id) => {
                counter("http.request_id.rejected").incr();
                (
                    Response::error(
                        422,
                        "invalid X-Request-Id: need 1-128 printable ASCII bytes, no spaces",
                    ),
                    None,
                )
            }
            id => {
                let id = id.map(str::to_owned);
                (dispatch(routes, &request), id)
            }
        },
        Err(error) => {
            let id = error.request_id.filter(|id| valid_request_id(id));
            (Response::error(error.status, error.message), id)
        }
    };
    // Echo the client's id on every response — success or error —
    // unless the handler already stamped one (e.g. a minted id).
    if response.header(REQUEST_ID_HEADER).is_none() {
        if let Some(id) = request_id {
            response = response.with_header(REQUEST_ID_HEADER, id);
        }
    }
    let _ = response.write_to(stream);
    counter("http.requests").incr();
    if response.status >= 400 {
        counter("http.errors").incr();
    }
    histogram("http.request.ns", LATENCY_BOUNDS_NS)
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

fn dispatch(routes: &[Route], request: &Request) -> Response {
    let mut path_known = false;
    for route in routes {
        if route.path == request.path {
            path_known = true;
            if route.method == request.method {
                // A panicking handler must never tear down the
                // connection thread with the response unsent: contain
                // it, count it, and answer 500 so the client sees a
                // structured failure instead of a reset socket.
                return catch_unwind(AssertUnwindSafe(|| (route.handler)(request))).unwrap_or_else(
                    |_| {
                        counter("http.panics").incr();
                        Response::error(500, "handler panicked")
                    },
                );
            }
        }
    }
    if path_known {
        Response::error(405, "method not allowed")
    } else {
        Response::error(404, "not found")
    }
}

struct HttpError {
    status: u16,
    message: &'static str,
    /// The client's `X-Request-Id` when the failure happened after the
    /// headers were parsed (e.g. an oversized body), so even those
    /// errors echo the id back.
    request_id: Option<String>,
}

fn http_err(status: u16, message: &'static str) -> HttpError {
    HttpError {
        status,
        message,
        request_id: None,
    }
}

/// Maps a socket read failure to 408 when the client stalled past the
/// request timeout, otherwise to a 400 with `context`.
fn read_err(error: &std::io::Error, context: &'static str) -> HttpError {
    match error.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            http_err(408, "request read timed out")
        }
        _ => http_err(400, context),
    }
}

fn read_request(stream: &mut TcpStream, limits: Limits) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| read_err(&e, "unreadable request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| http_err(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| http_err(400, "missing path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(http_err(400, "path must be absolute"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| read_err(&e, "unreadable header"))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(http_err(413, "headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| http_err(400, "bad content-length"))?;
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
    }
    // Errors past this point happened after the headers were parsed:
    // carry the client id so the error response still echoes it.
    let request_id_of = |headers: &[(String, String)]| {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(REQUEST_ID_HEADER))
            .map(|(_, v)| v.clone())
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError {
            request_id: request_id_of(&headers),
            ..http_err(413, "body too large")
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| HttpError {
        request_id: request_id_of(&headers),
        ..read_err(&e, "truncated body")
    })?;
    let body = String::from_utf8(body).map_err(|_| HttpError {
        request_id: request_id_of(&headers),
        ..http_err(400, "body is not UTF-8")
    })?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A running observability server; shuts down on [`HttpServer::shutdown`]
/// or drop.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    // Behind a `Mutex` so the server stays `Sync` (harnesses park it in
    // a `static OnceLock`) even though `FnOnce` boxes are not.
    shutdown_hooks: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hooks = self
            .shutdown_hooks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("shutdown_hooks", &hooks)
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Binds a server with only the built-in observability routes
    /// (`/metrics`, `/healthz`, `/summary.json`).
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        Self::builder().bind(addr)
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connection threads finish on their own (bounded by the
    /// socket timeout).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
        // A graceful stop must not strand buffered observability:
        // run the registered hooks (audit-chain seals etc.), then
        // flush any installed telemetry sink so JSONL files end on a
        // complete record.
        let hooks = std::mem::take(
            &mut *self
                .shutdown_hooks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for hook in hooks {
            hook();
        }
        crate::sink::flush();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A tiny blocking HTTP/1.1 client for tests, benches, and smoke
/// checks: sends one request, returns `(status, body)`.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface
/// as `InvalidData`.
pub fn blocking_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = blocking_request_with_headers(addr, method, path, &[], body)?;
    Ok((status, body))
}

/// Response header list returned by [`blocking_request_with_headers`]:
/// `(name, value)` pairs in wire order.
pub type HeaderList = Vec<(String, String)>;

/// Like [`blocking_request`] but sends extra request headers and also
/// returns the parsed response headers as `(name, value)` pairs —
/// what the trace-id tests use to assert the `X-Request-Id` echo.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface
/// as `InvalidData`.
pub fn blocking_request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(u16, HeaderList, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((response.clone(), String::new()));
    let response_headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok((status, response_headers, body))
}

/// First value of `name` (case-insensitive) in a header list returned
/// by [`blocking_request_with_headers`].
pub fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_builtin_observability_routes() {
        crate::registry::counter("test.http.builtin").add(2);
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));

        let (status, body) = blocking_request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("hvac_test_http_builtin 2") || body.contains("hvac_test_http_builtin")
        );
        assert!(body.contains("# TYPE hvac_uptime_ns gauge"));

        let (status, body) = blocking_request(addr, "GET", "/summary.json", "").unwrap();
        assert_eq!(status, 200);
        let v = crate::json::parse(&body).expect("summary is valid JSON");
        assert!(v.get("counters").is_some());
        server.shutdown();
    }

    #[test]
    fn custom_routes_and_errors() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "POST", "/echo", "payload").unwrap();
        assert_eq!((status, body.as_str()), (200, "payload"));

        let (status, _) = blocking_request(addr, "GET", "/echo", "").unwrap();
        assert_eq!(status, 405);

        let (status, _) = blocking_request(addr, "GET", "/missing", "").unwrap();
        assert_eq!(status, 404);

        // Query strings are stripped before matching.
        let (status, _) = blocking_request(addr, "GET", "/healthz?probe=1", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn error_responses_are_structured_json() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let (status, body) = blocking_request(server.addr(), "GET", "/missing", "").unwrap();
        assert_eq!(status, 404);
        let v = crate::json::parse(&body).expect("404 body is JSON");
        assert_eq!(v.get("error").and_then(|e| e.as_str()), Some("not found"));
        assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(404));

        let (status, body) = blocking_request(server.addr(), "POST", "/healthz", "x").unwrap();
        assert_eq!(status, 405);
        assert!(crate::json::parse(&body).is_ok(), "405 body is JSON");
        server.shutdown();
    }

    #[test]
    fn panicking_handler_is_contained_as_500() {
        let before = crate::registry::snapshot();
        let server = HttpServer::builder()
            .route("GET", "/boom", |_req| panic!("handler exploded"))
            .bind("127.0.0.1:0")
            .expect("bind");
        let (status, body) = blocking_request(server.addr(), "GET", "/boom", "").unwrap();
        assert_eq!(status, 500);
        let v = crate::json::parse(&body).expect("500 body is JSON");
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("handler panicked")
        );
        // The server survives the panic.
        let (status, _) = blocking_request(server.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        let after = crate::registry::snapshot();
        assert!(after.counter_delta(&before, "http.panics") >= 1);
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .max_body_bytes(16)
            .bind("127.0.0.1:0")
            .expect("bind");
        let (status, _) = blocking_request(server.addr(), "POST", "/echo", "short").unwrap();
        assert_eq!(status, 200);
        let big = "x".repeat(17);
        let (status, body) = blocking_request(server.addr(), "POST", "/echo", &big).unwrap();
        assert_eq!(status, 413);
        assert!(crate::json::parse(&body).is_ok(), "413 body is JSON");
        server.shutdown();
    }

    #[test]
    fn stalled_clients_are_answered_408() {
        let server = HttpServer::builder()
            .request_timeout(Duration::from_millis(100))
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Promise a body and never send it.
        stream
            .write_all(b"POST /healthz HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        server.shutdown();
        // The socket no longer accepts (connect may succeed briefly on
        // some platforms' backlog, but a request must not be answered).
        let answered = blocking_request(addr, "GET", "/healthz", "")
            .map(|(status, _)| status == 200)
            .unwrap_or(false);
        assert!(!answered, "server answered after shutdown");
    }

    #[test]
    fn request_id_is_echoed_on_success_and_errors() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();
        let id = [(REQUEST_ID_HEADER, "req-echo-1")];

        let (status, headers, _) =
            blocking_request_with_headers(addr, "POST", "/echo", &id, "hi").unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );

        // Echoed on router errors too.
        let (status, headers, _) =
            blocking_request_with_headers(addr, "GET", "/missing", &id, "").unwrap();
        assert_eq!(status, 404);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );
        let (status, headers, _) =
            blocking_request_with_headers(addr, "GET", "/echo", &id, "").unwrap();
        assert_eq!(status, 405);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some("req-echo-1")
        );
        server.shutdown();
    }

    #[test]
    fn request_id_is_echoed_on_oversized_body_413() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .max_body_bytes(8)
            .bind("127.0.0.1:0")
            .expect("bind");
        let big = "x".repeat(64);
        let (status, headers, _) = blocking_request_with_headers(
            server.addr(),
            "POST",
            "/echo",
            &[(REQUEST_ID_HEADER, "req-413")],
            &big,
        )
        .unwrap();
        assert_eq!(status, 413);
        assert_eq!(header_value(&headers, REQUEST_ID_HEADER), Some("req-413"));
        server.shutdown();
    }

    #[test]
    fn malformed_request_ids_are_rejected_422() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // Embedded space → non-printable per our contract.
        let (status, _, body) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, "has a space")],
            "",
        )
        .unwrap();
        assert_eq!(status, 422);
        let v = crate::json::parse(&body).expect("422 body is JSON");
        assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(422));

        // Oversized id.
        let long = "a".repeat(MAX_REQUEST_ID_BYTES + 1);
        let (status, _, _) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, &long)],
            "",
        )
        .unwrap();
        assert_eq!(status, 422);

        // A max-length printable id is fine.
        let edge = "b".repeat(MAX_REQUEST_ID_BYTES);
        let (status, headers, _) = blocking_request_with_headers(
            addr,
            "GET",
            "/healthz",
            &[(REQUEST_ID_HEADER, &edge)],
            "",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&headers, REQUEST_ID_HEADER),
            Some(edge.as_str())
        );
        server.shutdown();
    }

    #[test]
    fn requests_feed_self_metrics() {
        let before = crate::registry::snapshot();
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        blocking_request(server.addr(), "GET", "/healthz", "").unwrap();
        blocking_request(server.addr(), "GET", "/missing", "").unwrap();
        server.shutdown();
        let after = crate::registry::snapshot();
        assert!(after.counter_delta(&before, "http.requests") >= 2);
        assert!(after.counter_delta(&before, "http.errors") >= 1);
        let h = &after.histograms["http.request.ns"];
        assert!(h.count >= 2);
    }
}
