//! A minimal, dependency-free HTTP/1.1 server for live observability.
//!
//! Built on `std::net::TcpListener` with a thread-per-connection model
//! behind a bounded concurrency gate: the accept loop runs on one
//! background thread, each accepted connection is handled on its own
//! short-lived thread, and connections beyond the cap are answered
//! `503` instead of queueing unboundedly. Shutdown is graceful — the
//! guard sets a flag, wakes the accept loop with a loopback
//! connection, and joins it.
//!
//! Every server answers three built-in routes:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4
//!   ([`crate::expose::render_prometheus`]);
//! * `GET /healthz` — `200 ok` liveness probe;
//! * `GET /summary.json` — the JSON registry summary.
//!
//! Additional routes (e.g. the serving path's `POST /decide`) are
//! registered through [`ServerBuilder::route`]. Each request also
//! feeds `http.requests` / `http.request.ns` registry metrics, so the
//! server observes itself.
//!
//! # Example
//!
//! ```
//! use hvac_telemetry::http::{HttpServer, Response};
//!
//! let server = HttpServer::builder()
//!     .route("GET", "/hello", |_req| Response::text(200, "hi"))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! let (status, body) =
//!     hvac_telemetry::http::blocking_request(server.addr(), "GET", "/hello", "").unwrap();
//! assert_eq!((status, body.as_str()), (200, "hi"));
//! server.shutdown();
//! ```

use crate::registry::{counter, histogram, LATENCY_BOUNDS_NS};
use crate::{expose, Level};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum concurrently handled connections before `503` shedding.
const MAX_INFLIGHT: usize = 64;
/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Maximum accepted request header block.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/decide`).
    pub path: String,
    /// Request body (empty when none was sent).
    pub body: String,
}

/// An HTTP response to send back.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    path: String,
    handler: Handler,
}

/// Configures routes before binding an [`HttpServer`].
#[derive(Default)]
pub struct ServerBuilder {
    routes: Vec<Route>,
}

impl ServerBuilder {
    /// Registers a handler for `method path` (exact path match, query
    /// strings stripped). User routes take precedence over the
    /// built-in `/metrics`, `/healthz`, and `/summary.json`.
    pub fn route(
        mut self,
        method: &'static str,
        path: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method,
            path: path.into(),
            handler: Arc::new(handler),
        });
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral)
    /// and starts serving on a background accept thread.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(mut self, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        self.routes.push(Route {
            method: "GET",
            path: "/metrics".into(),
            handler: Arc::new(|_| {
                let mut r = Response::text(200, expose::render_prometheus());
                r.content_type = "text/plain; version=0.0.4; charset=utf-8";
                r
            }),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/healthz".into(),
            handler: Arc::new(|_| Response::text(200, "ok")),
        });
        self.routes.push(Route {
            method: "GET",
            path: "/summary.json".into(),
            handler: Arc::new(|_| Response::json(200, expose::render_summary_json())),
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let routes = Arc::new(self.routes);
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("hvac-http-accept".into())
                .spawn(move || accept_loop(&listener, &routes, &shutdown))?
        };
        crate::message(
            Level::Info,
            format_args!("metrics server listening on http://{local}"),
        );
        Ok(HttpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

fn accept_loop(listener: &TcpListener, routes: &Arc<Vec<Route>>, shutdown: &Arc<AtomicBool>) {
    let inflight = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        if inflight.load(Ordering::Acquire) >= MAX_INFLIGHT {
            counter("http.rejected").incr();
            let _ = Response::text(503, "server busy\n").write_to(&mut stream);
            continue;
        }
        inflight.fetch_add(1, Ordering::AcqRel);
        let routes = Arc::clone(routes);
        let conn_inflight = Arc::clone(&inflight);
        let spawned = std::thread::Builder::new()
            .name("hvac-http-conn".into())
            .spawn(move || {
                handle_connection(&mut stream, &routes);
                conn_inflight.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, routes: &[Route]) {
    let started = Instant::now();
    let response = match read_request(stream) {
        Ok(request) => dispatch(routes, &request),
        Err(error) => Response::text(error.status, format!("{}\n", error.message)),
    };
    let _ = response.write_to(stream);
    counter("http.requests").incr();
    if response.status >= 400 {
        counter("http.errors").incr();
    }
    histogram("http.request.ns", LATENCY_BOUNDS_NS)
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

fn dispatch(routes: &[Route], request: &Request) -> Response {
    let mut path_known = false;
    for route in routes {
        if route.path == request.path {
            path_known = true;
            if route.method == request.method {
                return (route.handler)(request);
            }
        }
    }
    if path_known {
        Response::text(405, "method not allowed\n")
    } else {
        Response::text(404, "not found\n")
    }
}

struct HttpError {
    status: u16,
    message: &'static str,
}

fn http_err(status: u16, message: &'static str) -> HttpError {
    HttpError { status, message }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|_| http_err(400, "unreadable request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| http_err(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| http_err(400, "missing path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(http_err(400, "path must be absolute"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|_| http_err(400, "unreadable header"))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(http_err(413, "headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| http_err(400, "bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(http_err(413, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| http_err(400, "truncated body"))?;
    let body = String::from_utf8(body).map_err(|_| http_err(400, "body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// A running observability server; shuts down on [`HttpServer::shutdown`]
/// or drop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Binds a server with only the built-in observability routes
    /// (`/metrics`, `/healthz`, `/summary.json`).
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        Self::builder().bind(addr)
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connection threads finish on their own (bounded by the
    /// socket timeout).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A tiny blocking HTTP/1.1 client for tests, benches, and smoke
/// checks: sends one request, returns `(status, body)`.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface
/// as `InvalidData`.
pub fn blocking_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_builtin_observability_routes() {
        crate::registry::counter("test.http.builtin").add(2);
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));

        let (status, body) = blocking_request(addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("hvac_test_http_builtin 2") || body.contains("hvac_test_http_builtin")
        );
        assert!(body.contains("# TYPE hvac_uptime_ns gauge"));

        let (status, body) = blocking_request(addr, "GET", "/summary.json", "").unwrap();
        assert_eq!(status, 200);
        let v = crate::json::parse(&body).expect("summary is valid JSON");
        assert!(v.get("counters").is_some());
        server.shutdown();
    }

    #[test]
    fn custom_routes_and_errors() {
        let server = HttpServer::builder()
            .route("POST", "/echo", |req| Response::text(200, req.body.clone()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = server.addr();

        let (status, body) = blocking_request(addr, "POST", "/echo", "payload").unwrap();
        assert_eq!((status, body.as_str()), (200, "payload"));

        let (status, _) = blocking_request(addr, "GET", "/echo", "").unwrap();
        assert_eq!(status, 405);

        let (status, _) = blocking_request(addr, "GET", "/missing", "").unwrap();
        assert_eq!(status, 404);

        // Query strings are stripped before matching.
        let (status, _) = blocking_request(addr, "GET", "/healthz?probe=1", "").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        server.shutdown();
        // The socket no longer accepts (connect may succeed briefly on
        // some platforms' backlog, but a request must not be answered).
        let answered = blocking_request(addr, "GET", "/healthz", "")
            .map(|(status, _)| status == 200)
            .unwrap_or(false);
        assert!(!answered, "server answered after shutdown");
    }

    #[test]
    fn requests_feed_self_metrics() {
        let before = crate::registry::snapshot();
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        blocking_request(server.addr(), "GET", "/healthz", "").unwrap();
        blocking_request(server.addr(), "GET", "/missing", "").unwrap();
        server.shutdown();
        let after = crate::registry::snapshot();
        assert!(after.counter_delta(&before, "http.requests") >= 2);
        assert!(after.counter_delta(&before, "http.errors") >= 1);
        let h = &after.histograms["http.request.ns"];
        assert!(h.count >= 2);
    }
}
