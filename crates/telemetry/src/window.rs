//! Sliding-window histograms and counters on an epoch ring.
//!
//! The registry's histograms are cumulative-since-start: right for
//! long-run accounting, useless for answering "what was p99 over the
//! last minute" on a serving endpoint. A [`WindowedHistogram`] covers
//! that gap without locks or allocation on the record path: the window
//! is split into `E` fixed epochs, each epoch owns its own atomic
//! bucket array, and a slot is lazily reset the first time a recorder
//! lands in a new epoch. A snapshot merges every slot whose epoch tag
//! is still inside the window into one
//! [`HistogramSnapshot`](crate::registry::HistogramSnapshot), so the
//! existing quantile estimator applies unchanged.
//!
//! Memory is bounded by construction: `E × (bounds + 1)` atomics per
//! histogram, fixed at registration; nothing grows with traffic.
//!
//! The epoch reset races benignly: the first recorder to land in a
//! fresh epoch claims the slot with a tagged CAS (the high bit marks
//! "resetting"), zeroes it, and publishes the new tag; concurrent
//! recorders spin for the handful of stores that takes, and snapshots
//! simply skip a slot mid-reset (it would contribute an empty epoch
//! anyway). Samples recorded exactly on an epoch boundary may land on
//! either side — a windowed series is an estimate, not a ledger.
//!
//! [`windowed_histogram`] interns instances in a process-global
//! registry, mirroring [`crate::registry::histogram`], so the
//! exposition layer (`/metrics`, `/summary.json`) can render every
//! registered window without threading handles around.

use crate::registry::HistogramSnapshot;
use crate::sink::process_elapsed_ns;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// High bit of an epoch tag: set while a recorder is zeroing the slot.
const RESETTING: u64 = 1 << 63;

/// Tag of a slot that has never held an epoch.
const EMPTY: u64 = u64::MAX;

/// One epoch slot: a tag naming the epoch the data belongs to, plus the
/// same atomic cells a registry histogram keeps.
#[derive(Debug)]
struct Epoch {
    /// Epoch index the slot currently holds ([`EMPTY`] before first
    /// use; [`RESETTING`] bit set while being zeroed).
    tag: AtomicU64,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Epoch {
    fn new(buckets: usize) -> Self {
        Self {
            tag: AtomicU64::new(EMPTY),
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over a sliding time window.
///
/// See the module docs for the epoch-ring design. All methods are
/// `&self` and safe from any thread.
#[derive(Debug)]
pub struct WindowedHistogram {
    bounds: Vec<u64>,
    epoch_len_ns: u64,
    epochs: Vec<Epoch>,
}

impl WindowedHistogram {
    /// A window of `window_ns` nanoseconds split into `epochs` slots
    /// over the given bucket `bounds` (sorted and deduplicated, like
    /// [`crate::registry::histogram`]). `window_ns` and `epochs` are
    /// clamped to at least 1; resolution is one epoch
    /// (`window_ns / epochs`).
    pub fn new(bounds: &[u64], window_ns: u64, epochs: usize) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let epochs = epochs.max(1);
        let epoch_len_ns = (window_ns.max(1) / epochs as u64).max(1);
        let cells = sorted.len() + 1;
        Self {
            bounds: sorted,
            epoch_len_ns,
            epochs: (0..epochs).map(|_| Epoch::new(cells)).collect(),
        }
    }

    /// The window this histogram covers, in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.epoch_len_ns * self.epochs.len() as u64
    }

    /// Records `value` at the current process time.
    pub fn record(&self, value: u64) {
        self.record_at(process_elapsed_ns(), value);
    }

    /// Records `value` as of `now_ns` (exposed so rotation edge cases
    /// are testable without sleeping through real epochs).
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let epoch = now_ns / self.epoch_len_ns;
        let slot = &self.epochs[(epoch % self.epochs.len() as u64) as usize];
        self.rotate(slot, epoch);
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Ensures `slot` belongs to `epoch`, zeroing stale contents. The
    /// first arrival claims the slot via CAS and resets it; racing
    /// recorders spin for the few stores that takes.
    fn rotate(&self, slot: &Epoch, epoch: u64) {
        loop {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == epoch {
                return;
            }
            if tag & RESETTING != 0 && tag & !RESETTING == epoch {
                std::hint::spin_loop();
                continue;
            }
            if slot
                .tag
                .compare_exchange(tag, epoch | RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.zero();
                slot.tag.store(epoch, Ordering::Release);
                return;
            }
        }
    }

    /// Merged snapshot of every epoch still inside the window at the
    /// current process time.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(process_elapsed_ns())
    }

    /// Merged snapshot as of `now_ns`: epochs
    /// `(current - E, current]` contribute; older slots (and slots
    /// mid-reset) read as empty.
    pub fn snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        let current = now_ns / self.epoch_len_ns;
        let oldest = current.saturating_sub(self.epochs.len() as u64 - 1);
        let mut snap = HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: vec![0; self.bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        };
        for slot in &self.epochs {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == EMPTY || tag & RESETTING != 0 || tag < oldest || tag > current {
                continue;
            }
            for (merged, cell) in snap.buckets.iter_mut().zip(&slot.buckets) {
                *merged += cell.load(Ordering::Relaxed);
            }
            snap.count += slot.count.load(Ordering::Relaxed);
            snap.sum += slot.sum.load(Ordering::Relaxed);
            snap.max = snap.max.max(slot.max.load(Ordering::Relaxed));
        }
        snap
    }
}

/// A monotone event counter over the same epoch ring (the SLO tracker's
/// good/bad tallies). Semantics mirror [`WindowedHistogram`]: counts
/// fall off the trailing edge one epoch at a time.
#[derive(Debug)]
pub struct WindowedCounter {
    epoch_len_ns: u64,
    tags: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
}

impl WindowedCounter {
    /// A counter covering `window_ns` split into `epochs` slots.
    pub fn new(window_ns: u64, epochs: usize) -> Self {
        let epochs = epochs.max(1);
        Self {
            epoch_len_ns: (window_ns.max(1) / epochs as u64).max(1),
            tags: (0..epochs).map(|_| AtomicU64::new(EMPTY)).collect(),
            counts: (0..epochs).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The window this counter covers, in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.epoch_len_ns * self.tags.len() as u64
    }

    /// Adds `n` at the current process time.
    pub fn add(&self, n: u64) {
        self.add_at(process_elapsed_ns(), n);
    }

    /// Adds `n` as of `now_ns`.
    pub fn add_at(&self, now_ns: u64, n: u64) {
        let epoch = now_ns / self.epoch_len_ns;
        let i = (epoch % self.tags.len() as u64) as usize;
        loop {
            let tag = self.tags[i].load(Ordering::Acquire);
            if tag == epoch {
                break;
            }
            if tag & RESETTING != 0 && tag & !RESETTING == epoch {
                std::hint::spin_loop();
                continue;
            }
            if self.tags[i]
                .compare_exchange(tag, epoch | RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.counts[i].store(0, Ordering::Relaxed);
                self.tags[i].store(epoch, Ordering::Release);
                break;
            }
        }
        self.counts[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Total over the window at the current process time.
    pub fn total(&self) -> u64 {
        self.total_at(process_elapsed_ns())
    }

    /// Total over the window as of `now_ns`.
    pub fn total_at(&self, now_ns: u64) -> u64 {
        let current = now_ns / self.epoch_len_ns;
        let oldest = current.saturating_sub(self.tags.len() as u64 - 1);
        self.tags
            .iter()
            .zip(&self.counts)
            .filter_map(|(tag, count)| {
                let tag = tag.load(Ordering::Acquire);
                (tag != EMPTY && tag & RESETTING == 0 && tag >= oldest && tag <= current)
                    .then(|| count.load(Ordering::Relaxed))
            })
            .sum()
    }
}

/// One registered window, as the exposition layer sees it.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// The window covered, in nanoseconds.
    pub window_ns: u64,
    /// Merged in-window histogram state.
    pub histogram: HistogramSnapshot,
}

struct WindowRegistry {
    histograms: Mutex<BTreeMap<&'static str, &'static WindowedHistogram>>,
}

fn window_registry() -> &'static WindowRegistry {
    static REGISTRY: OnceLock<WindowRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| WindowRegistry {
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Returns (registering on first use) the process-global windowed
/// histogram called `name`. Like [`crate::registry::histogram`], the
/// first registration's bounds/window win and the cell is leaked —
/// bounded by the number of distinct window names, which is small and
/// static. Registered windows appear in `/metrics` (as
/// `hvac_<name>_window_*` gauges) and `/summary.json` (the `windows`
/// section).
pub fn windowed_histogram(
    name: &str,
    bounds: &[u64],
    window_ns: u64,
    epochs: usize,
) -> &'static WindowedHistogram {
    let mut map = window_registry()
        .histograms
        .lock()
        .expect("window registry mutex poisoned");
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let cell: &'static WindowedHistogram =
        Box::leak(Box::new(WindowedHistogram::new(bounds, window_ns, epochs)));
    let key: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(key, cell);
    cell
}

/// Snapshots every registered windowed histogram at the current
/// process time, keyed by registration name.
pub fn window_snapshots() -> BTreeMap<String, WindowSnapshot> {
    window_registry()
        .histograms
        .lock()
        .expect("window registry mutex poisoned")
        .iter()
        .map(|(&name, h)| {
            (
                name.to_owned(),
                WindowSnapshot {
                    window_ns: h.window_ns(),
                    histogram: h.snapshot(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_window_is_empty() {
        let w = WindowedHistogram::new(&[10, 100], 1_000, 4);
        let snap = w.snapshot_at(0);
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0);
    }

    #[test]
    fn samples_expire_after_the_window() {
        let w = WindowedHistogram::new(&[10, 100], 1_000, 4);
        w.record_at(100, 50);
        assert_eq!(w.snapshot_at(100).count, 1);
        // Still inside the 1000 ns window (epoch 0 vs epoch 3).
        assert_eq!(w.snapshot_at(999).count, 1);
        // One full window later the epoch-0 slot is out of range.
        assert_eq!(w.snapshot_at(1_250).count, 0);
    }

    #[test]
    fn wrapped_slot_is_reset_before_reuse() {
        let w = WindowedHistogram::new(&[10], 400, 4); // 100 ns epochs
        w.record_at(50, 5); // epoch 0, slot 0
        w.record_at(450, 5); // epoch 4, wraps onto slot 0 → reset first
        let snap = w.snapshot_at(450);
        assert_eq!(snap.count, 1, "stale epoch-0 sample must not survive");
    }

    #[test]
    fn counter_rolls_off_one_epoch_at_a_time() {
        let c = WindowedCounter::new(400, 4);
        c.add_at(50, 3); // epoch 0
        c.add_at(150, 2); // epoch 1
        assert_eq!(c.total_at(150), 5);
        assert_eq!(c.total_at(399), 5);
        // Epoch 4: epoch 0 has rolled off, epoch 1 survives.
        assert_eq!(c.total_at(450), 2);
        // Epoch 5: everything gone.
        assert_eq!(c.total_at(550), 0);
    }

    #[test]
    fn registry_interns_by_name() {
        let a = windowed_histogram("test.window.interned", &[10], 1_000_000, 4);
        let b = windowed_histogram("test.window.interned", &[99], 5, 2);
        assert!(std::ptr::eq(a, b));
        a.record(7);
        let snaps = window_snapshots();
        assert!(snaps["test.window.interned"].histogram.count >= 1);
    }
}
