//! Declarative SLOs with multi-window burn-rate tracking.
//!
//! An [`SloTracker`] watches the serve path against three objectives:
//! decide latency under a p99 budget, non-5xx response ratio, and
//! guard-degradation ratio. Each objective counts good/bad events into
//! two [`WindowedCounter`] pairs — a fast window (1 minute) and a slow
//! window (1 hour) — and reports a *burn rate* per window: the
//! observed bad fraction divided by the objective's error budget. A
//! burn rate of 1.0 means the budget is being consumed exactly as
//! fast as it accrues; sustained rates above 1.0 exhaust it.
//!
//! The two-window scheme is the standard burn-rate alerting shape:
//! the fast window catches sharp regressions within seconds, the slow
//! window confirms they are sustained rather than a blip. An
//! objective is `ok` when both windows burn below 1.0, `burning` when
//! one is at or above, and `critical` when both are.
//!
//! `GET /debug/slo` renders [`SloTracker::render_json`]; the
//! `hvac-trace live` dashboard polls the same endpoint.

use crate::window::WindowedCounter;
use std::fmt::Write as _;

/// Nanoseconds in the fast burn window (1 minute).
pub const FAST_WINDOW_NS: u64 = 60 * 1_000_000_000;
/// Nanoseconds in the slow burn window (1 hour).
pub const SLOW_WINDOW_NS: u64 = 3_600 * 1_000_000_000;
/// Epoch slots per window (5 s resolution fast, 5 min slow).
const EPOCHS: usize = 12;

/// Declarative objectives for a serve session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Decide latency budget in ns; at most 1% of decides may exceed
    /// it (p99 semantics → error budget 0.01).
    pub decide_p99_budget_ns: u64,
    /// Maximum fraction of requests that may be answered 5xx.
    pub error_ratio_budget: f64,
    /// Maximum fraction of decisions the guard may serve from a
    /// degraded rung (anything other than `Normal`).
    pub degraded_ratio_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            decide_p99_budget_ns: 5_000_000, // 5 ms per decide
            error_ratio_budget: 0.001,
            degraded_ratio_budget: 0.05,
        }
    }
}

/// Good/bad tallies for one objective over one window.
struct WindowPair {
    good: WindowedCounter,
    bad: WindowedCounter,
}

impl WindowPair {
    fn new(window_ns: u64) -> Self {
        Self {
            good: WindowedCounter::new(window_ns, EPOCHS),
            bad: WindowedCounter::new(window_ns, EPOCHS),
        }
    }

    fn observe_at(&self, now_ns: u64, bad: bool) {
        if bad {
            self.bad.add_at(now_ns, 1);
        } else {
            self.good.add_at(now_ns, 1);
        }
    }

    /// `(total, bad_fraction)` over the window.
    fn stats_at(&self, now_ns: u64) -> (u64, f64) {
        let good = self.good.total_at(now_ns);
        let bad = self.bad.total_at(now_ns);
        let total = good + bad;
        let frac = if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        };
        (total, frac)
    }
}

/// One objective: a name, an error budget, fast and slow windows.
struct Objective {
    name: &'static str,
    budget_fraction: f64,
    fast: WindowPair,
    slow: WindowPair,
}

/// Burn-rate readout for one objective, as rendered at `/debug/slo`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveStatus {
    /// Objective name (`decide_latency`, `availability`,
    /// `guard_integrity`).
    pub name: &'static str,
    /// Error budget as a fraction of events.
    pub budget_fraction: f64,
    /// Events observed in the fast window.
    pub fast_total: u64,
    /// Bad fraction over the fast window.
    pub fast_bad_fraction: f64,
    /// `fast_bad_fraction / budget_fraction`.
    pub fast_burn: f64,
    /// Events observed in the slow window.
    pub slow_total: u64,
    /// Bad fraction over the slow window.
    pub slow_bad_fraction: f64,
    /// `slow_bad_fraction / budget_fraction`.
    pub slow_burn: f64,
    /// `ok`, `burning` (one window at/above budget burn), or
    /// `critical` (both).
    pub status: &'static str,
}

impl Objective {
    fn new(name: &'static str, budget_fraction: f64) -> Self {
        Self {
            name,
            // Guard against a zero budget turning every event into an
            // infinite burn: floor at one event per million.
            budget_fraction: budget_fraction.max(1e-6),
            fast: WindowPair::new(FAST_WINDOW_NS),
            slow: WindowPair::new(SLOW_WINDOW_NS),
        }
    }

    fn observe_at(&self, now_ns: u64, bad: bool) {
        self.fast.observe_at(now_ns, bad);
        self.slow.observe_at(now_ns, bad);
    }

    fn status_at(&self, now_ns: u64) -> ObjectiveStatus {
        let (fast_total, fast_bad) = self.fast.stats_at(now_ns);
        let (slow_total, slow_bad) = self.slow.stats_at(now_ns);
        let fast_burn = fast_bad / self.budget_fraction;
        let slow_burn = slow_bad / self.budget_fraction;
        let status = match (fast_burn >= 1.0, slow_burn >= 1.0) {
            (true, true) => "critical",
            (false, false) => "ok",
            _ => "burning",
        };
        ObjectiveStatus {
            name: self.name,
            budget_fraction: self.budget_fraction,
            fast_total,
            fast_bad_fraction: fast_bad,
            fast_burn,
            slow_total,
            slow_bad_fraction: slow_bad,
            slow_burn,
            status,
        }
    }
}

/// Tracks the three serve-mode objectives. All methods are `&self`
/// and safe from any thread.
pub struct SloTracker {
    config: SloConfig,
    decide_latency: Objective,
    availability: Objective,
    guard_integrity: Objective,
}

impl std::fmt::Debug for SloTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloTracker")
            .field("config", &self.config)
            .finish()
    }
}

impl SloTracker {
    /// A tracker for the given objectives.
    pub fn new(config: SloConfig) -> Self {
        Self {
            config,
            decide_latency: Objective::new("decide_latency", 0.01),
            availability: Objective::new("availability", config.error_ratio_budget),
            guard_integrity: Objective::new("guard_integrity", config.degraded_ratio_budget),
        }
    }

    /// The configured objectives.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one decide latency observation at `now_ns`.
    pub fn record_decide_at(&self, now_ns: u64, latency_ns: u64) {
        self.decide_latency
            .observe_at(now_ns, latency_ns > self.config.decide_p99_budget_ns);
    }

    /// Records one HTTP response at `now_ns` (5xx counts against the
    /// availability budget).
    pub fn record_response_at(&self, now_ns: u64, status: u16) {
        self.availability.observe_at(now_ns, status >= 500);
    }

    /// Records the guard rung a decision was served from at `now_ns`
    /// (`guard_gauge` is `GuardState::as_gauge`; non-zero = degraded).
    pub fn record_guard_at(&self, now_ns: u64, guard_gauge: u64) {
        self.guard_integrity.observe_at(now_ns, guard_gauge != 0);
    }

    /// Per-objective burn status as of `now_ns`.
    pub fn statuses_at(&self, now_ns: u64) -> [ObjectiveStatus; 3] {
        [
            self.decide_latency.status_at(now_ns),
            self.availability.status_at(now_ns),
            self.guard_integrity.status_at(now_ns),
        ]
    }

    /// Worst status across objectives as of `now_ns`.
    pub fn overall_at(&self, now_ns: u64) -> &'static str {
        let mut worst = "ok";
        for s in self.statuses_at(now_ns) {
            worst = match (worst, s.status) {
                (_, "critical") | ("critical", _) => "critical",
                (_, "burning") | ("burning", _) => "burning",
                _ => "ok",
            };
        }
        worst
    }

    /// The `GET /debug/slo` body as of `now_ns`.
    pub fn render_json_at(&self, now_ns: u64) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"now_ns\":{},\"overall\":\"{}\",\"windows\":{{\"fast_ns\":{},\"slow_ns\":{}}},\"objectives\":[",
            now_ns,
            self.overall_at(now_ns),
            FAST_WINDOW_NS,
            SLOW_WINDOW_NS
        );
        for (i, s) in self.statuses_at(now_ns).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"status\":\"{}\",\"budget_fraction\":{},\"fast\":{{\"total\":{},\"bad_fraction\":{},\"burn\":{}}},\"slow\":{{\"total\":{},\"bad_fraction\":{},\"burn\":{}}}}}",
                s.name,
                s.status,
                fmt_f64(s.budget_fraction),
                s.fast_total,
                fmt_f64(s.fast_bad_fraction),
                fmt_f64(s.fast_burn),
                s.slow_total,
                fmt_f64(s.slow_bad_fraction),
                fmt_f64(s.slow_burn)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Plain decimal rendering (no exponent) so the hand-rolled JSON
/// parser and jq-free CI greps both cope.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn quiet_tracker_is_ok() {
        let t = SloTracker::new(SloConfig::default());
        assert_eq!(t.overall_at(1), "ok");
        let s = t.statuses_at(1);
        assert_eq!(s[0].fast_total, 0);
        assert_eq!(s[0].fast_burn, 0.0);
    }

    #[test]
    fn sustained_latency_breach_goes_critical() {
        let t = SloTracker::new(SloConfig {
            decide_p99_budget_ns: 100,
            ..SloConfig::default()
        });
        for i in 0..100 {
            t.record_decide_at(1_000 + i, 500); // all over budget
        }
        let s = &t.statuses_at(2_000)[0];
        assert_eq!(s.status, "critical");
        assert!(s.fast_burn >= 1.0 && s.slow_burn >= 1.0);
    }

    #[test]
    fn rare_errors_within_budget_stay_ok() {
        let t = SloTracker::new(SloConfig {
            error_ratio_budget: 0.1,
            ..SloConfig::default()
        });
        for i in 0..99 {
            t.record_response_at(1_000 + i, 200);
        }
        t.record_response_at(2_000, 500); // 1% bad vs 10% budget
        assert_eq!(t.statuses_at(3_000)[1].status, "ok");
    }

    #[test]
    fn degraded_guard_burns_the_integrity_budget() {
        let t = SloTracker::new(SloConfig {
            degraded_ratio_budget: 0.05,
            ..SloConfig::default()
        });
        for i in 0..10 {
            t.record_guard_at(1_000 + i, 2); // Fallback rung
        }
        assert_eq!(t.statuses_at(2_000)[2].status, "critical");
    }

    #[test]
    fn render_json_parses_and_names_all_objectives() {
        let t = SloTracker::new(SloConfig::default());
        t.record_decide_at(500, 1_000);
        t.record_response_at(500, 200);
        t.record_guard_at(500, 0);
        let body = t.render_json_at(1_000);
        let v = json::parse(&body).expect("slo json parses");
        assert_eq!(v.get("overall").and_then(|o| o.as_str()), Some("ok"));
        let objectives = v.get("objectives").and_then(|o| o.as_array()).unwrap();
        assert_eq!(objectives.len(), 3);
        let names: Vec<&str> = objectives
            .iter()
            .filter_map(|o| o.get("name").and_then(|n| n.as_str()))
            .collect();
        assert_eq!(names, ["decide_latency", "availability", "guard_integrity"]);
    }
}
