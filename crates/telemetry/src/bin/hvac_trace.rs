//! `hvac-trace` — analyze JSONL telemetry traces produced by
//! `HVAC_TELEMETRY=<path>` or `--telemetry <path>`, and watch a live
//! serve endpoint's ops plane.
//!
//! ```text
//! hvac-trace report RUN.jsonl      per-stage wall times, critical paths, counters
//! hvac-trace folded RUN.jsonl      flamegraph folded stacks (pipe to inferno/flamegraph.pl)
//! hvac-trace diff   A.jsonl B.jsonl   per-stage wall-time deltas (a = baseline)
//! hvac-trace live   HOST:PORT      terminal dashboard over /summary.json + /debug/slo
//! ```
//!
//! Reports go to stdout; diagnostics to stderr. Exit codes: 0 success,
//! 1 analysis failure, 2 usage error.

use hvac_telemetry::http::blocking_request;
use hvac_telemetry::json::{parse, JsonValue};
use hvac_telemetry::trace::{diff_report, Trace};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

const USAGE: &str = "\
hvac-trace — span-tree analysis of hvac-telemetry JSONL files

USAGE:
  hvac-trace report FILE       stage wall times, critical paths, counter totals
  hvac-trace folded FILE       flamegraph folded stacks on stdout
  hvac-trace diff FILE FILE    per-stage wall-time regression diff (baseline first)
  hvac-trace live ADDR [--interval SECS] [--count N]
                               poll a veri-hvac serve endpoint and render a
                               live dashboard: windowed latency quantiles,
                               SLO burn rates, decision/error counters.
                               --count bounds the number of frames (for
                               scripting; default: poll until interrupted)
";

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if trace.skipped_lines > 0 {
        eprintln!(
            "warning: {path}: skipped {} unparseable line(s)",
            trace.skipped_lines
        );
    }
    Ok(trace)
}

/// One polled frame of the live dashboard, rendered as plain text so it
/// works in any terminal (and under `watch`/CI log capture).
fn live_frame(addr: SocketAddr) -> Result<String, String> {
    let fetch = |path: &str| -> Result<JsonValue, String> {
        let (status, body) =
            blocking_request(addr, "GET", path, "").map_err(|e| format!("GET {path}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {path}: HTTP {status}"));
        }
        parse(&body).map_err(|e| format!("GET {path}: bad JSON: {e:?}"))
    };
    let summary = fetch("/summary.json")?;
    let slo = fetch("/debug/slo")?;

    let mut out = String::new();
    let uptime = summary
        .get("uptime_ns")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "veri-hvac @ {addr}  up {:.1}s  overall: {}\n",
        uptime as f64 / 1e9,
        slo.get("overall")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
    ));

    // Windowed latency quantiles (the last 60 s, not since boot).
    if let Some(windows) = summary.get("windows") {
        if let Some(w) = windows.get("serve.decide.ns") {
            let q = |k: &str| w.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            out.push_str(&format!(
                "  decide window ({:.0}s): count {}  p50 {}µs  p95 {}µs  p99 {}µs  max {}µs\n",
                q("window_ns") as f64 / 1e9,
                q("count"),
                q("p50") / 1_000,
                q("p95") / 1_000,
                q("p99") / 1_000,
                q("max") / 1_000,
            ));
        }
    }

    // SLO objectives with fast/slow burn rates.
    if let Some(objectives) = slo.get("objectives").and_then(JsonValue::as_array) {
        for objective in objectives {
            let s = |k: &str| objective.get(k).and_then(JsonValue::as_str).unwrap_or("?");
            let burn = |window: &str| {
                objective
                    .get(window)
                    .and_then(|w| w.get("burn_rate"))
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0)
            };
            let bad = |window: &str| {
                objective
                    .get(window)
                    .and_then(|w| w.get("bad"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            };
            out.push_str(&format!(
                "  slo {:<16} {:<8} burn fast {:>7.2}  slow {:>7.2}  bad {}/{}\n",
                s("name"),
                s("status"),
                burn("fast"),
                burn("slow"),
                bad("fast"),
                objective
                    .get("fast")
                    .and_then(|w| w.get("total"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
            ));
        }
    }

    // Lifetime counters worth glancing at (counters render as a map).
    if let Some(counters) = summary.get("counters") {
        let mut picks = Vec::new();
        for name in [
            "serve.decisions",
            "http.requests",
            "http.errors",
            "guard.rejections",
            "guard.fallbacks",
        ] {
            if let Some(value) = counters.get(name).and_then(JsonValue::as_u64) {
                picks.push(format!("{name} {value}"));
            }
        }
        if !picks.is_empty() {
            out.push_str(&format!("  totals: {}\n", picks.join("  ")));
        }
    }
    Ok(out)
}

fn cmd_live(addr_text: &str, rest: &[String]) -> Result<(), String> {
    let mut interval_secs = 2u64;
    let mut count: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .as_str();
        match flag.as_str() {
            "--interval" => {
                interval_secs = value
                    .parse()
                    .map_err(|_| format!("--interval must be seconds, got {value:?}"))?;
            }
            "--count" => {
                count = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--count must be a number, got {value:?}"))?,
                );
            }
            other => return Err(format!("unknown live flag {other:?}")),
        }
    }
    let addr = addr_text
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr_text}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr_text} resolves to no address"))?;

    let mut frames = 0u64;
    loop {
        print!("{}", live_frame(addr)?);
        frames += 1;
        if count.is_some_and(|n| frames >= n) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval_secs.max(1)));
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [cmd, file] if cmd == "report" => {
            print!("{}", load(file)?.report());
            Ok(())
        }
        [cmd, file] if cmd == "folded" => {
            let folded = load(file)?.folded();
            if folded.is_empty() {
                return Err(format!("{file}: no completed spans to fold"));
            }
            print!("{folded}");
            Ok(())
        }
        [cmd, a, b] if cmd == "diff" => {
            print!("{}", diff_report(&load(a)?, &load(b)?));
            Ok(())
        }
        [cmd, addr, rest @ ..] if cmd == "live" => cmd_live(addr, rest),
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) if message.is_empty() => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
