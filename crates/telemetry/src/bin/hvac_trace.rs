//! `hvac-trace` — analyze JSONL telemetry traces produced by
//! `HVAC_TELEMETRY=<path>` or `--telemetry <path>`.
//!
//! ```text
//! hvac-trace report RUN.jsonl      per-stage wall times, critical paths, counters
//! hvac-trace folded RUN.jsonl      flamegraph folded stacks (pipe to inferno/flamegraph.pl)
//! hvac-trace diff   A.jsonl B.jsonl   per-stage wall-time deltas (a = baseline)
//! ```
//!
//! Reports go to stdout; diagnostics to stderr. Exit codes: 0 success,
//! 1 analysis failure, 2 usage error.

use hvac_telemetry::trace::{diff_report, Trace};
use std::process::ExitCode;

const USAGE: &str = "\
hvac-trace — span-tree analysis of hvac-telemetry JSONL files

USAGE:
  hvac-trace report FILE       stage wall times, critical paths, counter totals
  hvac-trace folded FILE       flamegraph folded stacks on stdout
  hvac-trace diff FILE FILE    per-stage wall-time regression diff (baseline first)
";

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if trace.skipped_lines > 0 {
        eprintln!(
            "warning: {path}: skipped {} unparseable line(s)",
            trace.skipped_lines
        );
    }
    Ok(trace)
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [cmd, file] if cmd == "report" => {
            print!("{}", load(file)?.report());
            Ok(())
        }
        [cmd, file] if cmd == "folded" => {
            let folded = load(file)?.folded();
            if folded.is_empty() {
                return Err(format!("{file}: no completed spans to fold"));
            }
            print!("{folded}");
            Ok(())
        }
        [cmd, a, b] if cmd == "diff" => {
            print!("{}", diff_report(&load(a)?, &load(b)?));
            Ok(())
        }
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) if message.is_empty() => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
