//! Post-hoc analysis of JSONL telemetry traces.
//!
//! The [`JsonlSink`](crate::JsonlSink) writes one event per line; this
//! module reads those files back (with the crate's own JSON parser, so
//! the loop stays dependency-free), rebuilds the per-thread span trees
//! from `span_open`/`span_close` pairs, and derives:
//!
//! * **stage wall times** — the direct children of the `pipeline`
//!   span, i.e. exactly the numbers `TelemetrySummary.stages` printed
//!   at run time;
//! * **flamegraph folded stacks** — `thread-N;parent;child self_ns`
//!   lines consumable by `inferno`/`flamegraph.pl`;
//! * **a critical-path report** — per stage, the chain of heaviest
//!   child spans with percentages of the run;
//! * **two-run diffs** — per-stage wall-time deltas with percentage
//!   changes, for regression hunting between two JSONL files.
//!
//! The `hvac-trace` binary is a thin CLI over this module.

use crate::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed span reconstructed from the event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Wall time in nanoseconds.
    pub nanos: u64,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time minus the children's wall time (never negative).
    pub fn self_nanos(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(|c| c.nanos).sum();
        self.nanos.saturating_sub(child_total)
    }

    /// The heaviest direct child, if any.
    pub fn heaviest_child(&self) -> Option<&SpanNode> {
        self.children.iter().max_by_key(|c| c.nanos)
    }
}

/// Errors raised while reading a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input contained no parseable telemetry events.
    NoEvents,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NoEvents => write!(f, "no telemetry events found in input"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed trace: per-thread span forests plus headline counters.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed root spans per telemetry thread id.
    pub roots: BTreeMap<u64, Vec<SpanNode>>,
    /// Final cumulative value of every counter seen in the stream.
    pub counters: BTreeMap<String, u64>,
    /// Lines that failed to parse as JSON (count only).
    pub skipped_lines: usize,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    children: Vec<SpanNode>,
}

impl Trace {
    /// Parses the content of a JSONL telemetry file.
    ///
    /// Unparseable lines are counted and skipped (a crashed run may
    /// leave a truncated last line); spans still open at end-of-stream
    /// are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NoEvents`] when nothing parseable is found.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut trace = Trace::default();
        // Per-thread stacks of currently open spans.
        let mut open: BTreeMap<u64, Vec<OpenSpan>> = BTreeMap::new();
        let mut events = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(value) = parse(line) else {
                trace.skipped_lines += 1;
                continue;
            };
            let Some(event) = value.get("event").and_then(JsonValue::as_str) else {
                trace.skipped_lines += 1;
                continue;
            };
            events += 1;
            let field_u64 =
                |name: &str| -> u64 { value.get(name).and_then(JsonValue::as_u64).unwrap_or(0) };
            let field_str =
                |name: &str| -> Option<&str> { value.get(name).and_then(JsonValue::as_str) };
            match event {
                "span_open" => {
                    let Some(name) = field_str("name") else {
                        continue;
                    };
                    open.entry(field_u64("thread")).or_default().push(OpenSpan {
                        name: name.to_string(),
                        children: Vec::new(),
                    });
                }
                "span_close" => {
                    let Some(name) = field_str("name") else {
                        continue;
                    };
                    let stack = open.entry(field_u64("thread")).or_default();
                    // Spans close innermost-first in the normal case;
                    // search backwards to tolerate out-of-order closes.
                    let Some(pos) = stack.iter().rposition(|s| s.name == name) else {
                        continue;
                    };
                    let closed = stack.remove(pos);
                    let node = SpanNode {
                        name: closed.name,
                        nanos: field_u64("nanos"),
                        children: closed.children,
                    };
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => trace
                            .roots
                            .entry(field_u64("thread"))
                            .or_default()
                            .push(node),
                    }
                }
                "counter" => {
                    if let Some(name) = field_str("name") {
                        trace.counters.insert(name.to_string(), field_u64("total"));
                    }
                }
                _ => {}
            }
        }
        if events == 0 {
            return Err(TraceError::NoEvents);
        }
        Ok(trace)
    }

    /// Wall times of the pipeline stages: every direct child of a span
    /// named `pipeline`, in completion order across the whole trace.
    pub fn stage_walls(&self) -> Vec<(String, u64)> {
        let mut stages = Vec::new();
        for roots in self.roots.values() {
            for root in roots {
                collect_stages(root, &mut stages);
            }
        }
        stages
    }

    /// Total wall time of the `pipeline` span(s), if present.
    pub fn pipeline_nanos(&self) -> Option<u64> {
        let mut total = 0u64;
        let mut found = false;
        for roots in self.roots.values() {
            for root in roots {
                visit(root, &mut |node| {
                    if node.name == "pipeline" {
                        total += node.nanos;
                        found = true;
                    }
                });
            }
        }
        found.then_some(total)
    }

    /// Flamegraph folded-stack output: one `stack value` line per
    /// distinct root-to-span path, where `value` is the span's *self*
    /// time in nanoseconds and stacks are prefixed `thread-<id>`.
    pub fn folded(&self) -> String {
        let mut lines: BTreeMap<String, u64> = BTreeMap::new();
        for (&thread, roots) in &self.roots {
            for root in roots {
                fold(root, &format!("thread-{thread}"), &mut lines);
            }
        }
        let mut out = String::new();
        for (stack, self_ns) in lines {
            let _ = writeln!(out, "{stack} {self_ns}");
        }
        out
    }

    /// A human-readable critical-path report: stage wall times as
    /// percentages of the pipeline, each stage's heaviest descendant
    /// chain, and the headline counters.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let stages = self.stage_walls();
        let total: u64 = match self.pipeline_nanos() {
            Some(ns) => ns,
            None => stages.iter().map(|(_, ns)| ns).sum(),
        };
        let _ = writeln!(out, "pipeline wall time {:.3} s", total as f64 / 1e9);
        for (name, nanos) in &stages {
            let pct = if total > 0 {
                100.0 * *nanos as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  stage {name:<14} {:>9.3} s  {pct:>5.1}%",
                *nanos as f64 / 1e9
            );
            if let Some(node) = self.find_span(name) {
                let mut chain = Vec::new();
                let mut cursor = node;
                while let Some(child) = cursor.heaviest_child() {
                    chain.push(child);
                    cursor = child;
                }
                if let Some(deepest) = chain.last() {
                    let path: Vec<&str> = chain.iter().map(|n| n.name.as_str()).collect();
                    let _ = writeln!(
                        out,
                        "        critical path: {} ({:.3} s at {})",
                        path.join(" > "),
                        deepest.nanos as f64 / 1e9,
                        deepest.name,
                    );
                }
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters (final totals):");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "    {name} {total}");
            }
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(
                out,
                "  ({} unparseable line(s) skipped)",
                self.skipped_lines
            );
        }
        out
    }

    fn find_span(&self, name: &str) -> Option<&SpanNode> {
        for roots in self.roots.values() {
            for root in roots {
                if let Some(found) = find(root, name) {
                    return Some(found);
                }
            }
        }
        None
    }
}

fn visit<'a>(node: &'a SpanNode, f: &mut impl FnMut(&'a SpanNode)) {
    f(node);
    for child in &node.children {
        visit(child, f);
    }
}

fn find<'a>(node: &'a SpanNode, name: &str) -> Option<&'a SpanNode> {
    if node.name == name {
        return Some(node);
    }
    node.children.iter().find_map(|c| find(c, name))
}

fn collect_stages(node: &SpanNode, stages: &mut Vec<(String, u64)>) {
    if node.name == "pipeline" {
        for child in &node.children {
            stages.push((child.name.clone(), child.nanos));
        }
    }
    for child in &node.children {
        collect_stages(child, stages);
    }
}

fn fold(node: &SpanNode, prefix: &str, lines: &mut BTreeMap<String, u64>) {
    let stack = format!("{prefix};{}", node.name);
    *lines.entry(stack.clone()).or_insert(0) += node.self_nanos();
    for child in &node.children {
        fold(child, &stack, lines);
    }
}

/// Per-stage wall-time comparison of two traces (`a` = baseline,
/// `b` = candidate) with signed percentage deltas; stages present in
/// only one run are reported too.
pub fn diff_report(a: &Trace, b: &Trace) -> String {
    let into_map = |t: &Trace| -> BTreeMap<String, u64> {
        // Sum repeated stages (multiple pipeline runs in one file).
        let mut m = BTreeMap::new();
        for (name, ns) in t.stage_walls() {
            *m.entry(name).or_insert(0) += ns;
        }
        m
    };
    let wa = into_map(a);
    let wb = into_map(b);
    let mut names: Vec<&String> = wa.keys().chain(wb.keys()).collect();
    names.sort();
    names.dedup();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>9}",
        "stage", "a_seconds", "b_seconds", "delta"
    );
    for name in names {
        let sa = wa.get(name).copied();
        let sb = wb.get(name).copied();
        let cell = |v: Option<u64>| match v {
            Some(ns) => format!("{:.3}", ns as f64 / 1e9),
            None => "-".to_string(),
        };
        let delta = match (sa, sb) {
            (Some(a_ns), Some(b_ns)) if a_ns > 0 => {
                format!("{:+.1}%", 100.0 * (b_ns as f64 - a_ns as f64) / a_ns as f64)
            }
            (Some(_), Some(_)) => "n/a".to_string(),
            (None, Some(_)) => "added".to_string(),
            (Some(_), None) => "removed".to_string(),
            (None, None) => unreachable!("name came from one of the maps"),
        };
        let _ = writeln!(
            out,
            "{name:<16} {:>12} {:>12} {delta:>9}",
            cell(sa),
            cell(sb)
        );
    }
    let totals = |t: &Trace| t.pipeline_nanos().unwrap_or(0);
    let (ta, tb) = (totals(a), totals(b));
    if ta > 0 && tb > 0 {
        let _ = writeln!(
            out,
            "{:<16} {:>12.3} {:>12.3} {:>8.1}%",
            "pipeline",
            ta as f64 / 1e9,
            tb as f64 / 1e9,
            100.0 * (tb as f64 - ta as f64) / ta as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_open(name: &str, thread: u64) -> String {
        format!(
            r#"{{"event":"span_open","name":"{name}","thread":{thread},"depth":0,"seq":0,"t_ns":0}}"#
        )
    }

    fn span_close(name: &str, thread: u64, nanos: u64) -> String {
        format!(
            r#"{{"event":"span_close","name":"{name}","thread":{thread},"depth":0,"nanos":{nanos},"seq":0,"t_ns":0}}"#
        )
    }

    fn pipeline_jsonl(stage_ns: &[(&str, u64)]) -> String {
        let total: u64 = stage_ns.iter().map(|(_, ns)| ns).sum();
        let mut lines = vec![span_open("pipeline", 0)];
        for (name, ns) in stage_ns {
            lines.push(span_open(name, 0));
            lines.push(span_close(name, 0, *ns));
        }
        lines.push(span_close("pipeline", 0, total + 1_000));
        lines.join("\n")
    }

    #[test]
    fn rebuilds_stage_walls_from_jsonl() {
        let text = pipeline_jsonl(&[
            ("dynamics", 2_000_000),
            ("extraction", 5_000_000),
            ("tree_fit", 1_000_000),
            ("verification", 3_000_000),
        ]);
        let trace = Trace::from_jsonl(&text).unwrap();
        assert_eq!(
            trace.stage_walls(),
            vec![
                ("dynamics".to_string(), 2_000_000),
                ("extraction".to_string(), 5_000_000),
                ("tree_fit".to_string(), 1_000_000),
                ("verification".to_string(), 3_000_000),
            ]
        );
        assert_eq!(trace.pipeline_nanos(), Some(11_001_000));
        let report = trace.report();
        assert!(report.contains("stage extraction"));
        assert!(report.contains('%'));
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let text = [
            span_open("pipeline", 0),
            span_open("extraction", 0),
            span_close("extraction", 0, 400),
            span_close("pipeline", 0, 1_000),
            span_open("worker", 3),
            span_close("worker", 3, 50),
        ]
        .join("\n");
        let trace = Trace::from_jsonl(&text).unwrap();
        let folded = trace.folded();
        assert!(folded.contains("thread-0;pipeline 600\n"), "{folded}");
        assert!(folded.contains("thread-0;pipeline;extraction 400\n"));
        assert!(folded.contains("thread-3;worker 50\n"));
    }

    #[test]
    fn diff_reports_percentage_deltas() {
        let a = Trace::from_jsonl(&pipeline_jsonl(&[
            ("dynamics", 1_000_000_000),
            ("extraction", 2_000_000_000),
        ]))
        .unwrap();
        let b = Trace::from_jsonl(&pipeline_jsonl(&[
            ("dynamics", 1_500_000_000),
            ("tree_fit", 100_000_000),
        ]))
        .unwrap();
        let report = diff_report(&a, &b);
        assert!(report.contains("+50.0%"), "{report}");
        assert!(report.contains("removed"), "{report}");
        assert!(report.contains("added"), "{report}");
    }

    #[test]
    fn tolerates_garbage_and_truncated_lines() {
        let text = format!(
            "not json\n{}\n{}\n{{\"event\":\"span_close\",\"name\":\"half",
            span_open("pipeline", 0),
            span_close("pipeline", 0, 10),
        );
        let trace = Trace::from_jsonl(&text).unwrap();
        assert_eq!(trace.skipped_lines, 2);
        assert_eq!(trace.pipeline_nanos(), Some(10));
    }

    #[test]
    fn counters_keep_final_totals() {
        let text = [
            span_open("pipeline", 0),
            r#"{"event":"counter","name":"extract.rollouts","delta":5,"total":5}"#.to_string(),
            r#"{"event":"counter","name":"extract.rollouts","delta":7,"total":12}"#.to_string(),
            span_close("pipeline", 0, 10),
        ]
        .join("\n");
        let trace = Trace::from_jsonl(&text).unwrap();
        assert_eq!(trace.counters["extract.rollouts"], 12);
        assert!(trace.report().contains("extract.rollouts 12"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(Trace::from_jsonl(""), Err(TraceError::NoEvents)));
        assert!(matches!(
            Trace::from_jsonl("junk\nmore junk"),
            Err(TraceError::NoEvents)
        ));
    }
}
