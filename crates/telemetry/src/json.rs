//! Hand-rolled JSON writing and parsing.
//!
//! The build environment is offline, so the JSONL sink cannot lean on
//! `serde`. Events are flat objects with string/number fields — a few
//! dozen lines of escaping cover the writer — and the parser exists so
//! tests (and downstream consumers of telemetry files) can validate
//! every emitted line without external crates.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
///
/// Escapes `"` and `\`, the common control shorthands (`\n`, `\r`,
/// `\t`), and every remaining control character below `U+0020` as
/// `\u00XX`. All other characters (including non-ASCII) pass through
/// verbatim — JSON strings are UTF-8.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Incremental writer for a single flat JSON object.
///
/// # Example
///
/// ```
/// use hvac_telemetry::json::ObjectWriter;
///
/// let mut o = ObjectWriter::new();
/// o.str_field("event", "span_open");
/// o.u64_field("depth", 1);
/// assert_eq!(o.finish(), r#"{"event":"span_open","depth":1}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_into(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        escape_into(&mut self.buf, value);
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field. Non-finite values are emitted as `null`
    /// (JSON has no NaN/Inf).
    pub fn f64_field(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            // {:?} prints with round-trip precision.
            let _ = write!(self.buf, "{value:?}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds an array of floats. Values round-trip bitwise through
    /// [`parse`] (written with `{:?}` precision); non-finite entries
    /// become `null`.
    pub fn f64_array_field(&mut self, name: &str, values: &[f64]) {
        self.key(name);
        self.buf.push('[');
        for (i, value) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            if value.is_finite() {
                let _ = write!(self.buf, "{value:?}");
            } else {
                self.buf.push_str("null");
            }
        }
        self.buf.push(']');
    }

    /// Adds an array of strings.
    pub fn str_array_field(&mut self, name: &str, values: &[String]) {
        self.key(name);
        self.buf.push('[');
        for (i, value) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            escape_into(&mut self.buf, value);
        }
        self.buf.push(']');
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset of the error.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
///
/// # Example
///
/// ```
/// use hvac_telemetry::json::parse;
///
/// let v = parse(r#"{"event":"counter","delta":3}"#).unwrap();
/// assert_eq!(v.get("delta").and_then(|d| d.as_u64()), Some(3));
/// ```
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Telemetry never emits surrogate pairs;
                            // lone surrogates decode to the replacement
                            // character rather than failing the line.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 3; // +1 more below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escaped(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escaped(r"a\b"), r#""a\\b""#);
        assert_eq!(escaped("a\nb\tc\r"), r#""a\nb\tc\r""#);
        assert_eq!(escaped("\u{0001}\u{001f}"), r#""\u0001\u001f""#);
        assert_eq!(escaped("héllo °C"), "\"héllo °C\"");
    }

    #[test]
    fn object_writer_builds_valid_json() {
        let mut o = ObjectWriter::new();
        o.str_field("name", "pipe\"line");
        o.u64_field("count", 42);
        o.f64_field("secs", 1.5);
        o.f64_field("bad", f64::NAN);
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("pipe\"line")
        );
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("secs").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
    }

    #[test]
    fn f64_arrays_round_trip_bitwise() {
        let values = [18.5, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, f64::NAN];
        let mut o = ObjectWriter::new();
        o.f64_array_field("obs", &values);
        let v = parse(&o.finish()).unwrap();
        let items = v.get("obs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items.len(), values.len());
        for (item, original) in items.iter().zip(&values) {
            match item.as_f64() {
                Some(parsed) => assert_eq!(parsed.to_bits(), original.to_bits()),
                None => assert!(!original.is_finite()),
            }
        }
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "quote\" back\\slash \ncontrol\u{0007} unicode°∆ tab\t";
        let v = parse(&escaped(nasty)).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":false}"#).unwrap();
        let a = v.get("a").unwrap();
        assert_eq!(
            a,
            &JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-300.0),
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"open", "{}x", "nan"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""°C ∆""#).unwrap();
        assert_eq!(v.as_str(), Some("°C ∆"));
    }
}
