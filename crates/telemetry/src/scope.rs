//! Per-run metric attribution.
//!
//! The registry is process-global and cumulative: diffing two
//! [`crate::registry::snapshot`]s attributes *everything* the process
//! did in between, including work done by concurrent pipeline runs. A
//! [`RunScope`] fixes that: while a thread is inside a scope, every
//! [`crate::Counter::add`] and [`crate::Histogram::record`] it performs
//! is *also* tallied into the scope's private map (the global registry
//! still sees the update). Reading the scope back gives exactly the
//! work this run did, no matter what the rest of the process was doing.
//!
//! Scopes are entered per thread. Code that fans work out to its own
//! worker threads propagates the scope by capturing
//! [`current_scope`] before the spawn and entering the returned
//! [`ScopeHandle`] inside each worker (see `hvac-extract`'s parallel
//! generator for the pattern).
//!
//! ```
//! use hvac_telemetry as telemetry;
//!
//! let scope = telemetry::RunScope::new();
//! {
//!     let _guard = scope.handle().enter();
//!     telemetry::counter("demo.scope.work").add(3);
//! }
//! assert_eq!(scope.counters().get("demo.scope.work"), Some(&3));
//! ```

use crate::registry::HistogramSnapshot;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct ScopeData {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, HistogramSnapshot>>,
}

thread_local! {
    /// Stack of scopes active on this thread (innermost last). Updates
    /// are attributed to every active scope so nested scopes both see
    /// the work.
    static ACTIVE: RefCell<Vec<Arc<ScopeData>>> = const { RefCell::new(Vec::new()) };
}

/// A per-run metric collector.
///
/// Create one per logical run, [`ScopeHandle::enter`] it on every
/// thread doing that run's work, and read the attributed deltas back
/// with [`RunScope::counters`] / [`RunScope::histograms`] once the run
/// finishes.
#[derive(Debug, Default)]
pub struct RunScope {
    data: Arc<ScopeData>,
}

impl RunScope {
    /// Creates an empty scope (not yet active on any thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cheap, sendable handle for entering this scope on a thread.
    pub fn handle(&self) -> ScopeHandle {
        ScopeHandle {
            data: Arc::clone(&self.data),
        }
    }

    /// Every counter delta attributed to this scope so far.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.data.counters.lock().expect("scope mutex").clone()
    }

    /// Every histogram attributed to this scope so far (bounds mirror
    /// the global registration; buckets/count/sum/max cover only the
    /// scoped samples).
    pub fn histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.data.histograms.lock().expect("scope mutex").clone()
    }
}

/// A sendable handle to a [`RunScope`], used to activate it on worker
/// threads.
#[derive(Debug, Clone)]
pub struct ScopeHandle {
    data: Arc<ScopeData>,
}

impl ScopeHandle {
    /// Activates the scope on the calling thread until the returned
    /// guard drops. Nesting is allowed; updates count toward every
    /// active scope.
    pub fn enter(&self) -> ScopeGuard {
        ACTIVE.with(|stack| stack.borrow_mut().push(Arc::clone(&self.data)));
        ScopeGuard {
            data: Arc::clone(&self.data),
        }
    }
}

/// RAII guard deactivating the scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    data: Arc<ScopeData>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop *this* guard's scope; guards normally drop in LIFO
            // order, but be robust to out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|d| Arc::ptr_eq(d, &self.data)) {
                stack.remove(pos);
            }
        });
    }
}

/// The innermost scope active on the calling thread, if any. Capture
/// this before spawning workers and [`ScopeHandle::enter`] it inside
/// each, so their metric updates stay attributed to the run.
pub fn current_scope() -> Option<ScopeHandle> {
    ACTIVE.with(|stack| {
        stack.borrow().last().map(|data| ScopeHandle {
            data: Arc::clone(data),
        })
    })
}

/// Attributes a counter delta to every scope active on this thread.
/// Called by [`crate::Counter::add`]; a no-op (one thread-local read)
/// when no scope is active.
pub(crate) fn record_counter(name: &str, n: u64) {
    ACTIVE.with(|stack| {
        for data in stack.borrow().iter() {
            let mut counters = data.counters.lock().expect("scope mutex");
            match counters.get_mut(name) {
                Some(v) => *v += n,
                None => {
                    counters.insert(name.to_owned(), n);
                }
            }
        }
    });
}

/// Attributes a histogram sample to every scope active on this thread.
/// Called by [`crate::Histogram::record`].
pub(crate) fn record_histogram(name: &str, bounds: &[u64], value: u64) {
    ACTIVE.with(|stack| {
        for data in stack.borrow().iter() {
            let mut histograms = data.histograms.lock().expect("scope mutex");
            let h = histograms
                .entry(name.to_owned())
                .or_insert_with(|| HistogramSnapshot {
                    bounds: bounds.to_vec(),
                    buckets: vec![0; bounds.len() + 1],
                    count: 0,
                    sum: 0,
                    max: 0,
                });
            let idx = h
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(h.bounds.len());
            h.buckets[idx] += 1;
            h.count += 1;
            h.sum += value;
            h.max = h.max.max(value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, histogram};

    #[test]
    fn scoped_counters_are_attributed_and_global_still_moves() {
        let c = counter("test.scope.basic");
        let global_before = c.get();
        let scope = RunScope::new();
        {
            let _guard = scope.handle().enter();
            c.add(5);
        }
        c.add(2); // outside the scope
        assert_eq!(scope.counters().get("test.scope.basic"), Some(&5));
        assert_eq!(c.get() - global_before, 7);
    }

    #[test]
    fn concurrent_scopes_do_not_interleave() {
        let shared = counter("test.scope.concurrent");
        let scope_a = RunScope::new();
        let scope_b = RunScope::new();
        std::thread::scope(|s| {
            let ha = scope_a.handle();
            let hb = scope_b.handle();
            s.spawn(move || {
                let _guard = ha.enter();
                for _ in 0..1000 {
                    shared.incr();
                }
            });
            s.spawn(move || {
                let _guard = hb.enter();
                for _ in 0..500 {
                    shared.add(2);
                }
            });
        });
        assert_eq!(scope_a.counters().get("test.scope.concurrent"), Some(&1000));
        assert_eq!(scope_b.counters().get("test.scope.concurrent"), Some(&1000));
    }

    #[test]
    fn scope_propagates_to_workers_via_handle() {
        let c = counter("test.scope.workers");
        let scope = RunScope::new();
        {
            let _guard = scope.handle().enter();
            let inherited = current_scope().expect("scope active");
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _worker_guard = inherited.enter();
                    c.add(11);
                });
            });
        }
        assert_eq!(scope.counters().get("test.scope.workers"), Some(&11));
    }

    #[test]
    fn no_scope_means_no_attribution() {
        assert!(current_scope().is_none());
        counter("test.scope.unscoped").add(3);
        let scope = RunScope::new();
        assert!(scope.counters().is_empty());
    }

    #[test]
    fn nested_scopes_both_see_updates() {
        let c = counter("test.scope.nested");
        let outer = RunScope::new();
        let inner = RunScope::new();
        {
            let _o = outer.handle().enter();
            c.add(1);
            {
                let _i = inner.handle().enter();
                c.add(10);
            }
            c.add(100);
        }
        assert_eq!(outer.counters().get("test.scope.nested"), Some(&111));
        assert_eq!(inner.counters().get("test.scope.nested"), Some(&10));
    }

    #[test]
    fn scoped_histograms_accumulate_bucket_counts() {
        let h = histogram("test.scope.hist", &[10, 100]);
        let scope = RunScope::new();
        {
            let _guard = scope.handle().enter();
            h.record(5);
            h.record(50);
            h.record(500);
        }
        h.record(7); // unscoped
        let snap = &scope.histograms()["test.scope.hist"];
        assert_eq!(snap.buckets, vec![1, 1, 1]);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 555);
        assert_eq!(snap.max, 500);
        assert_eq!(snap.bounds, vec![10, 100]);
    }
}
