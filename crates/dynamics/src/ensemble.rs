//! Dynamics-model ensembles with epistemic-uncertainty estimates.
//!
//! CLUE (An et al., BuildSys'23) — the paper's state-of-the-art
//! baseline — augments MBRL with *epistemic uncertainty estimation*: an
//! ensemble of dynamics models whose prediction disagreement flags
//! states where the model cannot be trusted, triggering a fallback to a
//! safe rule-based action. This module provides that substrate.

use crate::dataset::TransitionDataset;
use crate::error::DynamicsError;
use crate::model::{DynamicsModel, ModelConfig};
use hvac_env::{Observation, SetpointAction};
use hvac_stats::split_seed;

/// Ensemble construction settings.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleConfig {
    /// Number of ensemble members (CLUE uses a small ensemble; 5 is the
    /// common default).
    pub members: usize,
    /// Per-member model configuration (seeds are derived per member).
    pub model: ModelConfig,
    /// Whether each member trains on a bootstrap resample (true) or on
    /// the full dataset with different initializations only (false).
    pub bootstrap: bool,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            members: 5,
            model: ModelConfig::default(),
            bootstrap: true,
        }
    }
}

/// An ensemble of [`DynamicsModel`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsEnsemble {
    models: Vec<DynamicsModel>,
}

impl DynamicsEnsemble {
    /// Trains `config.members` models with decorrelated seeds (and
    /// optionally bootstrapped data).
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::EmptyEnsemble`] for zero members, plus
    /// any member-training error.
    pub fn train(
        dataset: &TransitionDataset,
        config: &EnsembleConfig,
    ) -> Result<Self, DynamicsError> {
        if config.members == 0 {
            return Err(DynamicsError::EmptyEnsemble);
        }
        let mut models = Vec::with_capacity(config.members);
        for m in 0..config.members {
            let member_seed = split_seed(config.model.seed, m as u64);
            let member_config = ModelConfig {
                seed: member_seed,
                ..config.model.clone()
            };
            let data = if config.bootstrap {
                dataset.bootstrap(split_seed(member_seed, 7))
            } else {
                dataset.clone()
            };
            models.push(DynamicsModel::train(&data, &member_config)?);
        }
        Ok(Self { models })
    }

    /// Wraps pre-trained models.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::EmptyEnsemble`] for an empty vector.
    pub fn from_models(models: Vec<DynamicsModel>) -> Result<Self, DynamicsError> {
        if models.is_empty() {
            return Err(DynamicsError::EmptyEnsemble);
        }
        Ok(Self { models })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the ensemble is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The members.
    pub fn members(&self) -> &[DynamicsModel] {
        &self.models
    }

    /// Mean prediction across members.
    pub fn predict_mean(&self, obs: &Observation, action: SetpointAction) -> f64 {
        let sum: f64 = self
            .models
            .iter()
            .map(|m| m.predict_next_temperature(obs, action))
            .sum();
        sum / self.models.len() as f64
    }

    /// Mean prediction and epistemic uncertainty (population std of the
    /// member predictions) — the disagreement signal CLUE gates on.
    pub fn predict_with_uncertainty(
        &self,
        obs: &Observation,
        action: SetpointAction,
    ) -> (f64, f64) {
        let preds: Vec<f64> = self
            .models
            .iter()
            .map(|m| m.predict_next_temperature(obs, action))
            .collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    /// The first member, usable as a single point-estimate model.
    pub fn primary(&self) -> &DynamicsModel {
        &self.models[0]
    }

    /// Batched mean prediction across members — the lockstep-planner
    /// counterpart of [`DynamicsEnsemble::predict_mean`]. Each member
    /// predicts the whole batch through its allocation-free batched
    /// path; per-observation sums accumulate in member order, so every
    /// output is bit-identical to the scalar `predict_mean`.
    ///
    /// # Panics
    ///
    /// Panics if `observations`, `actions`, and `out` differ in length.
    pub fn predict_mean_batch_into(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        assert_eq!(observations.len(), actions.len(), "batch width");
        assert_eq!(observations.len(), out.len(), "output buffer width");
        MEMBER_BUFFER.with(|cell| {
            let tmp = &mut *cell.borrow_mut();
            tmp.resize(out.len(), 0.0);
            out.fill(0.0);
            for model in &self.models {
                model.predict_batch_into(observations, actions, tmp);
                for (acc, &p) in out.iter_mut().zip(tmp.iter()) {
                    *acc += p;
                }
            }
            let n = self.models.len() as f64;
            for acc in out.iter_mut() {
                *acc /= n;
            }
        });
    }
}

thread_local! {
    /// Per-thread member-prediction buffer for the batched mean path.
    static MEMBER_BUFFER: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::{Disturbances, Transition};
    use hvac_nn::TrainConfig;

    fn synthetic_dataset(n: usize) -> TransitionDataset {
        (0..n)
            .map(|i| {
                let s = 18.0 + (i % 8) as f64;
                let h = 15 + (i % 9) as i32;
                Transition {
                    observation: Observation::new(s, Disturbances::default()),
                    action: SetpointAction::new(h, 25).unwrap(),
                    next_zone_temperature: 0.9 * s + 0.1 * f64::from(h),
                }
            })
            .collect()
    }

    fn quick_config(members: usize) -> EnsembleConfig {
        EnsembleConfig {
            members,
            model: ModelConfig {
                hidden: vec![16],
                train: TrainConfig {
                    epochs: 40,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
            bootstrap: true,
        }
    }

    #[test]
    fn zero_members_rejected() {
        let d = synthetic_dataset(50);
        assert!(matches!(
            DynamicsEnsemble::train(&d, &quick_config(0)),
            Err(DynamicsError::EmptyEnsemble)
        ));
        assert!(DynamicsEnsemble::from_models(Vec::new()).is_err());
    }

    #[test]
    fn members_disagree_somewhat() {
        let d = synthetic_dataset(60);
        let e = DynamicsEnsemble::train(&d, &quick_config(3)).unwrap();
        assert_eq!(e.len(), 3);
        let obs = Observation::new(20.0, Disturbances::default());
        let (_, std) = e.predict_with_uncertainty(&obs, SetpointAction::off());
        assert!(std > 0.0, "identical members defeat the purpose");
    }

    #[test]
    fn uncertainty_grows_out_of_distribution() {
        let d = synthetic_dataset(120);
        let e = DynamicsEnsemble::train(&d, &quick_config(4)).unwrap();
        let in_dist = Observation::new(20.0, Disturbances::default());
        let out_dist = Observation::new(
            45.0,
            Disturbances {
                outdoor_temperature: 60.0,
                solar_radiation: 2000.0,
                ..Disturbances::default()
            },
        );
        let (_, s_in) = e.predict_with_uncertainty(&in_dist, SetpointAction::off());
        let (_, s_out) = e.predict_with_uncertainty(&out_dist, SetpointAction::off());
        assert!(
            s_out > s_in,
            "expected OOD disagreement ({s_out}) > in-dist ({s_in})"
        );
    }

    #[test]
    fn mean_matches_uncertainty_mean() {
        let d = synthetic_dataset(60);
        let e = DynamicsEnsemble::train(&d, &quick_config(3)).unwrap();
        let obs = Observation::new(21.0, Disturbances::default());
        let a = SetpointAction::new(20, 25).unwrap();
        let (mean, _) = e.predict_with_uncertainty(&obs, a);
        assert!((mean - e.predict_mean(&obs, a)).abs() < 1e-12);
    }

    #[test]
    fn primary_is_first_member() {
        let d = synthetic_dataset(60);
        let e = DynamicsEnsemble::train(&d, &quick_config(2)).unwrap();
        assert_eq!(e.primary(), &e.members()[0]);
    }

    #[test]
    fn batched_mean_is_bit_identical_to_scalar_mean() {
        let d = synthetic_dataset(80);
        let e = DynamicsEnsemble::train(&d, &quick_config(3)).unwrap();
        let observations: Vec<Observation> = (0..12)
            .map(|i| Observation::new(16.0 + i as f64, Disturbances::default()))
            .collect();
        let actions: Vec<SetpointAction> = (0..12)
            .map(|i| SetpointAction::new(15 + (i % 9), 25).unwrap())
            .collect();
        let mut out = vec![0.0; 12];
        e.predict_mean_batch_into(&observations, &actions, &mut out);
        for i in 0..12 {
            assert_eq!(out[i], e.predict_mean(&observations[i], actions[i]));
        }
    }
}
