//! Per-feature standardization.

use crate::error::DynamicsError;

/// Column-wise `(x − mean) / std` normalizer fitted on training data.
///
/// Constant columns (zero variance) pass through unscaled (std treated
/// as 1) so that occupancy-like features with long constant stretches
/// cannot produce NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits a normalizer on row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::NotEnoughData`] for an empty matrix.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, DynamicsError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(DynamicsError::NotEnoughData { got: 0, needed: 1 });
        }
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for row in rows {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in rows {
            for ((s, &v), &m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(Self { means, stds })
    }

    /// Reconstructs a normalizer from explicit statistics
    /// (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::NotEnoughData`] for empty or mismatched
    /// vectors or non-positive/non-finite standard deviations.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<Self, DynamicsError> {
        if means.is_empty() || means.len() != stds.len() {
            return Err(DynamicsError::NotEnoughData {
                got: means.len().min(stds.len()),
                needed: 1,
            });
        }
        if means.iter().any(|m| !m.is_finite()) || stds.iter().any(|s| !(s.is_finite() && *s > 0.0))
        {
            return Err(DynamicsError::NotEnoughData { got: 0, needed: 1 });
        }
        Ok(Self { means, stds })
    }

    /// Dimensionality the normalizer was fitted on.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations (1 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Normalizes one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted dimensionality.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Inverse-transforms one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted dimensionality.
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &m), &s)| v * s + m)
            .collect()
    }

    /// Normalizes a whole matrix.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Normalizes flat row-major data into a caller-provided buffer —
    /// the zero-allocation variant of [`Normalizer::transform`] used by
    /// the batched planner hot path. `rows` may hold any number of
    /// rows; each column is standardized with the same `(v − m) / s`
    /// arithmetic as the scalar path, so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the fitted
    /// dimensionality or `out.len() != rows.len()`.
    pub fn transform_into(&self, rows: &[f64], out: &mut [f64]) {
        let dim = self.means.len();
        assert!(rows.len().is_multiple_of(dim), "row width mismatch");
        assert_eq!(rows.len(), out.len(), "output buffer mismatch");
        for (src, dst) in rows.chunks_exact(dim).zip(out.chunks_exact_mut(dim)) {
            for ((d, &v), (&m, &s)) in dst
                .iter_mut()
                .zip(src)
                .zip(self.means.iter().zip(&self.stds))
            {
                *d = (v - m) / s;
            }
        }
    }

    /// Inverse-transforms flat row-major data into a caller-provided
    /// buffer — the zero-allocation variant of [`Normalizer::inverse`].
    /// Bit-identical to the scalar path (`v * s + m` per column).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the fitted
    /// dimensionality or `out.len() != rows.len()`.
    pub fn inverse_into(&self, rows: &[f64], out: &mut [f64]) {
        let dim = self.means.len();
        assert!(rows.len().is_multiple_of(dim), "row width mismatch");
        assert_eq!(rows.len(), out.len(), "output buffer mismatch");
        for (src, dst) in rows.chunks_exact(dim).zip(out.chunks_exact_mut(dim)) {
            for ((d, &v), (&m, &s)) in dst
                .iter_mut()
                .zip(src)
                .zip(self.means.iter().zip(&self.stds))
            {
                *d = v * s + m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_computes_mean_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
        let n = Normalizer::fit(&rows).unwrap();
        assert_eq!(n.means(), &[2.0, 10.0]);
        assert_eq!(n.stds()[0], 1.0);
        assert_eq!(n.stds()[1], 1.0); // constant column fallback
    }

    #[test]
    fn transform_standardizes() {
        let rows = vec![vec![0.0], vec![10.0]];
        let n = Normalizer::fit(&rows).unwrap();
        let t = n.transform(&[10.0]);
        assert!((t[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert!(Normalizer::fit(&[]).is_err());
        assert!(Normalizer::fit(&[Vec::new()]).is_err());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let n = Normalizer::fit(&[vec![1.0, 2.0]]).unwrap();
        n.transform(&[1.0]);
    }

    #[test]
    fn transform_into_matches_scalar_transform() {
        let rows = vec![
            vec![1.0, -4.0, 9.0],
            vec![3.0, 2.0, -1.0],
            vec![0.5, 0.0, 7.0],
        ];
        let n = Normalizer::fit(&rows).unwrap();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut out = vec![0.0; flat.len()];
        n.transform_into(&flat, &mut out);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(&out[r * 3..(r + 1) * 3], n.transform(row).as_slice());
        }
        let mut back = vec![0.0; flat.len()];
        n.inverse_into(&out, &mut back);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                &back[r * 3..(r + 1) * 3],
                n.inverse(&n.transform(row)).as_slice()
            );
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn transform_into_rejects_misaligned_batch() {
        let n = Normalizer::fit(&[vec![1.0, 2.0]]).unwrap();
        let mut out = [0.0; 3];
        n.transform_into(&[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "output buffer mismatch")]
    fn inverse_into_rejects_short_output() {
        let n = Normalizer::fit(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let mut out = [0.0; 2];
        n.inverse_into(&[1.0, 2.0, 3.0, 4.0], &mut out);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 3),
                2..20,
            ),
            probe in proptest::collection::vec(-100.0f64..100.0, 3),
        ) {
            let n = Normalizer::fit(&rows).unwrap();
            let back = n.inverse(&n.transform(&probe));
            for (a, b) in back.iter().zip(&probe) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_transformed_training_data_standard(
            col in proptest::collection::vec(-50.0f64..50.0, 5..50),
        ) {
            prop_assume!(col.iter().any(|&v| (v - col[0]).abs() > 1e-6));
            let rows: Vec<Vec<f64>> = col.iter().map(|&v| vec![v]).collect();
            let n = Normalizer::fit(&rows).unwrap();
            let t: Vec<f64> = rows.iter().map(|r| n.transform(r)[0]).collect();
            let mean = t.iter().sum::<f64>() / t.len() as f64;
            let var = t.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / t.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
            prop_assert!((var - 1.0).abs() < 1e-6);
        }
    }
}
