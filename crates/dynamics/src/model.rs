//! The MLP dynamics model `f̂ : (s, d, a) → s'`.

use crate::dataset::{TransitionDataset, DYNAMICS_INPUT_DIM};
use crate::error::DynamicsError;
use crate::normalize::Normalizer;
use hvac_env::{Observation, SetpointAction};
use hvac_nn::{Activation, Mlp, MlpScratch, TrainConfig};
use std::cell::RefCell;

/// Reusable buffers for allocation-free (batched) dynamics prediction.
///
/// One scratch serves any number of [`DynamicsModel::predict_rows_with`]
/// calls and any batch size — buffers grow on demand and are never
/// shrunk, so the steady-state planner hot path performs no heap
/// allocation at all.
#[derive(Debug, Clone, Default)]
pub struct DynamicsScratch {
    /// Raw input rows (`n × DYNAMICS_INPUT_DIM`).
    raw: Vec<f64>,
    /// Normalized input rows (`n × DYNAMICS_INPUT_DIM`).
    normed: Vec<f64>,
    /// Normalized network outputs (`n × 1`).
    y: Vec<f64>,
    /// Network-internal ping-pong buffers.
    mlp: MlpScratch,
}

impl DynamicsScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the convenience batched entry points,
    /// so `&self` prediction stays `Sync`-friendly *and* allocation-free
    /// after the first call on each thread.
    static CACHED_SCRATCH: RefCell<DynamicsScratch> = RefCell::new(DynamicsScratch::new());
}

/// Configuration of the dynamics model. The training hyperparameters
/// default to the paper's (Section 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Hidden-layer widths (input 8 and output 1 are implied).
    pub hidden: Vec<usize>,
    /// Training settings (epochs 150, Adam lr `1e-3`, wd `1e-5`).
    pub train: TrainConfig,
    /// Fraction of data used for training (rest validates).
    pub train_fraction: f64,
    /// Seed controlling weight init, the train/val split and shuffles.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64],
            train: TrainConfig::paper(),
            train_fraction: 0.9,
            seed: 0,
        }
    }
}

/// A trained dynamics model: normalizing wrapper around an [`Mlp`],
/// predicting the next zone temperature from `(s_t, d_t, a_t)`.
///
/// The model is deliberately a *black box* from the perspective of the
/// verification machinery — only its input/output behavior is used, just
/// as the paper extracts policies from an opaque learned `f̂`.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsModel {
    mlp: Mlp,
    input_normalizer: Normalizer,
    target_normalizer: Normalizer,
    validation_rmse: f64,
    train_rmse: f64,
}

impl DynamicsModel {
    /// Trains a model on the historical dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::NotEnoughData`] for datasets too small to
    /// split, plus any underlying network error.
    pub fn train(dataset: &TransitionDataset, config: &ModelConfig) -> Result<Self, DynamicsError> {
        if dataset.len() < 10 {
            return Err(DynamicsError::NotEnoughData {
                got: dataset.len(),
                needed: 10,
            });
        }
        let (train_set, val_set) = dataset.split(config.train_fraction, config.seed)?;
        let (train_x_raw, train_y_raw) = train_set.to_matrices();
        let input_normalizer = Normalizer::fit(&train_x_raw)?;
        let target_normalizer = Normalizer::fit(&train_y_raw)?;
        let train_x = input_normalizer.transform_all(&train_x_raw);
        let train_y = target_normalizer.transform_all(&train_y_raw);

        let mut sizes = Vec::with_capacity(config.hidden.len() + 2);
        sizes.push(DYNAMICS_INPUT_DIM);
        sizes.extend_from_slice(&config.hidden);
        sizes.push(1);
        let mut mlp = Mlp::new(&sizes, Activation::Relu, config.seed)?;
        let mut train_config = config.train;
        train_config.shuffle_seed = config.seed.wrapping_add(1);
        mlp.fit(&train_x, &train_y, &train_config)?;

        let mut model = Self {
            mlp,
            input_normalizer,
            target_normalizer,
            validation_rmse: f64::NAN,
            train_rmse: f64::NAN,
        };
        model.train_rmse = model.rmse_on(&train_set);
        model.validation_rmse = model.rmse_on(&val_set);
        Ok(model)
    }

    /// Predicts `s_{t+1}` for an observation/action pair.
    pub fn predict_next_temperature(&self, obs: &Observation, action: SetpointAction) -> f64 {
        let o = obs.to_vector();
        let (h, c) = action.as_f64_pair();
        let raw = [o[0], o[1], o[2], o[3], o[4], o[5], o[6], h, c];
        self.predict_row(&raw)
    }

    /// Predicts from a raw [`DYNAMICS_INPUT_DIM`]-wide (9-wide) input
    /// row laid out `[s, d…, a_heat, a_cool]`: the zone temperature
    /// `s`, the six disturbance features of the policy input (outdoor
    /// temperature, relative humidity, wind speed, solar radiation,
    /// occupant count, hour of day — together with `s` the 7-wide
    /// policy input), then the heating and cooling setpoints.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not [`DYNAMICS_INPUT_DIM`] wide.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), DYNAMICS_INPUT_DIM, "input row width");
        let x = self.input_normalizer.transform(row);
        let y = self
            .mlp
            .predict(&x)
            .expect("width checked by normalizer/assert");
        self.target_normalizer.inverse(&y)[0]
    }

    /// Batched, allocation-free prediction from flat row-major input
    /// (`n × DYNAMICS_INPUT_DIM`, same per-row layout as
    /// [`DynamicsModel::predict_row`]) into `out` (`n` temperatures).
    ///
    /// Each output is bit-identical to the corresponding
    /// [`DynamicsModel::predict_row`] call: normalization, the network
    /// forward, and the inverse transform all reuse the scalar path's
    /// per-element arithmetic — only the per-call allocations and
    /// per-row layer dispatch are gone, and the network weights stay
    /// cache-resident across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a multiple of [`DYNAMICS_INPUT_DIM`] or
    /// `out` does not hold exactly one slot per row.
    pub fn predict_rows_with(&self, rows: &[f64], scratch: &mut DynamicsScratch, out: &mut [f64]) {
        assert!(
            rows.len().is_multiple_of(DYNAMICS_INPUT_DIM),
            "input row width"
        );
        let n = rows.len() / DYNAMICS_INPUT_DIM;
        assert_eq!(out.len(), n, "output buffer width");
        if n == 0 {
            return;
        }
        scratch.normed.resize(rows.len(), 0.0);
        scratch.y.resize(n, 0.0);
        self.input_normalizer
            .transform_into(rows, &mut scratch.normed);
        self.mlp
            .predict_batch_into(&scratch.normed, n, &mut scratch.mlp, &mut scratch.y)
            .expect("widths checked by asserts");
        self.target_normalizer.inverse_into(&scratch.y, out);
    }

    /// Batched prediction for `(observation, action)` pairs — the
    /// planner's lockstep hot path. Uses a per-thread cached scratch,
    /// so repeated calls are allocation-free after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `observations`, `actions`, and `out` differ in length.
    pub fn predict_batch_into(
        &self,
        observations: &[Observation],
        actions: &[SetpointAction],
        out: &mut [f64],
    ) {
        assert_eq!(observations.len(), actions.len(), "batch width");
        assert_eq!(observations.len(), out.len(), "output buffer width");
        CACHED_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.raw.clear();
            scratch.raw.reserve(observations.len() * DYNAMICS_INPUT_DIM);
            for (obs, action) in observations.iter().zip(actions) {
                let o = obs.to_vector();
                let (h, c) = action.as_f64_pair();
                scratch.raw.extend_from_slice(&o);
                scratch.raw.push(h);
                scratch.raw.push(c);
            }
            // Split the borrow: `raw` is the input, the rest is scratch.
            let raw = std::mem::take(&mut scratch.raw);
            self.predict_rows_with(&raw, scratch, out);
            scratch.raw = raw;
        });
    }

    /// Root-mean-square prediction error over a dataset, °C.
    pub fn rmse_on(&self, dataset: &TransitionDataset) -> f64 {
        if dataset.is_empty() {
            return f64::NAN;
        }
        let mut sq = 0.0;
        for t in dataset.iter() {
            let p = self.predict_next_temperature(&t.observation, t.action);
            sq += (p - t.next_zone_temperature) * (p - t.next_zone_temperature);
        }
        (sq / dataset.len() as f64).sqrt()
    }

    /// RMSE on the held-out validation split, °C.
    pub fn validation_rmse(&self) -> f64 {
        self.validation_rmse
    }

    /// RMSE on the training split, °C.
    pub fn train_rmse(&self) -> f64 {
        self.train_rmse
    }

    /// Total trainable parameter count of the underlying network.
    pub fn parameter_count(&self) -> usize {
        self.mlp.parameter_count()
    }

    /// The underlying network (read-only; serialization/inspection).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The fitted input normalizer.
    pub fn input_normalizer(&self) -> &Normalizer {
        &self.input_normalizer
    }

    /// The fitted target normalizer.
    pub fn target_normalizer(&self) -> &Normalizer {
        &self.target_normalizer
    }

    /// Reassembles a model from its parts (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::NotEnoughData`] if the network width
    /// does not match [`DYNAMICS_INPUT_DIM`] or the normalizer
    /// dimensions.
    pub fn from_parts(
        mlp: Mlp,
        input_normalizer: Normalizer,
        target_normalizer: Normalizer,
        train_rmse: f64,
        validation_rmse: f64,
    ) -> Result<Self, DynamicsError> {
        if mlp.in_dim() != DYNAMICS_INPUT_DIM
            || mlp.in_dim() != input_normalizer.dims()
            || mlp.out_dim() != target_normalizer.dims()
        {
            return Err(DynamicsError::NotEnoughData { got: 0, needed: 1 });
        }
        Ok(Self {
            mlp,
            input_normalizer,
            target_normalizer,
            train_rmse,
            validation_rmse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::{Disturbances, Transition};

    /// A synthetic "building": s' = 0.8 s + 0.1 t_out + 0.1 heat_sp.
    fn synthetic_dataset(n: usize) -> TransitionDataset {
        let mut d = TransitionDataset::new();
        for i in 0..n {
            let s = 15.0 + (i % 10) as f64;
            let t_out = -5.0 + (i % 7) as f64 * 2.0;
            let h = 15 + (i % 9) as i32;
            let c = 21 + (i % 10) as i32;
            let action = SetpointAction::new(h, c).unwrap();
            let next = 0.8 * s + 0.1 * t_out + 0.1 * f64::from(h);
            d.push(Transition {
                observation: Observation::new(
                    s,
                    Disturbances {
                        outdoor_temperature: t_out,
                        relative_humidity: 50.0,
                        wind_speed: 3.0,
                        solar_radiation: 100.0,
                        occupant_count: 0.0,
                        hour_of_day: (i % 24) as f64,
                    },
                ),
                action,
                next_zone_temperature: next,
            });
        }
        d
    }

    fn quick_config() -> ModelConfig {
        ModelConfig {
            hidden: vec![32],
            train: TrainConfig {
                epochs: 120,
                ..TrainConfig::paper()
            },
            ..ModelConfig::default()
        }
    }

    #[test]
    fn learns_synthetic_dynamics() {
        let data = synthetic_dataset(400);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        assert!(
            model.validation_rmse() < 0.5,
            "validation RMSE {}",
            model.validation_rmse()
        );
        // Spot-check one prediction.
        let t = &data.as_slice()[3];
        let p = model.predict_next_temperature(&t.observation, t.action);
        assert!((p - t.next_zone_temperature).abs() < 1.0);
    }

    #[test]
    fn tiny_dataset_rejected() {
        let data = synthetic_dataset(5);
        assert!(matches!(
            DynamicsModel::train(&data, &quick_config()),
            Err(DynamicsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn training_is_reproducible() {
        let data = synthetic_dataset(100);
        let a = DynamicsModel::train(&data, &quick_config()).unwrap();
        let b = DynamicsModel::train(&data, &quick_config()).unwrap();
        let t = &data.as_slice()[0];
        assert_eq!(
            a.predict_next_temperature(&t.observation, t.action),
            b.predict_next_temperature(&t.observation, t.action)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let data = synthetic_dataset(100);
        let a = DynamicsModel::train(&data, &quick_config()).unwrap();
        let config_b = ModelConfig {
            seed: 99,
            ..quick_config()
        };
        let b = DynamicsModel::train(&data, &config_b).unwrap();
        let t = &data.as_slice()[0];
        assert_ne!(
            a.predict_next_temperature(&t.observation, t.action),
            b.predict_next_temperature(&t.observation, t.action)
        );
    }

    #[test]
    fn rmse_nan_on_empty() {
        let data = synthetic_dataset(100);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        assert!(model.rmse_on(&TransitionDataset::new()).is_nan());
    }

    #[test]
    #[should_panic(expected = "input row width")]
    fn bad_row_width_panics() {
        let data = synthetic_dataset(100);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        let _ = model.predict_row(&[1.0, 2.0]);
    }

    #[test]
    fn parameter_count_positive() {
        let data = synthetic_dataset(100);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        assert!(model.parameter_count() > 100);
    }

    #[test]
    fn predict_rows_with_is_bit_identical_to_predict_row() {
        let data = synthetic_dataset(120);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        let rows: Vec<f64> = data
            .iter()
            .take(40)
            .flat_map(TransitionDataset::input_row)
            .collect();
        let mut scratch = DynamicsScratch::new();
        let mut out = vec![0.0; 40];
        model.predict_rows_with(&rows, &mut scratch, &mut out);
        for (i, got) in out.iter().enumerate() {
            let row = &rows[i * DYNAMICS_INPUT_DIM..(i + 1) * DYNAMICS_INPUT_DIM];
            assert_eq!(*got, model.predict_row(row), "row {i}");
        }
        // The scratch is reusable for a different batch size.
        let mut one = [0.0];
        model.predict_rows_with(&rows[..DYNAMICS_INPUT_DIM], &mut scratch, &mut one);
        assert_eq!(one[0], out[0]);
    }

    #[test]
    fn predict_batch_into_matches_predict_next_temperature() {
        let data = synthetic_dataset(120);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        let observations: Vec<Observation> = data.iter().take(25).map(|t| t.observation).collect();
        let actions: Vec<SetpointAction> = data.iter().take(25).map(|t| t.action).collect();
        let mut out = vec![0.0; 25];
        model.predict_batch_into(&observations, &actions, &mut out);
        for i in 0..25 {
            assert_eq!(
                out[i],
                model.predict_next_temperature(&observations[i], actions[i]),
                "observation {i}"
            );
        }
    }

    #[test]
    fn predict_rows_with_empty_batch_is_noop() {
        let data = synthetic_dataset(100);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        let mut scratch = DynamicsScratch::new();
        model.predict_rows_with(&[], &mut scratch, &mut []);
    }

    #[test]
    #[should_panic(expected = "output buffer width")]
    fn predict_rows_with_rejects_short_output() {
        let data = synthetic_dataset(100);
        let model = DynamicsModel::train(&data, &quick_config()).unwrap();
        let mut scratch = DynamicsScratch::new();
        let rows = vec![0.0; 2 * DYNAMICS_INPUT_DIM];
        let mut out = [0.0; 1];
        model.predict_rows_with(&rows, &mut scratch, &mut out);
    }
}
