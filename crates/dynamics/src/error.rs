//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for dynamics-model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DynamicsError {
    /// The dataset had too few transitions for the requested operation.
    NotEnoughData {
        /// Transitions available.
        got: usize,
        /// Transitions required.
        needed: usize,
    },
    /// An ensemble was requested with zero members.
    EmptyEnsemble,
    /// A train/validation split fraction was outside `(0, 1)`.
    BadSplit {
        /// The rejected fraction.
        fraction: f64,
    },
    /// An underlying neural-network error.
    Nn(hvac_nn::NnError),
    /// An underlying environment error (during data collection).
    Env(hvac_env::EnvError),
    /// An underlying statistics error.
    Stats(hvac_stats::StatsError),
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::NotEnoughData { got, needed } => {
                write!(f, "not enough transitions: have {got}, need {needed}")
            }
            DynamicsError::EmptyEnsemble => write!(f, "ensemble must have at least one member"),
            DynamicsError::BadSplit { fraction } => {
                write!(f, "train fraction {fraction} must be in (0, 1)")
            }
            DynamicsError::Nn(e) => write!(f, "network error: {e}"),
            DynamicsError::Env(e) => write!(f, "environment error: {e}"),
            DynamicsError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for DynamicsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DynamicsError::Nn(e) => Some(e),
            DynamicsError::Env(e) => Some(e),
            DynamicsError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hvac_nn::NnError> for DynamicsError {
    fn from(e: hvac_nn::NnError) -> Self {
        DynamicsError::Nn(e)
    }
}

impl From<hvac_env::EnvError> for DynamicsError {
    fn from(e: hvac_env::EnvError) -> Self {
        DynamicsError::Env(e)
    }
}

impl From<hvac_stats::StatsError> for DynamicsError {
    fn from(e: hvac_stats::StatsError) -> Self {
        DynamicsError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            DynamicsError::NotEnoughData { got: 1, needed: 10 },
            DynamicsError::EmptyEnsemble,
            DynamicsError::BadSplit { fraction: 1.5 },
            DynamicsError::Nn(hvac_nn::NnError::ZeroWidth),
            DynamicsError::Env(hvac_env::EnvError::TraceExhausted { step: 2 }),
            DynamicsError::Stats(hvac_stats::StatsError::EmptyInput),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e = DynamicsError::Nn(hvac_nn::NnError::ZeroWidth);
        assert!(e.source().is_some());
        assert!(DynamicsError::EmptyEnsemble.source().is_none());
    }
}
