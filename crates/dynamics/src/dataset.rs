//! Transition datasets.

use crate::error::DynamicsError;
use hvac_env::{
    EnvConfig, HvacEnv, Observation, Policy, SetpointAction, Transition, POLICY_INPUT_DIM,
};
use hvac_stats::{seeded_rng, split_seed};
use rand::seq::SliceRandom;
use rand::Rng;

/// Width of a dynamics-model input row: the 6-dimensional policy input
/// (state + disturbances) plus the 2-dimensional action.
pub const DYNAMICS_INPUT_DIM: usize = POLICY_INPUT_DIM + 2;

/// A collection of `(s, d, a, s')` transitions — the paper's historical
/// dataset `T` (Section 3.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransitionDataset {
    transitions: Vec<Transition>,
}

impl TransitionDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing list of transitions.
    pub fn from_transitions(transitions: Vec<Transition>) -> Self {
        Self { transitions }
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Adds one transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Iterates over the transitions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transition> {
        self.transitions.iter()
    }

    /// The transitions as a slice.
    pub fn as_slice(&self) -> &[Transition] {
        &self.transitions
    }

    /// Flattens one transition into a dynamics input row
    /// `[s, d…, a_heat, a_cool]`.
    pub fn input_row(t: &Transition) -> [f64; DYNAMICS_INPUT_DIM] {
        let obs = t.observation.to_vector();
        let (h, c) = t.action.as_f64_pair();
        [obs[0], obs[1], obs[2], obs[3], obs[4], obs[5], obs[6], h, c]
    }

    /// Builds the `(inputs, targets)` matrices for regression.
    pub fn to_matrices(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let inputs = self
            .transitions
            .iter()
            .map(|t| Self::input_row(t).to_vec())
            .collect();
        let targets = self
            .transitions
            .iter()
            .map(|t| vec![t.next_zone_temperature])
            .collect();
        (inputs, targets)
    }

    /// The policy-input matrix (state + disturbances only), used by the
    /// extraction stage's importance sampling (Eq. 5).
    pub fn policy_inputs(&self) -> Vec<[f64; POLICY_INPUT_DIM]> {
        self.transitions
            .iter()
            .map(|t| t.observation.to_vector())
            .collect()
    }

    /// Splits into `(train, validation)` with a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicsError::BadSplit`] for a fraction outside
    /// `(0, 1)` and [`DynamicsError::NotEnoughData`] when either side
    /// would be empty.
    pub fn split(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> Result<(TransitionDataset, TransitionDataset), DynamicsError> {
        if !(train_fraction > 0.0 && train_fraction < 1.0) {
            return Err(DynamicsError::BadSplit {
                fraction: train_fraction,
            });
        }
        let n = self.transitions.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        if n_train == 0 || n_train == n {
            return Err(DynamicsError::NotEnoughData { got: n, needed: 2 });
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut seeded_rng(seed));
        let take = |idx: &[usize]| {
            TransitionDataset::from_transitions(idx.iter().map(|&i| self.transitions[i]).collect())
        };
        Ok((take(&order[..n_train]), take(&order[n_train..])))
    }

    /// A bootstrap resample of the same size (for ensemble training).
    pub fn bootstrap(&self, seed: u64) -> TransitionDataset {
        let n = self.transitions.len();
        let mut rng = seeded_rng(seed);
        let transitions = (0..n)
            .map(|_| self.transitions[rng.gen_range(0..n)])
            .collect();
        TransitionDataset::from_transitions(transitions)
    }
}

impl Extend<Transition> for TransitionDataset {
    fn extend<T: IntoIterator<Item = Transition>>(&mut self, iter: T) {
        self.transitions.extend(iter);
    }
}

impl FromIterator<Transition> for TransitionDataset {
    fn from_iter<T: IntoIterator<Item = Transition>>(iter: T) -> Self {
        Self {
            transitions: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TransitionDataset {
    type Item = &'a Transition;
    type IntoIter = std::slice::Iter<'a, Transition>;

    fn into_iter(self) -> Self::IntoIter {
        self.transitions.iter()
    }
}

/// The data-collection behavior policy: the building's existing
/// (rule-based-with-exploration) controller. Real BMS logs contain the
/// setpoint variety introduced by operators and schedules; we emulate
/// that with an ε-greedy perturbation around a sensible schedule so the
/// dynamics model sees diverse actions.
struct CollectionPolicy {
    rng: rand::rngs::StdRng,
    epsilon: f64,
}

impl Policy for CollectionPolicy {
    fn decide(&mut self, obs: &Observation) -> SetpointAction {
        if self.rng.gen::<f64>() < self.epsilon {
            // Uniform random legal action: maximizes coverage of T.
            let h = self.rng.gen_range(15..=23);
            let c = self.rng.gen_range(21..=30);
            SetpointAction::new(h, c).expect("sampled in range")
        } else if obs.is_occupied() {
            SetpointAction::from_clamped(20.0, 23.5)
        } else {
            SetpointAction::off()
        }
    }

    fn name(&self) -> &str {
        "collection"
    }
}

/// Runs the collection policy in the configured environment for
/// `episodes` episodes and returns the pooled historical dataset.
///
/// Each episode gets a decorrelated weather seed derived from `seed`, so
/// the dataset spans multiple weather realizations — like a BMS log
/// spanning multiple Januaries.
///
/// # Errors
///
/// Propagates environment construction/step errors.
pub fn collect_historical_dataset(
    config: &EnvConfig,
    episodes: usize,
    seed: u64,
) -> Result<TransitionDataset, DynamicsError> {
    let mut dataset = TransitionDataset::new();
    for ep in 0..episodes {
        let ep_seed = split_seed(seed, ep as u64);
        let env_config = config.clone().with_seed(ep_seed);
        let mut env = HvacEnv::new(env_config)?;
        let mut policy = CollectionPolicy {
            rng: seeded_rng(split_seed(seed, 1000 + ep as u64)),
            epsilon: 0.35,
        };
        let mut obs = env.reset();
        loop {
            let action = policy.decide(&obs);
            let out = env.step(action)?;
            dataset.push(Transition {
                observation: obs,
                action,
                next_zone_temperature: out.observation.zone_temperature,
            });
            obs = out.observation;
            if out.done {
                break;
            }
        }
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::Disturbances;

    fn toy_transition(s: f64, a: (i32, i32), s_next: f64) -> Transition {
        Transition {
            observation: Observation::new(s, Disturbances::default()),
            action: SetpointAction::new(a.0, a.1).unwrap(),
            next_zone_temperature: s_next,
        }
    }

    fn toy_dataset(n: usize) -> TransitionDataset {
        (0..n)
            .map(|i| toy_transition(20.0 + i as f64 * 0.1, (18, 26), 20.1 + i as f64 * 0.1))
            .collect()
    }

    #[test]
    fn input_row_layout() {
        let t = toy_transition(21.0, (19, 27), 21.5);
        let row = TransitionDataset::input_row(&t);
        assert_eq!(row[0], 21.0);
        assert_eq!(row[7], 19.0);
        assert_eq!(row[8], 27.0);
        assert_eq!(row.len(), DYNAMICS_INPUT_DIM);
    }

    #[test]
    fn matrices_shapes() {
        let d = toy_dataset(5);
        let (x, y) = d.to_matrices();
        assert_eq!(x.len(), 5);
        assert_eq!(x[0].len(), DYNAMICS_INPUT_DIM);
        assert_eq!(y.len(), 5);
        assert_eq!(y[0].len(), 1);
    }

    #[test]
    fn split_partitions() {
        let d = toy_dataset(10);
        let (train, val) = d.split(0.7, 1).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(val.len(), 3);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = toy_dataset(10);
        assert!(d.split(0.0, 1).is_err());
        assert!(d.split(1.0, 1).is_err());
        assert!(d.split(1.5, 1).is_err());
    }

    #[test]
    fn split_rejects_tiny_dataset() {
        let d = toy_dataset(1);
        assert!(d.split(0.5, 1).is_err());
    }

    #[test]
    fn split_is_seeded() {
        let d = toy_dataset(20);
        let (a1, _) = d.split(0.5, 7).unwrap();
        let (a2, _) = d.split(0.5, 7).unwrap();
        let (b, _) = d.split(0.5, 8).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn bootstrap_preserves_size() {
        let d = toy_dataset(12);
        let b = d.bootstrap(3);
        assert_eq!(b.len(), 12);
        // With 12 samples a bootstrap is near-certainly different.
        assert_ne!(b, d);
    }

    #[test]
    fn collects_from_environment() {
        let config = EnvConfig::pittsburgh().with_episode_steps(48);
        let d = collect_historical_dataset(&config, 2, 0).unwrap();
        assert_eq!(d.len(), 96);
        // Next-state of step k should equal state of step k+1 within an
        // episode (consistency of the recording).
        let ts = d.as_slice();
        let contiguous = (0..47)
            .filter(|&k| {
                (ts[k].next_zone_temperature - ts[k + 1].observation.zone_temperature).abs() < 1e-12
            })
            .count();
        assert_eq!(contiguous, 47);
    }

    #[test]
    fn collection_covers_action_space() {
        let config = EnvConfig::pittsburgh().with_episode_steps(96 * 3);
        let d = collect_historical_dataset(&config, 1, 42).unwrap();
        let distinct: std::collections::HashSet<_> = d.iter().map(|t| t.action).collect();
        assert!(
            distinct.len() > 20,
            "exploration too weak: {} distinct actions",
            distinct.len()
        );
    }

    #[test]
    fn policy_inputs_width() {
        let d = toy_dataset(3);
        let p = d.policy_inputs();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].len(), POLICY_INPUT_DIM);
    }
}
