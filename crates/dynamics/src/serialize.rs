//! Compact text serialization of trained dynamics models.
//!
//! Extends the MLP format of [`hvac_nn::serialize`] with the two
//! normalizers and the recorded training/validation RMSE, so a model
//! trained offline can be shipped to the extraction/verification stages
//! (or an edge device) as a single text artifact:
//!
//! ```text
//! dynmodel v1
//! input_means <…9 floats…>
//! input_stds <…>
//! target_means <…1 float…>
//! target_stds <…>
//! train_rmse 0.21
//! val_rmse 0.28
//! mlp v1
//! …
//! ```

use crate::dataset::TransitionDataset;
use crate::error::DynamicsError;
use crate::model::DynamicsModel;
use crate::normalize::Normalizer;
use hvac_env::{Observation, SetpointAction, Transition, POLICY_INPUT_DIM};
use hvac_nn::Mlp;

const FORMAT_HEADER: &str = "dynmodel v1";
const DATASET_HEADER: &str = "transitions v1";

fn bad() -> DynamicsError {
    DynamicsError::NotEnoughData { got: 0, needed: 1 }
}

fn write_floats(out: &mut String, prefix: &str, values: &[f64]) {
    out.push_str(prefix);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{v:?}"));
    }
    out.push('\n');
}

fn parse_floats(line: Option<&str>, prefix: &str) -> Result<Vec<f64>, DynamicsError> {
    let line = line.ok_or_else(bad)?;
    let rest = line.strip_prefix(prefix).ok_or_else(bad)?;
    rest.split_whitespace()
        .map(|t| t.parse::<f64>().map_err(|_| bad()))
        .collect()
}

fn parse_scalar(line: Option<&str>, prefix: &str) -> Result<f64, DynamicsError> {
    let values = parse_floats(line, prefix)?;
    if values.len() != 1 {
        return Err(bad());
    }
    Ok(values[0])
}

impl DynamicsModel {
    /// Serializes the model (network + normalizers + recorded RMSEs).
    ///
    /// # Example
    ///
    /// ```no_run
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let model: hvac_dynamics::DynamicsModel = unimplemented!();
    /// let text = model.to_compact_string();
    /// std::fs::write("dynamics_model.txt", &text)?;
    /// let restored = hvac_dynamics::DynamicsModel::from_compact_string(&text)?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        write_floats(&mut out, "input_means", self.input_normalizer().means());
        write_floats(&mut out, "input_stds", self.input_normalizer().stds());
        write_floats(&mut out, "target_means", self.target_normalizer().means());
        write_floats(&mut out, "target_stds", self.target_normalizer().stds());
        write_floats(&mut out, "train_rmse", &[self.train_rmse()]);
        write_floats(&mut out, "val_rmse", &[self.validation_rmse()]);
        out.push_str(&self.mlp().to_compact_string());
        out
    }

    /// Parses a model from the compact text format.
    ///
    /// # Errors
    ///
    /// Returns a [`DynamicsError`] for malformed headers/statistics and
    /// propagates network-parsing failures.
    pub fn from_compact_string(text: &str) -> Result<Self, DynamicsError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(FORMAT_HEADER) {
            return Err(bad());
        }
        let input_means = parse_floats(lines.next(), "input_means")?;
        let input_stds = parse_floats(lines.next(), "input_stds")?;
        let target_means = parse_floats(lines.next(), "target_means")?;
        let target_stds = parse_floats(lines.next(), "target_stds")?;
        let train_rmse = parse_scalar(lines.next(), "train_rmse")?;
        let val_rmse = parse_scalar(lines.next(), "val_rmse")?;

        let input_normalizer = Normalizer::from_parts(input_means, input_stds)?;
        let target_normalizer = Normalizer::from_parts(target_means, target_stds)?;

        let mlp_text: String = lines.collect::<Vec<_>>().join("\n");
        let mlp = Mlp::from_compact_string(&mlp_text)?;
        if mlp.in_dim() != input_normalizer.dims() || mlp.out_dim() != target_normalizer.dims() {
            return Err(bad());
        }
        DynamicsModel::from_parts(
            mlp,
            input_normalizer,
            target_normalizer,
            train_rmse,
            val_rmse,
        )
    }
}

impl TransitionDataset {
    /// Serializes the historical dataset, one transition per line:
    /// the 7 observation features, the two integer setpoints, and the
    /// recorded next zone temperature. Floats are written with `{:?}`
    /// so parsing them back is bitwise-exact.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(DATASET_HEADER);
        out.push('\n');
        out.push_str(&format!("n {}\n", self.len()));
        for t in self.iter() {
            out.push('t');
            for v in t.observation.to_vector() {
                out.push(' ');
                out.push_str(&format!("{v:?}"));
            }
            out.push_str(&format!(
                " {} {} {:?}\n",
                t.action.heating(),
                t.action.cooling(),
                t.next_zone_temperature
            ));
        }
        out
    }

    /// Parses a dataset from the compact text format.
    ///
    /// # Errors
    ///
    /// Returns a [`DynamicsError`] on a bad header, a transition count
    /// that does not match the body, or any malformed row (including
    /// out-of-range setpoints).
    pub fn from_compact_string(text: &str) -> Result<Self, DynamicsError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(DATASET_HEADER) {
            return Err(bad());
        }
        let n = lines
            .next()
            .and_then(|l| l.strip_prefix("n "))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(bad)?;
        let mut transitions = Vec::with_capacity(n);
        for line in lines {
            let rest = line.strip_prefix("t ").ok_or_else(bad)?;
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != POLICY_INPUT_DIM + 3 {
                return Err(bad());
            }
            let mut obs = [0.0; POLICY_INPUT_DIM];
            for (slot, tok) in obs.iter_mut().zip(&tokens[..POLICY_INPUT_DIM]) {
                *slot = tok.parse::<f64>().map_err(|_| bad())?;
            }
            let heating = tokens[POLICY_INPUT_DIM].parse::<i32>().map_err(|_| bad())?;
            let cooling = tokens[POLICY_INPUT_DIM + 1]
                .parse::<i32>()
                .map_err(|_| bad())?;
            let next = tokens[POLICY_INPUT_DIM + 2]
                .parse::<f64>()
                .map_err(|_| bad())?;
            transitions.push(Transition {
                observation: Observation::from_vector(&obs),
                action: SetpointAction::new(heating, cooling).map_err(|_| bad())?,
                next_zone_temperature: next,
            });
        }
        if transitions.len() != n {
            return Err(bad());
        }
        Ok(TransitionDataset::from_transitions(transitions))
    }
}

#[cfg(test)]
mod tests {
    use crate::dataset::TransitionDataset;
    use crate::model::{DynamicsModel, ModelConfig};
    use hvac_env::{Disturbances, Observation, SetpointAction, Transition};
    use hvac_nn::TrainConfig;

    fn trained() -> DynamicsModel {
        let data: TransitionDataset = (0..60)
            .map(|i| {
                let s = 17.0 + (i % 8) as f64;
                let h = 15 + (i % 9);
                Transition {
                    observation: Observation::new(s, Disturbances::default()),
                    action: SetpointAction::new(h, 25).unwrap(),
                    next_zone_temperature: 0.9 * s + 0.1 * f64::from(h),
                }
            })
            .collect();
        DynamicsModel::train(
            &data,
            &ModelConfig {
                hidden: vec![16],
                train: TrainConfig {
                    epochs: 30,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions_bitwise() {
        let model = trained();
        let restored = DynamicsModel::from_compact_string(&model.to_compact_string()).unwrap();
        for i in 0..20 {
            let obs = Observation::new(16.0 + i as f64 * 0.5, Disturbances::default());
            let a = SetpointAction::new(15 + (i % 9), 25).unwrap();
            assert_eq!(
                model.predict_next_temperature(&obs, a),
                restored.predict_next_temperature(&obs, a)
            );
        }
    }

    #[test]
    fn roundtrip_preserves_rmse_records() {
        let model = trained();
        let restored = DynamicsModel::from_compact_string(&model.to_compact_string()).unwrap();
        assert_eq!(model.train_rmse(), restored.train_rmse());
        assert_eq!(model.validation_rmse(), restored.validation_rmse());
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "dynmodel v9\n",
            "dynmodel v1\ninput_means 1 2\n",
            "dynmodel v1\ninput_means 1\ninput_stds 1\ntarget_means 0\ntarget_stds 1\ntrain_rmse 0.1\nval_rmse 0.1\nnot an mlp",
        ] {
            assert!(
                DynamicsModel::from_compact_string(text).is_err(),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn dataset_roundtrip_is_bitwise_exact() {
        let config = hvac_env::EnvConfig::pittsburgh().with_episode_steps(24);
        let data = crate::dataset::collect_historical_dataset(&config, 2, 5).unwrap();
        let restored = TransitionDataset::from_compact_string(&data.to_compact_string()).unwrap();
        assert_eq!(data, restored);
    }

    #[test]
    fn dataset_roundtrip_empty() {
        let empty = TransitionDataset::new();
        let restored = TransitionDataset::from_compact_string(&empty.to_compact_string()).unwrap();
        assert_eq!(empty, restored);
    }

    #[test]
    fn dataset_rejects_garbage() {
        for text in [
            "",
            "transitions v9\nn 0\n",
            "transitions v1\nn 2\nt 1 2 3 4 5 6 7 18 26 20.5\n", // count mismatch
            "transitions v1\nn 1\nt 1 2 3 4 5 6 7 18 26\n",      // short row
            "transitions v1\nn 1\nt 1 2 3 4 5 6 7 99 26 20.5\n", // illegal setpoint
            "transitions v1\nn 1\nx 1 2 3 4 5 6 7 18 26 20.5\n", // bad prefix
        ] {
            assert!(
                TransitionDataset::from_compact_string(text).is_err(),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn rejects_dimension_mismatch_between_mlp_and_normalizer() {
        let model = trained();
        let text = model.to_compact_string();
        // Truncate the input normalizer to 2 dims: the embedded MLP
        // still expects 9 inputs.
        let patched: String = text
            .lines()
            .map(|l| {
                if l.starts_with("input_means") {
                    "input_means 0.0 0.0".to_string()
                } else if l.starts_with("input_stds") {
                    "input_stds 1.0 1.0".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(DynamicsModel::from_compact_string(&patched).is_err());
    }
}
