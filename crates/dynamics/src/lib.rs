//! Learned thermal dynamics models.
//!
//! The MBRL stack of the paper (Section 2.1) learns a regression model
//! `f̂ : (s_t, d_t, a_t) → s_{t+1}` from a historical dataset
//! `T = {(s, d, a, s')}` collected from the building management system,
//! then plans through it with a stochastic optimizer. This crate
//! provides:
//!
//! * [`TransitionDataset`] — collection, storage, and matrix conversion
//!   of transitions (including the "collect historical data by running
//!   the default controller" workflow the paper inherits from its MBRL
//!   baselines),
//! * [`Normalizer`] — per-feature standardization (fit on training
//!   data, applied at prediction time),
//! * [`DynamicsModel`] — the paper's MLP (150 epochs, Adam, lr `1e-3`,
//!   weight decay `1e-5`, MSE), and
//! * [`DynamicsEnsemble`] — an ensemble with epistemic-uncertainty
//!   estimates (disagreement), the ingredient CLUE adds on top.
//!
//! # Example
//!
//! ```no_run
//! use hvac_dynamics::{collect_historical_dataset, DynamicsModel, ModelConfig};
//! use hvac_env::EnvConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = collect_historical_dataset(
//!     &EnvConfig::pittsburgh().with_episode_steps(96 * 7),
//!     3, // episodes
//!     0, // seed
//! )?;
//! let model = DynamicsModel::train(&dataset, &ModelConfig::default())?;
//! println!("validation RMSE: {:.3} °C", model.validation_rmse());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod ensemble;
pub mod error;
pub mod model;
pub mod normalize;
pub mod serialize;

pub use dataset::{collect_historical_dataset, TransitionDataset, DYNAMICS_INPUT_DIM};
pub use ensemble::{DynamicsEnsemble, EnsembleConfig};
pub use error::DynamicsError;
pub use model::{DynamicsModel, DynamicsScratch, ModelConfig};
pub use normalize::Normalizer;
