//! Round-trip equivalence: random `Tree` → compile → `CompiledTree`.
//!
//! Property sweep over randomly grown trees — depths 1–16, duplicate
//! thresholds on purpose (a small threshold pool), single-leaf
//! degenerate trees — each serialized through the `dtree v1` text
//! format, compiled (with the quantized kernel), and proven equivalent
//! by the box-grid + ulp-adjacent + hostile-probe sweep. A random-probe
//! cross-check runs on top of the proof, so a prover bug and a kernel
//! bug would have to agree to slip through.

use hvac_dtree::{prove_equivalence, CompileOptions, CompiledTree, DecisionTree, TreeError};
use proptest::prelude::*;

/// Deterministic splitmix64 — the test's only entropy source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Small pool so random trees reuse thresholds across nodes — the
/// duplicate-threshold case the ±1 ulp probes must disambiguate.
const THRESHOLD_POOL: [f64; 6] = [-3.5, -0.25, 0.0, 0.5, 1.0, 21.75];

enum Spec {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        class: usize,
    },
}

/// Grows a random arena (children after parents, root at 0) and renders
/// it in the `dtree v1` text format.
fn random_tree_text(seed: u64, max_depth: usize, n_features: usize, n_classes: usize) -> String {
    fn grow(
        rng: &mut Rng,
        arena: &mut Vec<Spec>,
        depth: usize,
        n_features: usize,
        n_classes: usize,
    ) -> usize {
        let id = arena.len();
        // Bias toward splitting while depth remains, but allow early
        // leaves so shapes vary; depth 0 forces a leaf.
        if depth == 0 || rng.below(5) == 0 {
            arena.push(Spec::Leaf {
                class: rng.below(n_classes as u64) as usize,
            });
            return id;
        }
        arena.push(Spec::Leaf { class: 0 }); // placeholder
        let feature = rng.below(n_features as u64) as usize;
        let threshold = THRESHOLD_POOL[rng.below(THRESHOLD_POOL.len() as u64) as usize];
        let left = grow(rng, arena, depth - 1, n_features, n_classes);
        let right = grow(rng, arena, depth - 1, n_features, n_classes);
        arena[id] = Spec::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    let mut rng = Rng(seed);
    let mut arena = Vec::new();
    grow(&mut rng, &mut arena, max_depth, n_features, n_classes);
    let mut text = format!(
        "dtree v1\nfeatures {n_features}\nclasses {n_classes}\nnodes {}\n",
        arena.len()
    );
    for spec in &arena {
        match spec {
            Spec::Split {
                feature,
                threshold,
                left,
                right,
            } => text.push_str(&format!("S {feature} {threshold:?} {left} {right}\n")),
            Spec::Leaf { class } => text.push_str(&format!("L {class} 1\n")),
        }
    }
    text
}

fn random_input(rng: &mut Rng, dims: usize) -> Vec<f64> {
    (0..dims)
        .map(|_| match rng.below(12) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => THRESHOLD_POOL[rng.below(THRESHOLD_POOL.len() as u64) as usize],
            _ => (rng.next() % 2001) as f64 / 100.0 - 10.0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_trees_compile_equivalent(
        seed in 0u64..1_000_000,
        depth in 1usize..=16,
        dims in 1usize..=4,
    ) {
        // Depth 15–16 trees grown unbounded would explode; cap growth
        // by shrinking depth as dims grow (shape variety is the point,
        // not node count).
        let depth = depth.min(20 - 2 * dims);
        let text = random_tree_text(seed, depth, dims, 7);
        let tree = DecisionTree::from_compact_string(&text).expect("generated tree is valid");
        let options = CompileOptions { quantized: true };
        let compiled = CompiledTree::compile(&tree, options).expect("compiles");
        let proof = prove_equivalence(&tree, &compiled).expect("proof holds");
        prop_assert!(proof.probes > 0);
        prop_assert_eq!(proof.leaves, tree.leaf_count());

        // Independent random probing (hostile values included).
        let mut rng = Rng(seed ^ 0xdead_beef);
        for _ in 0..64 {
            let x = random_input(&mut rng, dims);
            let expected = tree.predict(&x).expect("reference predict");
            prop_assert_eq!(compiled.predict(&x).expect("compiled predict"), expected);
            prop_assert_eq!(
                compiled.predict_quantized(&x).expect("quantized predict"),
                expected
            );
        }

        // The serialized artifact round-trips to the same kernel.
        let artifact = compiled.to_compact_string();
        let restored = CompiledTree::from_compact_string(&artifact, options).expect("parses");
        prop_assert_eq!(&compiled, &restored);
        prove_equivalence(&tree, &restored).expect("restored kernel proof holds");
    }
}

#[test]
fn single_leaf_degenerate_tree_is_equivalent() {
    let text = "dtree v1\nfeatures 3\nclasses 9\nnodes 1\nL 4 1\n";
    let tree = DecisionTree::from_compact_string(text).unwrap();
    let compiled = CompiledTree::compile(&tree, CompileOptions { quantized: true }).unwrap();
    let proof = prove_equivalence(&tree, &compiled).unwrap();
    assert_eq!(proof.leaves, 1);
    assert_eq!(compiled.predict(&[f64::NAN, 0.0, 1e300]).unwrap(), 4);
}

#[test]
fn tampered_threshold_fails_the_proof() {
    // Find a seed whose tree uses the pool's distinctive threshold, so
    // the textual tamper below is guaranteed to land on a split.
    let (tree, artifact) = (0u64..64)
        .find_map(|seed| {
            let text = random_tree_text(seed, 6, 2, 5);
            let tree = DecisionTree::from_compact_string(&text).ok()?;
            let compiled = CompiledTree::compile(&tree, CompileOptions::default()).ok()?;
            let artifact = compiled.to_compact_string();
            artifact.contains("21.75").then_some((tree, artifact))
        })
        .expect("some seed uses the pool threshold");
    // Nudge the first occurrence of that threshold in the artifact.
    let tampered_text = artifact.replacen("21.75", "21.5", 1);
    assert_ne!(tampered_text, artifact);
    let tampered =
        CompiledTree::from_compact_string(&tampered_text, CompileOptions::default()).unwrap();
    assert!(matches!(
        prove_equivalence(&tree, &tampered),
        Err(TreeError::KernelMismatch { .. })
    ));
}
