//! Proof of equivalence between a tree and its compiled kernel.
//!
//! "Prove, don't assume": the verification story of the paper rests on
//! Algorithm 1 checking the *deployed* artifact, so a compiled kernel is
//! only eligible to serve after an exhaustive probe sweep shows it
//! agrees with the reference enum walk everywhere that matters. Both
//! kernels are piecewise-constant over the same axis-aligned leaf boxes,
//! so agreement on a finite, carefully-chosen probe set — every leaf box
//! corner, threshold-adjacent points ±1 ulp on every split feature, and
//! hostile NaN/±∞ probes — transfers the verification certificate from
//! the tree to the compiled form.
//!
//! The probe families, per leaf box of the source tree:
//!
//! 1. **Corners** — the `2^d` combinations of per-dimension extremes
//!    (one ulp inside the open lower bound; exactly on the closed upper
//!    bound; large finite surrogates for unbounded sides), plus the
//!    box representative. These are exactly the grid points Algorithm
//!    1's box verification reasons about.
//! 2. **Threshold-adjacent** — for every distinct `(feature, t)` split
//!    in the tree, the leaf representative with that coordinate forced
//!    to `t`, `t + 1 ulp` and `t − 1 ulp`: the three points that pin
//!    down the `<=` boundary and its rounding behavior.
//! 3. **Hostile** — the representative with each coordinate replaced by
//!    NaN, `+∞` and `−∞` (the guard keeps these out in production, but
//!    the kernels must agree even on hostile inputs — NaN routes right
//!    at every split in both).
//!
//! A disagreement on any probe fails the proof with
//! [`TreeError::KernelMismatch`]; callers must then serve the enum walk.

use crate::compiled::CompiledTree;
use crate::error::TreeError;
use crate::tree::{DecisionTree, Node};

/// Finite surrogate for an unbounded box side (beyond every physical
/// HVAC quantity, still well inside f64 range so ulp steps behave).
const UNBOUNDED_SURROGATE: f64 = 1e9;

/// Corner probes are the full `2^d` product up to this many dimensions;
/// beyond it the sweep degrades to per-dimension flips of the two
/// extreme corners (still covering every face, no longer every vertex).
const FULL_CORNER_DIMS: usize = 12;

/// Evidence that the sweep ran and what it covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalenceProof {
    /// Total probe vectors evaluated on every kernel.
    pub probes: usize,
    /// Leaf boxes swept.
    pub leaves: usize,
    /// Distinct split thresholds probed ±1 ulp.
    pub thresholds: usize,
    /// Whether the fixed-point kernel was also checked.
    pub quantized: bool,
}

/// The next representable f64 above `v`.
#[must_use]
fn ulp_up(v: f64) -> f64 {
    v.next_up()
}

/// The next representable f64 below `v`.
#[must_use]
fn ulp_down(v: f64) -> f64 {
    v.next_down()
}

/// Checks one probe on every kernel; returns the typed mismatch if any
/// kernel disagrees with the reference walk.
fn check_probe(tree: &DecisionTree, compiled: &CompiledTree, x: &[f64]) -> Result<(), TreeError> {
    let expected_leaf = tree.apply(x)?;
    let expected = tree.leaf_class(expected_leaf)?;
    let got = compiled.predict(x)?;
    if got != expected || compiled.apply(x)? != expected_leaf {
        return Err(TreeError::KernelMismatch {
            kernel: "compiled",
            expected,
            got,
        });
    }
    if compiled.is_quantized() {
        let got = compiled.predict_quantized(x)?;
        if got != expected {
            return Err(TreeError::KernelMismatch {
                kernel: "quantized",
                expected,
                got,
            });
        }
    }
    Ok(())
}

/// Sweeps the verification box grid, proving `compiled` ≡ `tree`.
///
/// See the module docs for the probe families. Cost is roughly
/// `leaves × (2^min(d, 12) + 3·thresholds + 3·d)` probes — well under a
/// millisecond for policy-scale trees — so callers run it at every
/// compile, not just in tests.
///
/// # Errors
///
/// [`TreeError::KernelMismatch`] on the first disagreeing probe;
/// [`TreeError::BadInputWidth`] if `compiled` was built for a different
/// feature count.
pub fn prove_equivalence(
    tree: &DecisionTree,
    compiled: &CompiledTree,
) -> Result<EquivalenceProof, TreeError> {
    if compiled.n_features() != tree.n_features() {
        return Err(TreeError::BadInputWidth {
            expected: tree.n_features(),
            got: compiled.n_features(),
        });
    }
    let dims = tree.n_features();
    // Distinct (feature, threshold) pairs across the whole tree.
    let mut thresholds: Vec<(usize, f64)> = tree
        .nodes
        .iter()
        .filter_map(|node| match node {
            Node::Split {
                feature, threshold, ..
            } => Some((*feature, *threshold)),
            Node::Leaf { .. } => None,
        })
        .collect();
    thresholds.sort_by_key(|t| (t.0, t.1.to_bits()));
    thresholds.dedup_by(|a, b| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());

    let boxes = tree.leaf_boxes();
    let leaves = boxes.len();
    let mut probes = 0usize;
    let mut probe = |tree: &DecisionTree, x: &[f64]| -> Result<(), TreeError> {
        probes += 1;
        check_probe(tree, compiled, x)
    };

    for (_leaf, input_box) in &boxes {
        let representative = input_box.representative(-UNBOUNDED_SURROGATE, UNBOUNDED_SURROGATE);

        // Family 1: corners. Each side (lo, hi] contributes the point
        // one ulp inside the open lower bound and the closed upper
        // bound itself (finite surrogates for unbounded sides).
        let corner_lo: Vec<f64> = (0..dims)
            .map(|f| {
                let lo = input_box.side(f).lo;
                if lo.is_finite() {
                    ulp_up(lo)
                } else {
                    -UNBOUNDED_SURROGATE
                }
            })
            .collect();
        let corner_hi: Vec<f64> = (0..dims)
            .map(|f| {
                let hi = input_box.side(f).hi;
                if hi.is_finite() {
                    hi
                } else {
                    UNBOUNDED_SURROGATE
                }
            })
            .collect();
        if dims <= FULL_CORNER_DIMS {
            let mut corner = vec![0.0; dims];
            for mask in 0u64..(1u64 << dims) {
                for f in 0..dims {
                    corner[f] = if mask >> f & 1 == 1 {
                        corner_hi[f]
                    } else {
                        corner_lo[f]
                    };
                }
                probe(tree, &corner)?;
            }
        } else {
            probe(tree, &corner_lo)?;
            probe(tree, &corner_hi)?;
            for f in 0..dims {
                let mut flipped = corner_lo.clone();
                flipped[f] = corner_hi[f];
                probe(tree, &flipped)?;
                let mut flipped = corner_hi.clone();
                flipped[f] = corner_lo[f];
                probe(tree, &flipped)?;
            }
        }
        probe(tree, &representative)?;

        // Family 2: threshold-adjacent ±1 ulp on every split feature.
        for &(feature, threshold) in &thresholds {
            let mut x = representative.clone();
            for value in [threshold, ulp_up(threshold), ulp_down(threshold)] {
                x[feature] = value;
                probe(tree, &x)?;
            }
        }

        // Family 3: hostile NaN/±∞ probes per feature.
        for f in 0..dims {
            let mut x = representative.clone();
            for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                x[f] = value;
                probe(tree, &x)?;
            }
        }
    }
    // All-hostile vectors (every coordinate at once).
    for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let x = vec![value; dims];
        probes += 1;
        check_probe(tree, compiled, &x)?;
    }

    Ok(EquivalenceProof {
        probes,
        leaves,
        thresholds: thresholds.len(),
        quantized: compiled.is_quantized(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompileOptions;
    use crate::tree::TreeConfig;

    fn fitted(n: usize, features: usize, classes: usize, stride: usize) -> DecisionTree {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..features)
                    .map(|f| ((i * stride + f * 31) % 101) as f64 / 9.0 - 5.0)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 11) % classes).collect();
        DecisionTree::fit(&inputs, &labels, classes, &TreeConfig::default()).unwrap()
    }

    #[test]
    fn proof_passes_for_compiled_trees() {
        for stride in [7, 13, 17] {
            let tree = fitted(180, 3, 5, stride);
            let compiled =
                CompiledTree::compile(&tree, CompileOptions { quantized: true }).unwrap();
            let proof = prove_equivalence(&tree, &compiled).unwrap();
            assert!(proof.probes > 0);
            assert_eq!(proof.leaves, tree.leaf_count());
            assert!(proof.quantized);
        }
    }

    #[test]
    fn proof_passes_for_single_leaf_tree() {
        let tree = DecisionTree::fit(&[vec![1.0, 2.0]], &[0], 2, &TreeConfig::default()).unwrap();
        let compiled = CompiledTree::compile(&tree, CompileOptions::default()).unwrap();
        let proof = prove_equivalence(&tree, &compiled).unwrap();
        assert_eq!(proof.leaves, 1);
        assert!(!proof.quantized);
    }

    #[test]
    fn proof_fails_for_a_kernel_of_a_different_tree() {
        let tree_a = fitted(180, 2, 4, 7);
        let tree_b = fitted(180, 2, 4, 23);
        let compiled_b = CompiledTree::compile(&tree_b, CompileOptions::default()).unwrap();
        // Same shape-class of tree, different splits: some probe must
        // disagree (the trees classify the grid differently).
        let result = prove_equivalence(&tree_a, &compiled_b);
        assert!(
            matches!(result, Err(TreeError::KernelMismatch { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn ulp_steps_are_exact_inverses() {
        for v in [-1e9, -1.5, -f64::MIN_POSITIVE, 0.0, 2.5, 1e9] {
            assert!(ulp_up(v) > v);
            assert!(ulp_down(v) < v);
            assert_eq!(ulp_down(ulp_up(v)), v);
        }
    }
}
