//! CART fitting (Gini impurity, axis-aligned splits).
//!
//! The algorithm is the classic one the paper cites (Loh, "Classification
//! and regression trees"): at each node, scan every feature's sorted
//! values, evaluate the Gini impurity decrease of every midpoint
//! threshold, and greedily take the best split. Ties break toward the
//! lower feature index and lower threshold so fitting is fully
//! deterministic — a property the reproduction relies on for bitwise
//! reproducibility of the extracted policy.

use crate::error::TreeError;
use crate::tree::{DecisionTree, Node, TreeConfig};
use std::cell::Cell;

struct FitContext<'a> {
    inputs: &'a [Vec<f64>],
    labels: &'a [usize],
    n_classes: usize,
    config: TreeConfig,
    // Candidate thresholds scored during this fit; accumulated in a
    // Cell and flushed to the global registry once at the end so the
    // inner scan stays free of atomic traffic.
    split_evals: Cell<u64>,
}

impl DecisionTree {
    /// Fits a classification tree on `(inputs, labels)`.
    ///
    /// `labels` must be in `0..n_classes`. The paper's configuration is
    /// [`TreeConfig::default`] (unbounded depth, scikit-learn default
    /// stopping).
    ///
    /// # Errors
    ///
    /// Returns dataset-shape errors ([`TreeError::EmptyDataset`],
    /// [`TreeError::LengthMismatch`], [`TreeError::RaggedInputs`],
    /// [`TreeError::NanFeature`], [`TreeError::LabelOutOfRange`],
    /// [`TreeError::NoClasses`]) and configuration errors
    /// ([`TreeError::BadConfig`]).
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_dtree::{DecisionTree, TreeConfig};
    ///
    /// # fn main() -> Result<(), hvac_dtree::TreeError> {
    /// let inputs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
    /// let labels = vec![0, 1, 1, 0]; // XOR — needs two levels of splits
    /// let tree = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default())?;
    /// for (x, &y) in inputs.iter().zip(&labels) {
    ///     assert_eq!(tree.predict(x)?, y);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(
        inputs: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        config: &TreeConfig,
    ) -> Result<Self, TreeError> {
        config.validate()?;
        if n_classes == 0 {
            return Err(TreeError::NoClasses);
        }
        if inputs.is_empty() {
            return Err(TreeError::EmptyDataset);
        }
        if inputs.len() != labels.len() {
            return Err(TreeError::LengthMismatch {
                inputs: inputs.len(),
                labels: labels.len(),
            });
        }
        let n_features = inputs[0].len();
        if n_features == 0 {
            return Err(TreeError::RaggedInputs {
                expected: 1,
                got: 0,
                row: 0,
            });
        }
        for (row, x) in inputs.iter().enumerate() {
            if x.len() != n_features {
                return Err(TreeError::RaggedInputs {
                    expected: n_features,
                    got: x.len(),
                    row,
                });
            }
            for (feature, v) in x.iter().enumerate() {
                if v.is_nan() {
                    return Err(TreeError::NanFeature { row, feature });
                }
            }
        }
        for &label in labels {
            if label >= n_classes {
                return Err(TreeError::LabelOutOfRange { label, n_classes });
            }
        }

        let ctx = FitContext {
            inputs,
            labels,
            n_classes,
            config: *config,
            split_evals: Cell::new(0),
        };
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features,
            n_classes,
        };
        let indices: Vec<usize> = (0..inputs.len()).collect();
        let span = hvac_telemetry::Span::enter("dtree.fit");
        build(&ctx, &mut tree, &indices, 0);
        drop(span);
        hvac_telemetry::counter("dtree.split_evaluations").add(ctx.split_evals.get());
        hvac_telemetry::counter("dtree.fit.nodes").add(tree.nodes.len() as u64);
        hvac_telemetry::counter("dtree.fit.count").incr();
        hvac_telemetry::gauge("dtree.fit.depth").record_max(tree.depth() as u64);
        Ok(tree)
    }
}

/// Gini impurity of a class-count vector with `total` samples.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Majority class, lowest-index tie-break.
fn majority(counts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

/// Finds the best Gini split of `indices`, or `None` if no valid split
/// exists (all features constant, or min_samples_leaf unachievable).
fn best_split(ctx: &FitContext<'_>, indices: &[usize]) -> Option<BestSplit> {
    let n = indices.len();
    let min_leaf = ctx.config.min_samples_leaf;
    let mut best: Option<BestSplit> = None;

    let mut sorted = indices.to_vec();
    for feature in 0..ctx.inputs[indices[0]].len() {
        sorted.sort_by(|&a, &b| {
            ctx.inputs[a][feature]
                .partial_cmp(&ctx.inputs[b][feature])
                .expect("NaNs rejected at fit entry")
        });

        let mut left_counts = vec![0usize; ctx.n_classes];
        let mut right_counts = vec![0usize; ctx.n_classes];
        for &i in &sorted {
            right_counts[ctx.labels[i]] += 1;
        }

        for k in 0..n - 1 {
            let i = sorted[k];
            left_counts[ctx.labels[i]] += 1;
            right_counts[ctx.labels[i]] -= 1;

            let v = ctx.inputs[i][feature];
            let v_next = ctx.inputs[sorted[k + 1]][feature];
            if v == v_next {
                continue; // cannot split between equal values
            }
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            ctx.split_evals.set(ctx.split_evals.get() + 1);
            let impurity = (n_left as f64 * gini(&left_counts, n_left)
                + n_right as f64 * gini(&right_counts, n_right))
                / n as f64;
            let threshold = 0.5 * (v + v_next);
            let better = match &best {
                None => true,
                Some(b) => {
                    impurity < b.impurity - 1e-15
                        || ((impurity - b.impurity).abs() <= 1e-15
                            && (feature, threshold) < (b.feature, b.threshold))
                }
            };
            if better {
                best = Some(BestSplit {
                    feature,
                    threshold,
                    impurity,
                });
            }
        }
    }
    best
}

/// Recursively grows the tree; returns the id of the created node.
fn build(ctx: &FitContext<'_>, tree: &mut DecisionTree, indices: &[usize], depth: usize) -> usize {
    let mut counts = vec![0usize; ctx.n_classes];
    for &i in indices.iter() {
        counts[ctx.labels[i]] += 1;
    }
    let node_impurity = gini(&counts, indices.len());

    let stop = node_impurity == 0.0
        || indices.len() < ctx.config.min_samples_split
        || ctx.config.max_depth.is_some_and(|d| depth >= d);

    if !stop {
        if let Some(split) = best_split(ctx, indices) {
            // Accept any valid split of an impure node — including
            // zero-gain splits, matching scikit-learn (XOR-like data
            // needs a zero-gain first split to become separable below).
            if split.impurity <= node_impurity + 1e-15 {
                let id = tree.nodes.len();
                tree.nodes.push(Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: 0,  // patched below
                    right: 0, // patched below
                });
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| ctx.inputs[i][split.feature] <= split.threshold);
                let left = build(ctx, tree, &left_idx, depth + 1);
                let right = build(ctx, tree, &right_idx, depth + 1);
                if let Node::Split {
                    left: l, right: r, ..
                } = &mut tree.nodes[id]
                {
                    *l = left;
                    *r = right;
                }
                return id;
            }
        }
    }

    let id = tree.nodes.len();
    tree.nodes.push(Node::Leaf {
        class: majority(&counts),
        samples: indices.len(),
    });
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use proptest::prelude::*;

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[4, 0], 4), 0.0);
        assert!((gini(&[2, 2], 4) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }

    #[test]
    fn majority_tie_breaks_low() {
        assert_eq!(majority(&[2, 2, 1]), 0);
        assert_eq!(majority(&[1, 3, 3]), 1);
    }

    #[test]
    fn fits_pure_dataset_to_single_leaf() {
        let inputs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let t = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[99.0]).unwrap(), 1);
    }

    #[test]
    fn fits_xor_perfectly() {
        let inputs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        let t = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default()).unwrap();
        for (x, &y) in inputs.iter().zip(&labels) {
            assert_eq!(t.predict(x).unwrap(), y);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_caps_growth() {
        let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| (i % 4) as usize).collect();
        let config = TreeConfig {
            max_depth: Some(2),
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&inputs, &labels, 4, &config).unwrap();
        assert!(t.depth() <= 2);
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let inputs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 9)).collect();
        let config = TreeConfig {
            min_samples_leaf: 3,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&inputs, &labels, 2, &config).unwrap();
        // Splitting off the single positive sample is forbidden.
        for leaf in t.leaves() {
            if let Node::Leaf { samples, .. } = t.node(leaf.node_id()).unwrap() {
                assert!(*samples >= 3);
            }
        }
    }

    #[test]
    fn duplicate_inputs_conflicting_labels_dont_loop() {
        let inputs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let labels = vec![0, 1, 0];
        let t = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[1.0]).unwrap(), 0); // majority
    }

    #[test]
    fn rejects_bad_datasets() {
        let config = TreeConfig::default();
        assert!(matches!(
            DecisionTree::fit(&[], &[], 2, &config),
            Err(TreeError::EmptyDataset)
        ));
        assert!(DecisionTree::fit(&[vec![1.0]], &[0, 1], 2, &config).is_err());
        assert!(DecisionTree::fit(&[vec![1.0], vec![1.0, 2.0]], &[0, 1], 2, &config).is_err());
        assert!(DecisionTree::fit(&[vec![f64::NAN]], &[0], 2, &config).is_err());
        assert!(DecisionTree::fit(&[vec![1.0]], &[5], 2, &config).is_err());
        assert!(DecisionTree::fit(&[vec![1.0]], &[0], 0, &config).is_err());
        assert!(DecisionTree::fit(&[Vec::new()], &[0], 1, &config).is_err());
    }

    #[test]
    fn fitting_is_deterministic() {
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i * 7 % 13) as f64, (i * 3 % 11) as f64])
            .collect();
        let labels: Vec<usize> = (0..50).map(|i| (i % 3) as usize).collect();
        let a = DecisionTree::fit(&inputs, &labels, 3, &TreeConfig::default()).unwrap();
        let b = DecisionTree::fit(&inputs, &labels, 3, &TreeConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn training_accuracy_is_perfect_on_separable_data() {
        // Distinct inputs ⇒ a fully grown CART must reach 100% training
        // accuracy.
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| (i % 5) as usize).collect();
        let t = DecisionTree::fit(&inputs, &labels, 5, &TreeConfig::default()).unwrap();
        for (x, &y) in inputs.iter().zip(&labels) {
            assert_eq!(t.predict(x).unwrap(), y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_training_accuracy_on_unique_inputs(
            values in proptest::collection::hash_set(0i32..1000, 2..60),
            seed in 0u64..1000,
        ) {
            let values: Vec<i32> = values.into_iter().collect();
            let inputs: Vec<Vec<f64>> = values.iter().map(|&v| vec![f64::from(v)]).collect();
            let labels: Vec<usize> = values
                .iter()
                .enumerate()
                .map(|(i, _)| ((i as u64 + seed) % 4) as usize)
                .collect();
            let t = DecisionTree::fit(&inputs, &labels, 4, &TreeConfig::default()).unwrap();
            for (x, &y) in inputs.iter().zip(&labels) {
                prop_assert_eq!(t.predict(x).unwrap(), y);
            }
        }

        #[test]
        fn prop_leaf_boxes_partition(
            xs in proptest::collection::vec(-10.0f64..10.0, 4..40),
            probe in proptest::collection::vec(-12.0f64..12.0, 10),
        ) {
            let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
            let labels: Vec<usize> = xs.iter().map(|&x| usize::from(x > 0.0)).collect();
            let t = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default()).unwrap();
            let boxes = t.leaf_boxes();
            for &p in &probe {
                let hits = boxes.iter().filter(|(_, b)| b.contains(&[p])).count();
                prop_assert_eq!(hits, 1, "point {} in {} boxes", p, hits);
            }
        }

        #[test]
        fn prop_simplify_preserves_predictions(
            xs in proptest::collection::vec(-10.0f64..10.0, 4..50),
            edits in proptest::collection::vec((0usize..20, 0usize..3), 0..8),
            probe in proptest::collection::vec(-12.0f64..12.0, 12),
        ) {
            let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
            let labels: Vec<usize> = xs.iter().map(|&x| (x.abs() as usize) % 3).collect();
            let mut t = DecisionTree::fit(&inputs, &labels, 3, &TreeConfig::default()).unwrap();
            // Random leaf edits create same-class siblings.
            for (which, class) in edits {
                let leaves = t.leaves();
                let leaf = leaves[which % leaves.len()];
                t.set_leaf_class(leaf, class).unwrap();
            }
            let reference = t.clone();
            t.simplify();
            for &p in &probe {
                prop_assert_eq!(
                    t.predict(&[p]).unwrap(),
                    reference.predict(&[p]).unwrap()
                );
            }
            // Boxes still partition after compaction.
            let boxes = t.leaf_boxes();
            for &p in &probe {
                let hits = boxes.iter().filter(|(_, b)| b.contains(&[p])).count();
                prop_assert_eq!(hits, 1);
            }
        }

        #[test]
        fn prop_prediction_agrees_with_box_membership(
            xs in proptest::collection::vec(-10.0f64..10.0, 4..40),
            probe in -12.0f64..12.0,
        ) {
            let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
            let labels: Vec<usize> = xs.iter().map(|&x| usize::from(x > 0.0)).collect();
            let t = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default()).unwrap();
            let leaf = t.apply(&[probe]).unwrap();
            let b = t.leaf_box(leaf).unwrap();
            prop_assert!(b.contains(&[probe]));
        }
    }
}
