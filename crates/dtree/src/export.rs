//! Human-readable tree export.
//!
//! Interpretability is half of the paper's pitch: "since each decision
//! node only compares with one element in the input vector, the tree is
//! fully interpretable and knowledgeable to human experts"
//! (Section 3.2.2). This module renders a fitted tree as indented text
//! (for terminals and docs) and as Graphviz DOT (for figures like the
//! paper's Fig. 2).

use crate::tree::{DecisionTree, Node, NodeId};

impl DecisionTree {
    /// Renders the tree as indented text.
    ///
    /// `feature_names` and `class_names` are optional; indices are used
    /// when a name is missing.
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_dtree::{DecisionTree, TreeConfig};
    ///
    /// # fn main() -> Result<(), hvac_dtree::TreeError> {
    /// let t = DecisionTree::fit(
    ///     &[vec![0.0], vec![1.0]],
    ///     &[0, 1],
    ///     2,
    ///     &TreeConfig::default(),
    /// )?;
    /// let text = t.to_text(&["temp"], &["low", "high"]);
    /// assert!(text.contains("temp"));
    /// assert!(text.contains("low"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_text(&self, feature_names: &[&str], class_names: &[&str]) -> String {
        let mut out = String::new();
        self.render_text(0, 0, feature_names, class_names, &mut out);
        out
    }

    fn render_text(
        &self,
        id: NodeId,
        indent: usize,
        feature_names: &[&str],
        class_names: &[&str],
        out: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        match &self.nodes[id] {
            Node::Leaf { class, samples } => {
                let name = class_names
                    .get(*class)
                    .map_or_else(|| format!("class {class}"), |s| (*s).to_string());
                out.push_str(&format!("{pad}→ {name} ({samples} samples)\n"));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = feature_names
                    .get(*feature)
                    .map_or_else(|| format!("x[{feature}]"), |s| (*s).to_string());
                out.push_str(&format!("{pad}if {name} <= {threshold:.4}:\n"));
                self.render_text(*left, indent + 1, feature_names, class_names, out);
                out.push_str(&format!("{pad}else:\n"));
                self.render_text(*right, indent + 1, feature_names, class_names, out);
            }
        }
    }

    /// Renders the tree in Graphviz DOT format.
    pub fn to_dot(&self, feature_names: &[&str], class_names: &[&str]) -> String {
        let mut out = String::from("digraph decision_tree {\n  node [shape=box];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Leaf { class, samples } => {
                    let name = class_names
                        .get(*class)
                        .map_or_else(|| format!("class {class}"), |s| (*s).to_string());
                    out.push_str(&format!(
                        "  n{id} [label=\"{name}\\n{samples} samples\", style=filled, fillcolor=lightgray];\n"
                    ));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let name = feature_names
                        .get(*feature)
                        .map_or_else(|| format!("x[{feature}]"), |s| (*s).to_string());
                    out.push_str(&format!("  n{id} [label=\"{name} <= {threshold:.4}\"];\n"));
                    out.push_str(&format!("  n{id} -> n{left} [label=\"yes\"];\n"));
                    out.push_str(&format!("  n{id} -> n{right} [label=\"no\"];\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{DecisionTree, TreeConfig};

    fn fitted() -> DecisionTree {
        DecisionTree::fit(
            &[
                vec![0.0, 5.0],
                vec![1.0, 5.0],
                vec![0.0, 9.0],
                vec![1.0, 9.0],
            ],
            &[0, 1, 0, 1],
            2,
            &TreeConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn text_uses_names() {
        let t = fitted();
        let s = t.to_text(&["a", "b"], &["no", "yes"]);
        assert!(s.contains("if a <= 0.5"));
        assert!(s.contains("→ no"));
        assert!(s.contains("→ yes"));
    }

    #[test]
    fn text_falls_back_to_indices() {
        let t = fitted();
        let s = t.to_text(&[], &[]);
        assert!(s.contains("x[0]"));
        assert!(s.contains("class 0"));
    }

    #[test]
    fn dot_is_wellformed() {
        let t = fitted();
        let s = t.to_dot(&["a", "b"], &["no", "yes"]);
        assert!(s.starts_with("digraph"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("n0 -> n"));
        // One declaration per node.
        for id in 0..t.node_count() {
            assert!(s.contains(&format!("n{id} [label=")));
        }
    }

    #[test]
    fn single_leaf_text() {
        let t = DecisionTree::fit(&[vec![1.0]], &[0], 1, &TreeConfig::default()).unwrap();
        let s = t.to_text(&["x"], &["only"]);
        assert_eq!(s.trim(), "→ only (1 samples)");
    }
}
