//! Intervals and axis-aligned boxes over the input space.
//!
//! A decision path is a conjunction of rules `x[f] ≤ t` / `x[f] > t`, so
//! the set of inputs reaching a leaf is an axis-aligned box whose `f`-th
//! side is a half-open interval `(lo, hi]`. These boxes are the central
//! object of the paper's Algorithm 1 ("compute the union of the 'boxes'
//! on the values of the input vectors handled by the decision nodes
//! along the path").

/// A half-open interval `(lo, hi]` over one feature, with infinite ends
/// meaning "unbounded".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Exclusive lower end (−∞ for unbounded).
    pub lo: f64,
    /// Inclusive upper end (+∞ for unbounded).
    pub hi: f64,
}

impl Interval {
    /// The full real line.
    pub fn all() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The interval `(lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }

    /// Whether `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        x > self.lo && x <= self.hi
    }

    /// Whether the interval contains no points.
    pub fn is_empty(&self) -> bool {
        !(self.lo < self.hi)
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Tightens the upper end to `min(hi, t)` — the effect of following
    /// the `x ≤ t` branch.
    pub fn clamp_upper(&mut self, t: f64) {
        self.hi = self.hi.min(t);
    }

    /// Tightens the lower end to `max(lo, t)` — the effect of following
    /// the `x > t` branch.
    pub fn clamp_lower(&mut self, t: f64) {
        self.lo = self.lo.max(t);
    }

    /// Whether this interval lies entirely above `t` (every point `> t`).
    pub fn entirely_above(&self, t: f64) -> bool {
        !self.is_empty() && self.lo >= t
    }

    /// Whether this interval lies entirely at-or-below `t`.
    pub fn entirely_at_most(&self, t: f64) -> bool {
        !self.is_empty() && self.hi <= t
    }

    /// Whether the open region `(t, ∞)` overlaps this interval.
    pub fn overlaps_above(&self, t: f64) -> bool {
        !self.is_empty() && self.hi > t
    }

    /// Whether the open region `(−∞, t)` overlaps this interval.
    pub fn overlaps_below(&self, t: f64) -> bool {
        !self.is_empty() && self.lo < t
    }
}

impl Default for Interval {
    fn default() -> Self {
        Self::all()
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}, {:.4}]", self.lo, self.hi)
    }
}

/// An axis-aligned box: one [`Interval`] per input feature. The set of
/// inputs handled by one leaf of a decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBox {
    sides: Vec<Interval>,
}

impl InputBox {
    /// The unbounded box over `dims` features (`C = ℝ^|X|` in
    /// Algorithm 1, line 3).
    pub fn unbounded(dims: usize) -> Self {
        Self {
            sides: vec![Interval::all(); dims],
        }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.sides.len()
    }

    /// The interval of feature `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn side(&self, f: usize) -> &Interval {
        &self.sides[f]
    }

    /// Mutable access to the interval of feature `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn side_mut(&mut self, f: usize) -> &mut Interval {
        &mut self.sides[f]
    }

    /// Whether the box contains the point `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dims()`.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dims(), "dimension mismatch");
        self.sides.iter().zip(x).all(|(s, &v)| s.contains(v))
    }

    /// Whether any side is empty (the box contains no points).
    pub fn is_empty(&self) -> bool {
        self.sides.iter().any(Interval::is_empty)
    }

    /// Intersection with another box of the same dimensionality.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn intersect(&self, other: &InputBox) -> InputBox {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        InputBox {
            sides: self
                .sides
                .iter()
                .zip(&other.sides)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// A representative interior point of the box, clamping unbounded
    /// ends to `fallback_lo`/`fallback_hi`. Useful for sampling inputs
    /// that reach a specific leaf.
    pub fn representative(&self, fallback_lo: f64, fallback_hi: f64) -> Vec<f64> {
        self.sides
            .iter()
            .map(|s| {
                let lo = if s.lo.is_finite() { s.lo } else { fallback_lo };
                let hi = if s.hi.is_finite() { s.hi } else { fallback_hi };
                if lo < hi {
                    0.5 * (lo + hi)
                } else {
                    hi
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_contains_half_open() {
        let i = Interval::new(0.0, 1.0);
        assert!(!i.contains(0.0));
        assert!(i.contains(0.5));
        assert!(i.contains(1.0));
        assert!(!i.contains(1.1));
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::new(1.0, 1.0).is_empty());
        assert!(Interval::new(2.0, 1.0).is_empty());
        assert!(!Interval::all().is_empty());
    }

    #[test]
    fn clamps_tighten() {
        let mut i = Interval::all();
        i.clamp_upper(5.0);
        i.clamp_lower(1.0);
        assert_eq!(i, Interval::new(1.0, 5.0));
        i.clamp_upper(10.0); // looser: no effect
        assert_eq!(i.hi, 5.0);
    }

    #[test]
    fn region_predicates() {
        let i = Interval::new(2.0, 4.0);
        assert!(i.entirely_above(2.0));
        assert!(i.entirely_above(1.0));
        assert!(!i.entirely_above(3.0));
        assert!(i.entirely_at_most(4.0));
        assert!(!i.entirely_at_most(3.0));
        assert!(i.overlaps_above(3.0));
        assert!(!i.overlaps_above(4.0));
        assert!(i.overlaps_below(3.0));
        assert!(!i.overlaps_below(2.0));
    }

    #[test]
    fn box_contains_point() {
        let mut b = InputBox::unbounded(2);
        b.side_mut(0).clamp_upper(1.0);
        b.side_mut(1).clamp_lower(0.0);
        assert!(b.contains(&[0.5, 0.5]));
        assert!(!b.contains(&[1.5, 0.5]));
        assert!(!b.contains(&[0.5, -0.5]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn box_contains_wrong_dims_panics() {
        InputBox::unbounded(2).contains(&[1.0]);
    }

    #[test]
    fn box_intersection() {
        let mut a = InputBox::unbounded(1);
        a.side_mut(0).clamp_upper(5.0);
        let mut b = InputBox::unbounded(1);
        b.side_mut(0).clamp_lower(3.0);
        let c = a.intersect(&b);
        assert_eq!(*c.side(0), Interval::new(3.0, 5.0));
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_box_after_contradictory_rules() {
        let mut b = InputBox::unbounded(1);
        b.side_mut(0).clamp_upper(1.0);
        b.side_mut(0).clamp_lower(2.0);
        assert!(b.is_empty());
    }

    #[test]
    fn representative_is_inside_bounded_box() {
        let mut b = InputBox::unbounded(2);
        b.side_mut(0).clamp_lower(0.0);
        b.side_mut(0).clamp_upper(2.0);
        b.side_mut(1).clamp_lower(-1.0);
        b.side_mut(1).clamp_upper(1.0);
        let p = b.representative(-100.0, 100.0);
        assert!(b.contains(&p));
    }

    #[test]
    fn representative_uses_fallbacks_when_unbounded() {
        let b = InputBox::unbounded(1);
        let p = b.representative(-10.0, 10.0);
        assert_eq!(p, vec![0.0]);
    }

    proptest! {
        #[test]
        fn prop_intersect_subset(
            alo in -10.0f64..10.0, ahi in -10.0f64..10.0,
            blo in -10.0f64..10.0, bhi in -10.0f64..10.0,
            x in -12.0f64..12.0,
        ) {
            let a = Interval::new(alo, ahi);
            let b = Interval::new(blo, bhi);
            let c = a.intersect(&b);
            prop_assert_eq!(c.contains(x), a.contains(x) && b.contains(x));
        }

        #[test]
        fn prop_interval_display_parses_shape(lo in -5.0f64..0.0, hi in 0.0f64..5.0) {
            let s = Interval::new(lo, hi).to_string();
            prop_assert!(s.starts_with('(') && s.ends_with(']'));
        }
    }
}
