//! Branchless flat kernel for verified trees.
//!
//! The enum walk in [`DecisionTree::apply`] chases `Vec<Node>` pointers
//! and branches on the node kind at every hop. That was fine when one
//! decision ran every 15 minutes; the fleet's lockstep `/tick` batches
//! thousands of tenant decisions per call, so the walk is now the
//! multiplied cost. [`CompiledTree`] flattens a *validated* tree into a
//! cache-friendly struct-of-arrays layout:
//!
//! * split nodes only, numbered breadth-first from the root so the hot
//!   top of the tree shares cache lines,
//! * `feature: Vec<u16>` + `threshold: Vec<f64>` indexed by split,
//! * children as one `Vec<u32>` with index arithmetic
//!   (`children[2·i + go_right]`), and
//! * leaves flagged by the top bit of the child word
//!   ([`LEAF_BIT`]` | leaf_index`), so descent is a single
//!   compare-and-index loop with no enum match, and
//! * a batched kernel ([`CompiledTree::predict_batch_into`]) that
//!   descends a block of rows *level-synchronously* with branchless
//!   active-lane compaction: each pass advances every still-descending
//!   row one level, so the inner loop is a stream of independent
//!   compare→index chains the out-of-order core overlaps, instead of
//!   one latency-bound pointer chase per row.
//!
//! The descent preserves the reference semantics bit-for-bit, including
//! the asymmetric NaN rule: `x <= t` is false for NaN, so a NaN
//! observation routes **right** at every split in both kernels (keeping
//! NaNs out entirely is the guard's job — see `GuardConfig` — but the
//! kernels must still agree on hostile inputs). Equivalence is *proven*,
//! not assumed: [`crate::equivalence::prove_equivalence`] sweeps the
//! verification box grid before a compiled tree is eligible to serve.
//!
//! An optional fixed-point variant (compiled with
//! [`CompileOptions::quantized`]) stores order-preserving integer keys
//! of the thresholds and descends on integer compares — for targets
//! where f64 compares are slow — with the NaN rule preserved by mapping
//! NaN to the maximum key.

use crate::error::TreeError;
use crate::tree::{DecisionTree, LeafId, Node};

/// Top bit of a child word: set means "leaf", lower bits are the leaf
/// index into [`CompiledTree`]'s leaf arrays.
pub const LEAF_BIT: u32 = 1 << 31;

/// Format tag of the serialized compiled artifact.
const FORMAT_HEADER: &str = "ctree v1";

/// Compilation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Also build the fixed-point (quantized-threshold) kernel.
    pub quantized: bool,
}

/// Maps an `f64` to a `u64` key with the same total order as `<=` on
/// non-NaN floats, with every NaN mapped to `u64::MAX`.
///
/// Negative floats have descending bit patterns, so their bits are
/// inverted; positives get the sign bit set. `-0.0` keys *below* `+0.0`
/// (they are distinct keys but equal floats), which is why
/// [`CompiledTree`] normalizes `-0.0` thresholds to `+0.0` at
/// quantization — inputs of either zero then land on the same side as
/// the f64 compare. NaN → `u64::MAX` keeps the asymmetric routing rule:
/// a NaN observation compares greater than every finite threshold key
/// and routes right, exactly like `!(NaN <= t)`.
#[inline]
#[must_use]
pub fn sort_key(value: f64) -> u64 {
    if value.is_nan() {
        return u64::MAX;
    }
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// A verified tree flattened into a branchless struct-of-arrays kernel.
///
/// Built by [`CompiledTree::compile`]; structurally validated input is a
/// precondition enforced there, so descent needs no per-hop kind checks.
/// Use [`crate::equivalence::prove_equivalence`] before serving from it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTree {
    n_features: usize,
    n_classes: usize,
    /// Encoded root cursor — a leaf word for single-leaf trees.
    root: u32,
    /// Number of *real* splits; entries past this index in the split
    /// arrays are the per-leaf virtual self-loops used by the batch
    /// wavefront (see [`CompiledTree::predict_batch_into`]).
    splits: usize,
    /// Maximum number of splits on any root→leaf path — a hard bound on
    /// descent length, guaranteed by the BFS child-ordering invariant.
    depth: usize,
    /// Per split: tested feature (fits `u16` by construction). Indices
    /// `splits..` are one virtual self-loop row per leaf: feature 0,
    /// `+∞` threshold, both children the leaf's own cursor — a leaf
    /// cursor "advances" to itself, which lets the batch wavefront
    /// update every lane unconditionally.
    feature: Vec<u16>,
    /// Per split: comparison threshold.
    threshold: Vec<f64>,
    /// Per split: `[left, right]` child words at `2·i` and `2·i + 1`.
    children: Vec<u32>,
    /// Per leaf: predicted class.
    leaf_class: Vec<u32>,
    /// Per leaf: originating arena node id in the source tree.
    leaf_node: Vec<u32>,
    /// Per split: order-preserving integer key of `threshold`
    /// (empty unless compiled with [`CompileOptions::quantized`]).
    qthreshold: Vec<u64>,
}

impl CompiledTree {
    /// Flattens `tree` into the compiled layout.
    ///
    /// Runs [`DecisionTree::validate_structure`] first: a malformed tree
    /// (cycle, dangling child, NaN threshold) is rejected with the same
    /// typed error the deserializer produces, never compiled into a
    /// kernel that would misroute.
    ///
    /// # Errors
    ///
    /// Structural errors from validation, or
    /// [`TreeError::TooLargeToCompile`] when an index exceeds the flat
    /// layout's width (`u16` features, 31-bit node/leaf counts).
    pub fn compile(tree: &DecisionTree, options: CompileOptions) -> Result<Self, TreeError> {
        tree.validate_structure()?;
        if tree.n_features() > usize::from(u16::MAX) + 1 {
            return Err(TreeError::TooLargeToCompile {
                what: "feature index does not fit u16",
            });
        }
        if tree.node_count() >= LEAF_BIT as usize {
            return Err(TreeError::TooLargeToCompile {
                what: "node count does not fit 31 bits",
            });
        }

        // Pass 1: breadth-first over the source arena, assigning compact
        // ids — splits and leaves separately — so parents precede
        // children and the tree's hot top packs into few cache lines.
        let mut order = std::collections::VecDeque::from([0usize]);
        let mut bfs = Vec::with_capacity(tree.node_count());
        let mut compact = vec![u32::MAX; tree.node_count()];
        let mut splits = 0u32;
        let mut leaves = 0u32;
        while let Some(id) = order.pop_front() {
            bfs.push(id);
            match &tree.nodes[id] {
                Node::Split { left, right, .. } => {
                    compact[id] = splits;
                    splits += 1;
                    order.push_back(*left);
                    order.push_back(*right);
                }
                Node::Leaf { .. } => {
                    compact[id] = LEAF_BIT | leaves;
                    leaves += 1;
                }
            }
        }

        // Pass 2: fill the arrays in compact order.
        let mut compiled = CompiledTree {
            n_features: tree.n_features(),
            n_classes: tree.n_classes(),
            root: compact[0],
            splits: splits as usize,
            depth: 0,
            feature: Vec::with_capacity(splits as usize),
            threshold: Vec::with_capacity(splits as usize),
            children: Vec::with_capacity(2 * splits as usize),
            leaf_class: Vec::with_capacity(leaves as usize),
            leaf_node: Vec::with_capacity(leaves as usize),
            qthreshold: Vec::new(),
        };
        for &id in &bfs {
            match &tree.nodes[id] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    #[allow(clippy::cast_possible_truncation)] // bounded by u16 check above
                    compiled.feature.push(*feature as u16);
                    compiled.threshold.push(*threshold);
                    compiled.children.push(compact[*left]);
                    compiled.children.push(compact[*right]);
                }
                Node::Leaf { class, .. } => {
                    #[allow(clippy::cast_possible_truncation)] // bounded by 31-bit check above
                    compiled.leaf_class.push(*class as u32);
                    #[allow(clippy::cast_possible_truncation)]
                    compiled.leaf_node.push(id as u32);
                }
            }
        }
        compiled.finish_layout(options.quantized);
        Ok(compiled)
    }

    /// Computes the descent depth, appends one virtual self-loop split
    /// per leaf for the batch wavefront, and derives the quantized keys.
    /// Called exactly once, after the real split/leaf arrays are filled
    /// and validated (the virtual rows would otherwise trip the
    /// child-ordering check — they intentionally point at themselves).
    fn finish_layout(&mut self, quantized: bool) {
        debug_assert_eq!(self.splits, self.feature.len());
        // Height DP in reverse BFS order: a split's children always
        // carry larger split indices, so `h[i]` is final when visited.
        let mut h = vec![0u32; self.splits];
        for i in (0..self.splits).rev() {
            let left = self.children[2 * i];
            let right = self.children[2 * i + 1];
            let hc = |c: u32, h: &[u32]| if c & LEAF_BIT == 0 { h[c as usize] } else { 0 };
            h[i] = 1 + hc(left, &h).max(hc(right, &h));
        }
        self.depth = if self.root & LEAF_BIT == 0 {
            h[self.root as usize] as usize
        } else {
            0
        };
        #[allow(clippy::cast_possible_truncation)] // leaf count fits 31 bits
        for leaf in 0..self.leaf_class.len() as u32 {
            self.feature.push(0);
            self.threshold.push(f64::INFINITY);
            self.children.push(LEAF_BIT | leaf);
            self.children.push(LEAF_BIT | leaf);
        }
        if quantized {
            self.qthreshold = self
                .threshold
                .iter()
                // Normalize -0.0 → +0.0 so both zeros key identically to
                // the threshold (see `sort_key`).
                .map(|&t| sort_key(t + 0.0))
                .collect();
        }
    }

    /// Number of input features the kernel expects.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes (leaf classes are `< n_classes`).
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of split nodes in the flat layout (virtual self-loop rows
    /// excluded — they are wavefront plumbing, not tree structure).
    #[must_use]
    pub fn split_count(&self) -> usize {
        self.splits
    }

    /// Maximum number of splits on any root→leaf path — a hard bound on
    /// descent length (every descent terminates in at most this many
    /// compares, guaranteed by the BFS child-ordering invariant).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of leaves in the flat layout.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaf_class.len()
    }

    /// Whether the fixed-point kernel was compiled in.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        !self.qthreshold.is_empty()
    }

    #[inline]
    fn check_width(&self, got: usize) -> Result<(), TreeError> {
        if got != self.n_features {
            return Err(TreeError::BadInputWidth {
                expected: self.n_features,
                got,
            });
        }
        Ok(())
    }

    /// The branch-light descent: one compare and one leaf-bit test per
    /// hop, with the child slot derived by index arithmetic — no enum
    /// match, no pointer chase. `!(x <= t)` (not `x > t`) keeps the
    /// asymmetric NaN rule: NaN fails the `<=` and routes right, exactly
    /// like the enum walk. Terminates in at most [`CompiledTree::depth`]
    /// hops — the BFS child-ordering invariant (child split index >
    /// parent's) is validated at construction and parse.
    #[inline]
    fn descend(&self, x: &[f64]) -> u32 {
        let feature = self.feature.as_slice();
        let threshold = self.threshold.as_slice();
        let children = self.children.as_slice();
        let mut cursor = self.root;
        while cursor & LEAF_BIT == 0 {
            let i = cursor as usize;
            let go_right = !(x[usize::from(feature[i])] <= threshold[i]);
            cursor = children[2 * i + usize::from(go_right)];
        }
        cursor
    }

    /// Integer-compare descent over quantized keys; same structure as
    /// [`CompiledTree::descend`].
    #[inline]
    fn descend_quantized(&self, keys: &[u64]) -> u32 {
        let feature = self.feature.as_slice();
        let qthreshold = self.qthreshold.as_slice();
        let children = self.children.as_slice();
        let mut cursor = self.root;
        while cursor & LEAF_BIT == 0 {
            let i = cursor as usize;
            let go_right = keys[usize::from(feature[i])] > qthreshold[i];
            cursor = children[2 * i + usize::from(go_right)];
        }
        cursor
    }

    /// Predicts the class of one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input.
    pub fn predict(&self, x: &[f64]) -> Result<usize, TreeError> {
        self.check_width(x.len())?;
        let leaf = (self.descend(x) & !LEAF_BIT) as usize;
        Ok(self.leaf_class[leaf] as usize)
    }

    /// Returns the *source-tree* leaf that handles `x` — the same
    /// [`LeafId`] the enum walk's `apply` returns, so callers can keep
    /// using leaf boxes and leaf editing against the original arena.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input.
    pub fn apply(&self, x: &[f64]) -> Result<LeafId, TreeError> {
        self.check_width(x.len())?;
        let leaf = (self.descend(x) & !LEAF_BIT) as usize;
        Ok(LeafId(self.leaf_node[leaf] as usize))
    }

    /// Predicts the class of one input vector on the fixed-point kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input and
    /// [`TreeError::BadConfig`] when the tree was compiled without
    /// [`CompileOptions::quantized`].
    pub fn predict_quantized(&self, x: &[f64]) -> Result<usize, TreeError> {
        self.check_width(x.len())?;
        if !self.is_quantized() && self.split_count() > 0 {
            return Err(TreeError::BadConfig {
                what: "tree was compiled without the quantized kernel",
            });
        }
        let mut stack = [0u64; 32];
        let leaf = if x.len() <= stack.len() {
            let keys = &mut stack[..x.len()];
            for (k, &v) in keys.iter_mut().zip(x) {
                *k = sort_key(v);
            }
            self.descend_quantized(keys)
        } else {
            let keys: Vec<u64> = x.iter().map(|&v| sort_key(v)).collect();
            self.descend_quantized(&keys)
        };
        Ok(self.leaf_class[(leaf & !LEAF_BIT) as usize] as usize)
    }

    /// Classifies a row-major batch (`rows.len() = n · n_features`) into
    /// `out`, clearing it first.
    ///
    /// Descends a *wavefront* of [`WAVE`] rows at once: the eight
    /// cursors live in registers and every lane updates unconditionally
    /// each level — a lane that has reached its leaf "advances" onto
    /// that leaf's virtual self-loop row and stays put — so the loop
    /// body has no data-dependent branch per lane, just eight
    /// independent compare→index chains the out-of-order core overlaps.
    /// The wave exits when an AND-reduce of the eight cursors shows the
    /// leaf bit set in all of them, which bounds the spin waste at the
    /// *wave's* deepest row rather than the tree's global depth.
    /// Leftover rows (fewer than a full wave) take the scalar descent.
    /// Per-row results are identical to [`CompiledTree::predict`] — the
    /// wavefront is a latency knob, not a semantic one.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] when `rows` is not a whole
    /// number of `n_features`-wide rows.
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut Vec<usize>) -> Result<(), TreeError> {
        const WAVE: usize = 8;
        let width = self.n_features;
        if !rows.len().is_multiple_of(width) {
            return Err(TreeError::BadInputWidth {
                expected: width,
                got: rows.len() % width,
            });
        }
        let n = rows.len() / width;
        out.clear();
        out.reserve(n);
        let feature = self.feature.as_slice();
        let threshold = self.threshold.as_slice();
        let children = self.children.as_slice();
        let leaf_class = self.leaf_class.as_slice();
        let splits = self.splits;
        let mut full_waves = rows.chunks_exact(WAVE * width);
        for chunk in full_waves.by_ref() {
            // Lane row slices hoisted out of the level loop, so the
            // (fully unrolled) lane updates keep the eight cursors in
            // registers with no per-level iterator setup.
            let x: [&[f64]; WAVE] =
                std::array::from_fn(|lane| &chunk[lane * width..(lane + 1) * width]);
            let mut cursors = [self.root; WAVE];
            while cursors.iter().fold(u32::MAX, |a, &c| a & c) & LEAF_BIT == 0 {
                for lane in 0..WAVE {
                    let c = cursors[lane];
                    let i = (c & !LEAF_BIT) as usize + (c >> 31) as usize * splits;
                    let go_right = !(x[lane][usize::from(feature[i])] <= threshold[i]);
                    cursors[lane] = children[2 * i + usize::from(go_right)];
                }
            }
            for &cursor in &cursors {
                out.push(leaf_class[(cursor & !LEAF_BIT) as usize] as usize);
            }
        }
        for row in full_waves.remainder().chunks_exact(width) {
            out.push(leaf_class[(self.descend(row) & !LEAF_BIT) as usize] as usize);
        }
        Ok(())
    }

    /// Serializes the compiled layout to a small human-auditable text
    /// format — the *compiled artifact* whose content hash the
    /// verification certificate binds:
    ///
    /// ```text
    /// ctree v1
    /// features 7
    /// classes 90
    /// root S0
    /// splits 2
    /// leaves 3
    /// N 0 22.5 L0 S1
    /// N 3 0.5 L1 L2
    /// F 45 1
    /// F 30 3
    /// F 61 4
    /// ```
    ///
    /// `N <feature> <threshold> <left> <right>` is one split (children
    /// written as `S<split>` or `L<leaf>`); `F <class> <source-node>`
    /// one leaf. Floats print with round-trip precision, so the hash is
    /// stable across serialize/parse cycles. The quantized kernel is
    /// derived data and is *not* serialized — a parser recomputes it.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let cursor = |c: u32| {
            if c & LEAF_BIT == 0 {
                format!("S{c}")
            } else {
                format!("L{}", c & !LEAF_BIT)
            }
        };
        let mut out = String::new();
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        out.push_str(&format!("features {}\n", self.n_features));
        out.push_str(&format!("classes {}\n", self.n_classes));
        out.push_str(&format!("root {}\n", cursor(self.root)));
        out.push_str(&format!("splits {}\n", self.split_count()));
        out.push_str(&format!("leaves {}\n", self.leaf_count()));
        for i in 0..self.split_count() {
            out.push_str(&format!(
                "N {} {:?} {} {}\n",
                self.feature[i],
                self.threshold[i],
                cursor(self.children[2 * i]),
                cursor(self.children[2 * i + 1]),
            ));
        }
        for i in 0..self.leaf_count() {
            out.push_str(&format!("F {} {}\n", self.leaf_class[i], self.leaf_node[i]));
        }
        out
    }

    /// Parses a compiled artifact written by
    /// [`CompiledTree::to_compact_string`], revalidating every index so
    /// a tampered or truncated artifact is rejected rather than served.
    ///
    /// `quantized` controls whether the fixed-point kernel is rebuilt
    /// (it is derived data, never stored).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadConfig`] naming the first malformed line,
    /// or [`TreeError::NonFiniteThreshold`] /
    /// [`TreeError::ChildOutOfRange`] for structural offenses.
    pub fn from_compact_string(text: &str, options: CompileOptions) -> Result<Self, TreeError> {
        let bad = |what: &'static str| TreeError::BadConfig { what };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(FORMAT_HEADER) {
            return Err(bad("missing or unsupported compiled-format header"));
        }
        let mut field = |key: &'static str| -> Result<String, TreeError> {
            let line = lines.next().ok_or(bad("truncated compiled header"))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some(key) {
                return Err(bad("compiled header field out of order"));
            }
            parts
                .next()
                .map(str::to_string)
                .ok_or(bad("compiled header field missing value"))
        };
        let n_features: usize = field("features")?
            .parse()
            .map_err(|_| bad("bad features count"))?;
        let n_classes: usize = field("classes")?
            .parse()
            .map_err(|_| bad("bad classes count"))?;
        let root_text = field("root")?;
        let splits: usize = field("splits")?
            .parse()
            .map_err(|_| bad("bad splits count"))?;
        let leaves: usize = field("leaves")?
            .parse()
            .map_err(|_| bad("bad leaves count"))?;
        if n_features == 0 || usize::from(u16::MAX) + 1 < n_features {
            return Err(bad("features count out of range"));
        }
        if n_classes == 0 || leaves == 0 {
            return Err(bad("compiled tree needs classes and leaves"));
        }
        if splits >= LEAF_BIT as usize || leaves >= LEAF_BIT as usize {
            return Err(bad("compiled node count out of range"));
        }
        let parse_cursor = |text: &str| -> Result<u32, TreeError> {
            let (leaf, rest) = if let Some(rest) = text.strip_prefix('S') {
                (false, rest)
            } else if let Some(rest) = text.strip_prefix('L') {
                (true, rest)
            } else {
                return Err(bad("bad child cursor in compiled tree"));
            };
            let index: u32 = rest
                .parse()
                .map_err(|_| bad("bad child cursor in compiled tree"))?;
            if index >= LEAF_BIT {
                return Err(bad("bad child cursor in compiled tree"));
            }
            let bound = if leaf { leaves } else { splits };
            if index as usize >= bound {
                return Err(TreeError::ChildOutOfRange {
                    node: 0,
                    child: index as usize,
                    nodes: splits + leaves,
                });
            }
            Ok(if leaf { LEAF_BIT | index } else { index })
        };

        let mut compiled = CompiledTree {
            n_features,
            n_classes,
            root: parse_cursor(&root_text)?,
            feature: Vec::with_capacity(splits),
            threshold: Vec::with_capacity(splits),
            children: Vec::with_capacity(2 * splits),
            leaf_class: Vec::with_capacity(leaves),
            leaf_node: Vec::with_capacity(leaves),
            qthreshold: Vec::new(),
            splits,
            depth: 0,
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("N") => {
                    let feature: u16 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad split feature"))?;
                    if usize::from(feature) >= n_features {
                        return Err(TreeError::FeatureOutOfRange {
                            node: compiled.feature.len(),
                            feature: usize::from(feature),
                            n_features,
                        });
                    }
                    let threshold: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad split threshold"))?;
                    if !threshold.is_finite() {
                        return Err(TreeError::NonFiniteThreshold {
                            node: compiled.feature.len(),
                        });
                    }
                    let left = parse_cursor(parts.next().ok_or(bad("missing left child"))?)?;
                    let right = parse_cursor(parts.next().ok_or(bad("missing right child"))?)?;
                    compiled.feature.push(feature);
                    compiled.threshold.push(threshold);
                    compiled.children.push(left);
                    compiled.children.push(right);
                }
                Some("F") => {
                    let class: u32 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad leaf class"))?;
                    if class as usize >= n_classes {
                        return Err(TreeError::BadClass {
                            class: class as usize,
                            n_classes,
                        });
                    }
                    let node: u32 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad leaf source node"))?;
                    compiled.leaf_class.push(class);
                    compiled.leaf_node.push(node);
                }
                _ => return Err(bad("unknown compiled node tag")),
            }
        }
        // `feature.len()`, not `split_count()`: the latter reads the
        // header-declared count, which is what we're checking against.
        if compiled.feature.len() != splits || compiled.leaf_count() != leaves {
            return Err(bad("compiled node count mismatch"));
        }
        // Termination: BFS numbering means every split's child index is
        // strictly greater than its own, so descent strictly advances —
        // a parsed artifact violating that could loop.
        for (i, pair) in compiled.children.chunks_exact(2).enumerate() {
            for &child in pair {
                if child & LEAF_BIT == 0 && child as usize <= i {
                    return Err(TreeError::CycleDetected { node: i });
                }
            }
        }
        compiled.finish_layout(options.quantized);
        Ok(compiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    fn fitted(n: usize, features: usize, classes: usize) -> DecisionTree {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..features)
                    .map(|f| ((i * 13 + f * 29) % 97) as f64 / 7.0 - 5.0)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % classes).collect();
        DecisionTree::fit(&inputs, &labels, classes, &TreeConfig::default()).unwrap()
    }

    #[test]
    fn compiled_matches_enum_walk_on_a_grid() {
        let tree = fitted(200, 3, 5);
        let compiled = CompiledTree::compile(&tree, CompileOptions { quantized: true }).unwrap();
        for i in 0..500 {
            let x = [
                (i % 23) as f64 - 11.0,
                (i % 17) as f64 / 3.0 - 3.0,
                (i % 29) as f64 / 5.0 - 2.0,
            ];
            let expected = tree.predict(&x).unwrap();
            assert_eq!(compiled.predict(&x).unwrap(), expected);
            assert_eq!(compiled.predict_quantized(&x).unwrap(), expected);
            assert_eq!(compiled.apply(&x).unwrap(), tree.apply(&x).unwrap());
        }
    }

    #[test]
    fn nan_routes_right_in_both_kernels() {
        let tree = fitted(120, 2, 4);
        let compiled = CompiledTree::compile(&tree, CompileOptions { quantized: true }).unwrap();
        for hostile in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN] {
            for other in [-3.0, 0.0, 7.5, f64::NAN] {
                for x in [[hostile, other], [other, hostile]] {
                    let expected = tree.predict(&x).unwrap();
                    assert_eq!(compiled.predict(&x).unwrap(), expected, "x = {x:?}");
                    assert_eq!(
                        compiled.predict_quantized(&x).unwrap(),
                        expected,
                        "quantized x = {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_single() {
        let tree = fitted(150, 3, 6);
        let compiled = CompiledTree::compile(&tree, CompileOptions::default()).unwrap();
        // 21 rows: exercises full waves and the ragged tail.
        let rows: Vec<f64> = (0..63).map(|i| (i % 19) as f64 / 2.0 - 4.0).collect();
        let mut out = Vec::new();
        compiled.predict_batch_into(&rows, &mut out).unwrap();
        assert_eq!(out.len(), 21);
        for (k, &got) in out.iter().enumerate() {
            assert_eq!(got, compiled.predict(&rows[k * 3..(k + 1) * 3]).unwrap());
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let tree = DecisionTree::fit(&[vec![1.0, 2.0]], &[3], 5, &TreeConfig::default()).unwrap();
        let compiled = CompiledTree::compile(&tree, CompileOptions { quantized: true }).unwrap();
        assert_eq!(compiled.split_count(), 0);
        assert_eq!(compiled.leaf_count(), 1);
        assert_eq!(compiled.predict(&[9.0, -9.0]).unwrap(), 3);
        assert_eq!(compiled.predict_quantized(&[9.0, -9.0]).unwrap(), 3);
        let mut out = Vec::new();
        compiled
            .predict_batch_into(&[0.0, 0.0, 1.0, 1.0], &mut out)
            .unwrap();
        assert_eq!(out, vec![3, 3]);
    }

    #[test]
    fn malformed_trees_do_not_compile() {
        let cyclic = DecisionTree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 1,
                },
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 0,
                    right: 0,
                },
            ],
            n_features: 1,
            n_classes: 2,
        };
        assert!(CompiledTree::compile(&cyclic, CompileOptions::default()).is_err());
    }

    #[test]
    fn artifact_roundtrips_and_rejects_tampering() {
        let tree = fitted(160, 3, 5);
        let options = CompileOptions { quantized: true };
        let compiled = CompiledTree::compile(&tree, options).unwrap();
        let text = compiled.to_compact_string();
        let restored = CompiledTree::from_compact_string(&text, options).unwrap();
        assert_eq!(compiled, restored);
        // Tampered variants must be rejected, not served.
        for tampered in [
            text.replace("ctree v1", "ctree v2"),
            text.replacen("N 0", "N 9", 1),
            text.lines().take(7).collect::<Vec<_>>().join("\n"),
            text.replacen("S1", "S0", 1),
        ] {
            if tampered == text {
                continue;
            }
            assert!(
                CompiledTree::from_compact_string(&tampered, options).is_err()
                    || CompiledTree::from_compact_string(&tampered, options).unwrap() != compiled,
                "tampered artifact accepted as identical: {tampered:?}"
            );
        }
    }

    #[test]
    fn sort_key_orders_like_f64() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i..] {
                if a < b {
                    assert!(sort_key(a) < sort_key(b), "{a} vs {b}");
                }
            }
        }
        assert_eq!(sort_key(f64::NAN), u64::MAX);
        assert_eq!(sort_key(-f64::NAN), u64::MAX);
        assert!(sort_key(f64::INFINITY) < u64::MAX);
    }
}
