//! Tree data structure, prediction and introspection.

use crate::error::TreeError;
use crate::interval::InputBox;

/// Identifier of any node in a tree (index into the node arena; the root
/// is always node 0).
pub type NodeId = usize;

/// Identifier of a leaf node. A thin wrapper so APIs that require leaves
/// (leaf editing, leaf boxes) are type-checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafId(pub(crate) NodeId);

impl LeafId {
    /// The underlying node id.
    pub fn node_id(&self) -> NodeId {
        self.0
    }
}

/// One node of a fitted tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An internal decision node: `x[feature] ≤ threshold` goes left,
    /// otherwise right.
    Split {
        /// Feature compared by this node.
        feature: usize,
        /// Comparison threshold.
        threshold: f64,
        /// Child for `x[feature] ≤ threshold`.
        left: NodeId,
        /// Child for `x[feature] > threshold`.
        right: NodeId,
    },
    /// A leaf holding the predicted class.
    Leaf {
        /// Predicted class id.
        class: usize,
        /// Training samples that landed in this leaf.
        samples: usize,
    },
}

/// Stopping criteria for CART fitting.
///
/// Defaults mirror scikit-learn's `DecisionTreeClassifier` defaults the
/// paper relies on: unbounded depth, `min_samples_split = 2`,
/// `min_samples_leaf = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (`None` = unbounded, as in the paper).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
}

impl TreeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadConfig`] when `min_samples_split < 2` or
    /// `min_samples_leaf < 1`.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.min_samples_split < 2 {
            return Err(TreeError::BadConfig {
                what: "min_samples_split must be at least 2",
            });
        }
        if self.min_samples_leaf < 1 {
            return Err(TreeError::BadConfig {
                what: "min_samples_leaf must be at least 1",
            });
        }
        Ok(())
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// A fitted CART classification tree.
///
/// Nodes live in an arena (`Vec<Node>`); the root is node 0. The tree is
/// immutable after fitting except for [`DecisionTree::set_leaf_class`],
/// which is exactly the edit Algorithm 1 performs on failed leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
}

impl DecisionTree {
    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of nodes (the paper's Table 2 "Total No. of nodes").
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes (Table 2's "No. of leaf nodes (unique
    /// path)").
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: NodeId) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Borrow a node by id.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadNodeId`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.nodes.get(id).ok_or(TreeError::BadNodeId {
            id,
            nodes: self.nodes.len(),
        })
    }

    /// All leaf ids, in arena order (stable across calls).
    pub fn leaves(&self) -> Vec<LeafId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Node::Leaf { .. } => Some(LeafId(i)),
                _ => None,
            })
            .collect()
    }

    /// The class stored in a leaf.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadNodeId`] / [`TreeError::NotALeaf`] for
    /// invalid ids.
    pub fn leaf_class(&self, leaf: LeafId) -> Result<usize, TreeError> {
        match self.node(leaf.0)? {
            Node::Leaf { class, .. } => Ok(*class),
            Node::Split { .. } => Err(TreeError::NotALeaf { id: leaf.0 }),
        }
    }

    /// Rewrites the class of a leaf — the correction step of the paper's
    /// Algorithm 1 ("we correct it by editing the setpoint in the failed
    /// leaf node").
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadClass`] when `class >= n_classes`, and
    /// [`TreeError::NotALeaf`] / [`TreeError::BadNodeId`] for invalid
    /// ids.
    pub fn set_leaf_class(&mut self, leaf: LeafId, class: usize) -> Result<(), TreeError> {
        if class >= self.n_classes {
            return Err(TreeError::BadClass {
                class,
                n_classes: self.n_classes,
            });
        }
        let n = self.nodes.len();
        match self.nodes.get_mut(leaf.0) {
            Some(Node::Leaf { class: c, .. }) => {
                *c = class;
                Ok(())
            }
            Some(Node::Split { .. }) => Err(TreeError::NotALeaf { id: leaf.0 }),
            None => Err(TreeError::BadNodeId {
                id: leaf.0,
                nodes: n,
            }),
        }
    }

    /// Replaces a leaf with a decision node `x[feature] ≤ threshold`,
    /// whose children are two fresh leaves carrying `left_class` and
    /// `right_class`. Returns the new `(left, right)` leaf ids.
    ///
    /// This is the surgical edit used by occupancy-scoped verification
    /// corrections: the unsafe subset of a leaf's box gets a corrected
    /// action while the rest keeps the learned one.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadNodeId`] / [`TreeError::NotALeaf`] for
    /// invalid ids, [`TreeError::BadClass`] for out-of-range classes,
    /// and [`TreeError::BadInputWidth`] if `feature` is not a valid
    /// feature index.
    pub fn split_leaf(
        &mut self,
        leaf: LeafId,
        feature: usize,
        threshold: f64,
        left_class: usize,
        right_class: usize,
    ) -> Result<(LeafId, LeafId), TreeError> {
        if feature >= self.n_features {
            return Err(TreeError::BadInputWidth {
                expected: self.n_features,
                got: feature + 1,
            });
        }
        for class in [left_class, right_class] {
            if class >= self.n_classes {
                return Err(TreeError::BadClass {
                    class,
                    n_classes: self.n_classes,
                });
            }
        }
        let samples = match self.node(leaf.0)? {
            Node::Leaf { samples, .. } => *samples,
            Node::Split { .. } => return Err(TreeError::NotALeaf { id: leaf.0 }),
        };
        let left = self.nodes.len();
        self.nodes.push(Node::Leaf {
            class: left_class,
            samples,
        });
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf {
            class: right_class,
            samples,
        });
        self.nodes[leaf.0] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        Ok((LeafId(left), LeafId(right)))
    }

    /// Collapses redundant structure: any decision node whose two
    /// children are leaves with the *same class* is replaced by a single
    /// leaf (sample counts summed), repeatedly until a fixed point. The
    /// arena is compacted, so node ids change.
    ///
    /// Returns the number of nodes removed. Predictions are unchanged
    /// for every input (the collapsed split was unobservable).
    ///
    /// Redundant splits arise naturally from CART fitting zero-gain
    /// splits and from verification corrections that rewrite sibling
    /// leaves to the same action; simplifying afterwards keeps the
    /// deployed tree minimal — which matters for the interpretability
    /// story (fewer rules to audit).
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_dtree::{DecisionTree, TreeConfig};
    ///
    /// # fn main() -> Result<(), hvac_dtree::TreeError> {
    /// let mut tree = DecisionTree::fit(
    ///     &[vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
    ///     &[0, 1, 1, 0],
    ///     2,
    ///     &TreeConfig::default(),
    /// )?;
    /// // Rewrite every leaf to class 0: all splits become redundant.
    /// for leaf in tree.leaves() {
    ///     tree.set_leaf_class(leaf, 0)?;
    /// }
    /// let removed = tree.simplify();
    /// assert!(removed > 0);
    /// assert_eq!(tree.node_count(), 1);
    /// assert_eq!(tree.predict(&[1.5])?, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn simplify(&mut self) -> usize {
        let before = self.nodes.len();

        // Bottom-up collapse into a fresh arena. Children are emitted
        // before their parent, then the parent decides whether to merge
        // them.
        fn rebuild(old: &[Node], id: NodeId, out: &mut Vec<Node>) -> NodeId {
            match &old[id] {
                Node::Leaf { class, samples } => {
                    out.push(Node::Leaf {
                        class: *class,
                        samples: *samples,
                    });
                    out.len() - 1
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let new_left = rebuild(old, *left, out);
                    let new_right = rebuild(old, *right, out);
                    if let (
                        Node::Leaf {
                            class: lc,
                            samples: ls,
                        },
                        Node::Leaf {
                            class: rc,
                            samples: rs,
                        },
                    ) = (&out[new_left], &out[new_right])
                    {
                        if lc == rc {
                            let merged = Node::Leaf {
                                class: *lc,
                                samples: ls + rs,
                            };
                            // Both children were appended last (right
                            // after left); drop them and emit the
                            // merged leaf.
                            out.truncate(new_left);
                            out.push(merged);
                            return out.len() - 1;
                        }
                    }
                    out.push(Node::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: new_left,
                        right: new_right,
                    });
                    out.len() - 1
                }
            }
        }

        // The rebuild above emits the root last; our convention puts the
        // root at index 0, so rebuild into a scratch arena and remap.
        let mut scratch = Vec::with_capacity(self.nodes.len());
        let root = rebuild(&self.nodes, 0, &mut scratch);
        // Remap ids so the root is node 0 (stable order otherwise).
        let mut order: Vec<NodeId> = Vec::with_capacity(scratch.len());
        order.push(root);
        let mut cursor = 0;
        while cursor < order.len() {
            if let Node::Split { left, right, .. } = &scratch[order[cursor]] {
                order.push(*left);
                order.push(*right);
            }
            cursor += 1;
        }
        let mut remap = vec![usize::MAX; scratch.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            remap[old_id] = new_id;
        }
        let mut nodes = vec![
            Node::Leaf {
                class: 0,
                samples: 0
            };
            order.len()
        ];
        for &old_id in &order {
            let new_id = remap[old_id];
            nodes[new_id] = match &scratch[old_id] {
                Node::Leaf { class, samples } => Node::Leaf {
                    class: *class,
                    samples: *samples,
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => Node::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: remap[*left],
                    right: remap[*right],
                },
            };
        }
        self.nodes = nodes;
        before - self.nodes.len()
    }

    /// Checks that the node list is a well-formed decision tree: every
    /// child index in range, no cycles, every node reachable from the
    /// root exactly once, every split's feature in range, and every
    /// threshold finite (a NaN threshold would silently route all
    /// traffic right, since `x <= NaN` is false for every `x`).
    ///
    /// `fit`, `from_compact_string` and the leaf editors only produce
    /// trees that pass; this is the shared gate for anything arriving
    /// from outside — deserialization, manifests, compilation.
    ///
    /// # Errors
    ///
    /// Returns the first structural offense as a typed [`TreeError`]:
    /// [`TreeError::ChildOutOfRange`], [`TreeError::NotATree`],
    /// [`TreeError::CycleDetected`], [`TreeError::UnreachableNode`],
    /// [`TreeError::FeatureOutOfRange`] or
    /// [`TreeError::NonFiniteThreshold`].
    pub fn validate_structure(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::BadConfig {
                what: "tree has no nodes",
            });
        }
        let mut in_degree = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                if *feature >= self.n_features {
                    return Err(TreeError::FeatureOutOfRange {
                        node: id,
                        feature: *feature,
                        n_features: self.n_features,
                    });
                }
                if !threshold.is_finite() {
                    return Err(TreeError::NonFiniteThreshold { node: id });
                }
                for &child in [left, right] {
                    if child >= self.nodes.len() {
                        return Err(TreeError::ChildOutOfRange {
                            node: id,
                            child,
                            nodes: self.nodes.len(),
                        });
                    }
                    if child == id || child == 0 {
                        return Err(TreeError::NotATree { node: child });
                    }
                    in_degree[child] += 1;
                }
            }
        }
        for (id, &count) in in_degree.iter().enumerate() {
            let expected = usize::from(id != 0);
            if count != expected {
                return Err(TreeError::NotATree { node: id });
            }
        }
        // Reachability from the root (in-degree alone admits disjoint
        // cycles, e.g. two orphan splits referencing each other).
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            if seen[id] {
                return Err(TreeError::CycleDetected { node: id });
            }
            seen[id] = true;
            if let Node::Split { left, right, .. } = &self.nodes[id] {
                stack.push(*left);
                stack.push(*right);
            }
        }
        if let Some(node) = seen.iter().position(|&s| !s) {
            return Err(TreeError::UnreachableNode { node });
        }
        Ok(())
    }

    /// Predicts the class of one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input.
    pub fn predict(&self, x: &[f64]) -> Result<usize, TreeError> {
        let leaf = self.apply(x)?;
        self.leaf_class(leaf)
    }

    /// Returns the leaf that handles `x` (scikit-learn's `apply`).
    ///
    /// Traversal is hardened against malformed in-memory trees: an
    /// out-of-range child index or feature index is reported as a typed
    /// error instead of a panic, and the step counter bounds descent at
    /// `node_count()` hops so a cyclic child graph errors out instead of
    /// looping forever. Well-formed trees (anything produced by `fit`,
    /// `from_compact_string` or the leaf editors) never hit these paths.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input, and
    /// [`TreeError::ChildOutOfRange`] / [`TreeError::FeatureOutOfRange`]
    /// / [`TreeError::CycleDetected`] for structurally corrupt trees.
    pub fn apply(&self, x: &[f64]) -> Result<LeafId, TreeError> {
        if x.len() != self.n_features {
            return Err(TreeError::BadInputWidth {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut id = 0;
        // A well-formed tree reaches a leaf in at most `nodes.len()`
        // hops (every hop visits a distinct node); more means a cycle.
        for _ in 0..=self.nodes.len() {
            match self.nodes.get(id) {
                None => {
                    return Err(TreeError::ChildOutOfRange {
                        node: id,
                        child: id,
                        nodes: self.nodes.len(),
                    })
                }
                Some(Node::Leaf { .. }) => return Ok(LeafId(id)),
                Some(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }) => {
                    let value = *x.get(*feature).ok_or(TreeError::FeatureOutOfRange {
                        node: id,
                        feature: *feature,
                        n_features: self.n_features,
                    })?;
                    id = if value <= *threshold { *left } else { *right };
                }
            }
        }
        Err(TreeError::CycleDetected { node: id })
    }

    /// The root-to-leaf node-id path for `x` (Algorithm 1, line 2 —
    /// "extract path from T₀ to Tᵢ").
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadInputWidth`] for a wrong-width input, and
    /// the same typed structural errors as [`DecisionTree::apply`] for
    /// corrupt trees.
    pub fn decision_path(&self, x: &[f64]) -> Result<Vec<NodeId>, TreeError> {
        if x.len() != self.n_features {
            return Err(TreeError::BadInputWidth {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut path = vec![0];
        let mut id = 0;
        for _ in 0..=self.nodes.len() {
            match self.nodes.get(id) {
                None => {
                    return Err(TreeError::ChildOutOfRange {
                        node: id,
                        child: id,
                        nodes: self.nodes.len(),
                    })
                }
                Some(Node::Leaf { .. }) => return Ok(path),
                Some(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }) => {
                    let value = *x.get(*feature).ok_or(TreeError::FeatureOutOfRange {
                        node: id,
                        feature: *feature,
                        n_features: self.n_features,
                    })?;
                    id = if value <= *threshold { *left } else { *right };
                    path.push(id);
                }
            }
        }
        Err(TreeError::CycleDetected { node: id })
    }

    /// Computes the input box of a leaf: the axis-aligned set of inputs
    /// whose decision path ends at this leaf (Algorithm 1, lines 3–5).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::BadNodeId`] / [`TreeError::NotALeaf`] for
    /// invalid ids.
    pub fn leaf_box(&self, leaf: LeafId) -> Result<InputBox, TreeError> {
        match self.node(leaf.0)? {
            Node::Leaf { .. } => {}
            Node::Split { .. } => return Err(TreeError::NotALeaf { id: leaf.0 }),
        }
        // Walk down from the root following the unique path to `leaf`,
        // shrinking the box at each rule. Parent pointers are implicit in
        // the arena, so precompute them.
        let path = self.path_to(leaf.0);
        let mut input_box = InputBox::unbounded(self.n_features);
        for pair in path.windows(2) {
            let (parent, child) = (pair[0], pair[1]);
            if let Node::Split {
                feature,
                threshold,
                left,
                ..
            } = &self.nodes[parent]
            {
                if child == *left {
                    input_box.side_mut(*feature).clamp_upper(*threshold);
                } else {
                    input_box.side_mut(*feature).clamp_lower(*threshold);
                }
            }
        }
        Ok(input_box)
    }

    /// All `(leaf, box)` pairs. The boxes partition the input space:
    /// every input is contained in exactly one of them.
    pub fn leaf_boxes(&self) -> Vec<(LeafId, InputBox)> {
        self.leaves()
            .into_iter()
            .map(|l| {
                let b = self.leaf_box(l).expect("leaf ids from leaves() are valid");
                (l, b)
            })
            .collect()
    }

    /// Root-to-node id path (inclusive).
    fn path_to(&self, target: NodeId) -> Vec<NodeId> {
        fn dfs(nodes: &[Node], id: NodeId, target: NodeId, path: &mut Vec<NodeId>) -> bool {
            path.push(id);
            if id == target {
                return true;
            }
            if let Node::Split { left, right, .. } = &nodes[id] {
                if dfs(nodes, *left, target, path) || dfs(nodes, *right, target, path) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut path = Vec::new();
        dfs(&self.nodes, 0, target, &mut path);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built tree:
    ///         [0] x0 <= 0.5
    ///        /            \
    ///   [1] leaf c0    [2] x1 <= 2.0
    ///                  /           \
    ///             [3] leaf c1   [4] leaf c2
    fn toy_tree() -> DecisionTree {
        DecisionTree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                Node::Leaf {
                    class: 0,
                    samples: 3,
                },
                Node::Split {
                    feature: 1,
                    threshold: 2.0,
                    left: 3,
                    right: 4,
                },
                Node::Leaf {
                    class: 1,
                    samples: 2,
                },
                Node::Leaf {
                    class: 2,
                    samples: 2,
                },
            ],
            n_features: 2,
            n_classes: 3,
        }
    }

    #[test]
    fn predict_routes_correctly() {
        let t = toy_tree();
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 1);
        assert_eq!(t.predict(&[1.0, 3.0]).unwrap(), 2);
        // Boundary goes left (≤).
        assert_eq!(t.predict(&[0.5, 9.0]).unwrap(), 0);
    }

    #[test]
    fn counts_and_depth() {
        let t = toy_tree();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn leaves_in_arena_order() {
        let t = toy_tree();
        let ids: Vec<usize> = t.leaves().iter().map(LeafId::node_id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn decision_path_matches_apply() {
        let t = toy_tree();
        let x = [1.0, 3.0];
        let path = t.decision_path(&x).unwrap();
        assert_eq!(path, vec![0, 2, 4]);
        assert_eq!(t.apply(&x).unwrap().node_id(), 4);
    }

    #[test]
    fn apply_reports_cycle_instead_of_hanging() {
        // Two splits referencing each other: traversal revisits forever
        // in the old code; now it must stop with a typed error.
        let t = DecisionTree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 1,
                },
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 0,
                    right: 0,
                },
            ],
            n_features: 1,
            n_classes: 2,
        };
        assert!(matches!(
            t.apply(&[0.5]),
            Err(TreeError::CycleDetected { .. })
        ));
        assert!(matches!(
            t.decision_path(&[0.5]),
            Err(TreeError::CycleDetected { .. })
        ));
        assert!(t.validate_structure().is_err());
    }

    #[test]
    fn apply_reports_bad_child_instead_of_panicking() {
        let t = DecisionTree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 9,
                },
                Node::Leaf {
                    class: 0,
                    samples: 1,
                },
            ],
            n_features: 1,
            n_classes: 2,
        };
        assert!(matches!(
            t.apply(&[5.0]),
            Err(TreeError::ChildOutOfRange { child: 9, .. })
        ));
        assert!(matches!(
            t.validate_structure(),
            Err(TreeError::ChildOutOfRange { child: 9, .. })
        ));
        // The in-range side still resolves.
        assert_eq!(t.apply(&[0.0]).unwrap().node_id(), 1);
    }

    #[test]
    fn apply_reports_bad_feature_instead_of_panicking() {
        let t = DecisionTree {
            nodes: vec![
                Node::Split {
                    feature: 7,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                Node::Leaf {
                    class: 0,
                    samples: 1,
                },
                Node::Leaf {
                    class: 1,
                    samples: 1,
                },
            ],
            n_features: 1,
            n_classes: 2,
        };
        assert!(matches!(
            t.apply(&[0.0]),
            Err(TreeError::FeatureOutOfRange { feature: 7, .. })
        ));
        assert!(matches!(
            t.validate_structure(),
            Err(TreeError::FeatureOutOfRange { feature: 7, .. })
        ));
    }

    #[test]
    fn validate_structure_accepts_well_formed_trees() {
        toy_tree().validate_structure().unwrap();
        let fitted = DecisionTree::fit(
            &[vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            &[0, 0, 1, 1],
            2,
            &TreeConfig::default(),
        )
        .unwrap();
        fitted.validate_structure().unwrap();
    }

    #[test]
    fn leaf_boxes_describe_reachability() {
        let t = toy_tree();
        // Leaf 3: x0 > 0.5, x1 <= 2.0.
        let b = t.leaf_box(LeafId(3)).unwrap();
        assert!(b.contains(&[0.6, 1.0]));
        assert!(!b.contains(&[0.4, 1.0]));
        assert!(!b.contains(&[0.6, 2.5]));
    }

    #[test]
    fn leaf_boxes_partition_points() {
        let t = toy_tree();
        let boxes = t.leaf_boxes();
        for x in [
            [0.0, 0.0],
            [0.5, 2.0],
            [0.6, 2.0],
            [0.6, 2.1],
            [-5.0, 100.0],
        ] {
            let containing: Vec<_> = boxes.iter().filter(|(_, b)| b.contains(&x)).collect();
            assert_eq!(containing.len(), 1, "point {x:?}");
            // And the containing box belongs to the leaf apply() finds.
            assert_eq!(containing[0].0, t.apply(&x).unwrap());
        }
    }

    #[test]
    fn set_leaf_class_edits() {
        let mut t = toy_tree();
        t.set_leaf_class(LeafId(3), 0).unwrap();
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 0);
    }

    #[test]
    fn set_leaf_class_validates() {
        let mut t = toy_tree();
        assert!(matches!(
            t.set_leaf_class(LeafId(3), 9),
            Err(TreeError::BadClass {
                class: 9,
                n_classes: 3
            })
        ));
        assert!(matches!(
            t.set_leaf_class(LeafId(0), 1),
            Err(TreeError::NotALeaf { id: 0 })
        ));
        assert!(matches!(
            t.set_leaf_class(LeafId(99), 1),
            Err(TreeError::BadNodeId { id: 99, .. })
        ));
    }

    #[test]
    fn wrong_width_rejected() {
        let t = toy_tree();
        assert!(matches!(
            t.predict(&[1.0]),
            Err(TreeError::BadInputWidth {
                expected: 2,
                got: 1
            })
        ));
        assert!(t.decision_path(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn split_leaf_reroutes_inputs() {
        let mut t = toy_tree();
        // Split leaf 1 (x0 <= 0.5) on x1 at 5.0: below → class 0 stays,
        // above → class 2.
        let (left, right) = t.split_leaf(LeafId(1), 1, 5.0, 0, 2).unwrap();
        assert_eq!(t.predict(&[0.0, 1.0]).unwrap(), 0);
        assert_eq!(t.predict(&[0.0, 9.0]).unwrap(), 2);
        assert_eq!(t.leaf_count(), 4);
        // The new leaves' boxes refine the old leaf's box.
        let lb = t.leaf_box(left).unwrap();
        let rb = t.leaf_box(right).unwrap();
        assert!(lb.contains(&[0.0, 1.0]));
        assert!(!lb.contains(&[0.0, 9.0]));
        assert!(rb.contains(&[0.0, 9.0]));
    }

    #[test]
    fn split_leaf_validates() {
        let mut t = toy_tree();
        assert!(matches!(
            t.split_leaf(LeafId(0), 0, 1.0, 0, 1),
            Err(TreeError::NotALeaf { id: 0 })
        ));
        assert!(matches!(
            t.split_leaf(LeafId(1), 9, 1.0, 0, 1),
            Err(TreeError::BadInputWidth { .. })
        ));
        assert!(matches!(
            t.split_leaf(LeafId(1), 0, 1.0, 99, 1),
            Err(TreeError::BadClass { class: 99, .. })
        ));
        assert!(t.split_leaf(LeafId(99), 0, 1.0, 0, 1).is_err());
    }

    #[test]
    fn simplify_collapses_same_class_siblings() {
        let mut t = toy_tree();
        // Make leaves 3 and 4 agree: their parent split becomes
        // redundant.
        t.set_leaf_class(LeafId(4), 1).unwrap();
        let removed = t.simplify();
        assert_eq!(removed, 2);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.leaf_count(), 2);
        // Behavior preserved.
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 1);
        assert_eq!(t.predict(&[1.0, 3.0]).unwrap(), 1);
    }

    #[test]
    fn simplify_cascades_to_fixed_point() {
        let mut t = toy_tree();
        for leaf in t.leaves() {
            t.set_leaf_class(leaf, 2).unwrap();
        }
        let removed = t.simplify();
        assert_eq!(removed, 4);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[9.0, 9.0]).unwrap(), 2);
        // Idempotent.
        assert_eq!(t.simplify(), 0);
    }

    #[test]
    fn simplify_preserves_sample_totals() {
        let mut t = toy_tree();
        let total_before: usize = t
            .leaves()
            .iter()
            .map(|&l| match t.node(l.node_id()).unwrap() {
                Node::Leaf { samples, .. } => *samples,
                _ => 0,
            })
            .sum();
        for leaf in t.leaves() {
            t.set_leaf_class(leaf, 0).unwrap();
        }
        t.simplify();
        let total_after: usize = t
            .leaves()
            .iter()
            .map(|&l| match t.node(l.node_id()).unwrap() {
                Node::Leaf { samples, .. } => *samples,
                _ => 0,
            })
            .sum();
        assert_eq!(total_before, total_after);
    }

    #[test]
    fn simplify_noop_on_distinct_leaves() {
        let mut t = toy_tree();
        let before = t.clone();
        assert_eq!(t.simplify(), 0);
        assert_eq!(t, before);
    }

    #[test]
    fn split_leaf_preserves_partition() {
        let mut t = toy_tree();
        let _ = t.split_leaf(LeafId(4), 0, 2.0, 2, 1).unwrap();
        let boxes = t.leaf_boxes();
        for x in [[0.0, 0.0], [1.0, 3.0], [3.0, 3.0], [0.6, 2.0]] {
            let hits = boxes.iter().filter(|(_, b)| b.contains(&x)).count();
            assert_eq!(hits, 1, "point {x:?}");
        }
    }

    #[test]
    fn config_validation() {
        assert!(TreeConfig::default().validate().is_ok());
        let bad = TreeConfig {
            min_samples_split: 1,
            ..TreeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TreeConfig {
            min_samples_leaf: 0,
            ..TreeConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
