//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for decision-tree operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TreeError {
    /// Fitting was invoked with no samples.
    EmptyDataset,
    /// Inputs and labels had different lengths.
    LengthMismatch {
        /// Number of input rows.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Input rows had inconsistent widths.
    RaggedInputs {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        got: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A label was `>= n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        n_classes: usize,
    },
    /// `n_classes` was zero.
    NoClasses,
    /// A feature value was NaN (trees cannot order NaNs).
    NanFeature {
        /// Row containing the NaN.
        row: usize,
        /// Feature column containing the NaN.
        feature: usize,
    },
    /// A prediction input had the wrong width.
    BadInputWidth {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        got: usize,
    },
    /// A node id did not identify the expected kind of node.
    NotALeaf {
        /// The offending node id.
        id: usize,
    },
    /// A node id was out of range.
    BadNodeId {
        /// The offending node id.
        id: usize,
        /// Number of nodes in the tree.
        nodes: usize,
    },
    /// A class id written to a leaf was `>= n_classes`.
    BadClass {
        /// The offending class.
        class: usize,
        /// The declared number of classes.
        n_classes: usize,
    },
    /// Tree configuration was invalid (e.g. `min_samples_split < 2`).
    BadConfig {
        /// Description of the problem.
        what: &'static str,
    },
    /// A split node referenced a child index `>= nodes.len()`.
    ChildOutOfRange {
        /// The split node holding the reference.
        node: usize,
        /// The out-of-range child index.
        child: usize,
        /// Number of nodes in the tree.
        nodes: usize,
    },
    /// Following child links revisited a node: the graph has a cycle
    /// and traversal would never terminate.
    CycleDetected {
        /// The first node seen twice.
        node: usize,
    },
    /// A node is not reachable from the root — the node list is not a
    /// single tree rooted at node 0.
    UnreachableNode {
        /// The unreachable node id.
        node: usize,
    },
    /// A node's in-degree is wrong (the root referenced, or a non-root
    /// node referenced zero or more than one time): the node graph is
    /// not a tree.
    NotATree {
        /// The node with the bad in-degree.
        node: usize,
    },
    /// A split node tested a feature `>= n_features`.
    FeatureOutOfRange {
        /// The offending split node.
        node: usize,
        /// The out-of-range feature index.
        feature: usize,
        /// The tree's declared feature count.
        n_features: usize,
    },
    /// A split threshold was NaN or infinite. `x <= NaN` is false for
    /// every `x`, so a non-finite threshold silently routes all traffic
    /// right — rejected at validation instead.
    NonFiniteThreshold {
        /// The offending split node.
        node: usize,
    },
    /// The tree exceeds a structural limit of the compiled flat layout
    /// (feature index beyond `u16`, class beyond 31 bits, …).
    TooLargeToCompile {
        /// Which limit was exceeded.
        what: &'static str,
    },
    /// The compiled kernel disagreed with the reference enum walk on an
    /// equivalence probe — the compiled form is not eligible to serve.
    KernelMismatch {
        /// Which compiled kernel disagreed (`"compiled"`, `"quantized"`).
        kernel: &'static str,
        /// Class predicted by the reference `DecisionTree` walk.
        expected: usize,
        /// Class predicted by the compiled kernel.
        got: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyDataset => write!(f, "cannot fit a tree on an empty dataset"),
            TreeError::LengthMismatch { inputs, labels } => {
                write!(f, "length mismatch: {inputs} inputs vs {labels} labels")
            }
            TreeError::RaggedInputs { expected, got, row } => {
                write!(f, "row {row} has width {got}, expected {expected}")
            }
            TreeError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            TreeError::NoClasses => write!(f, "n_classes must be at least 1"),
            TreeError::NanFeature { row, feature } => {
                write!(f, "NaN feature value at row {row}, feature {feature}")
            }
            TreeError::BadInputWidth { expected, got } => {
                write!(
                    f,
                    "input width {got} does not match tree's {expected} features"
                )
            }
            TreeError::NotALeaf { id } => write!(f, "node {id} is not a leaf"),
            TreeError::BadNodeId { id, nodes } => {
                write!(f, "node id {id} out of range ({nodes} nodes)")
            }
            TreeError::BadClass { class, n_classes } => {
                write!(f, "class {class} out of range for {n_classes} classes")
            }
            TreeError::BadConfig { what } => write!(f, "bad tree configuration: {what}"),
            TreeError::ChildOutOfRange { node, child, nodes } => {
                write!(
                    f,
                    "split node {node} references child {child}, out of range ({nodes} nodes)"
                )
            }
            TreeError::CycleDetected { node } => {
                write!(f, "node graph has a cycle through node {node}")
            }
            TreeError::UnreachableNode { node } => {
                write!(f, "node {node} is unreachable from the root")
            }
            TreeError::NotATree { node } => {
                write!(
                    f,
                    "node {node} has the wrong in-degree: node graph is not a tree rooted at 0"
                )
            }
            TreeError::FeatureOutOfRange {
                node,
                feature,
                n_features,
            } => {
                write!(
                    f,
                    "split node {node} tests feature {feature}, out of range \
                     ({n_features} features)"
                )
            }
            TreeError::NonFiniteThreshold { node } => {
                write!(f, "split node {node} has a non-finite threshold")
            }
            TreeError::TooLargeToCompile { what } => {
                write!(f, "tree exceeds compiled-layout limit: {what}")
            }
            TreeError::KernelMismatch {
                kernel,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{kernel} kernel predicted class {got} where the reference walk \
                     predicted {expected}"
                )
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            TreeError::EmptyDataset,
            TreeError::LengthMismatch {
                inputs: 1,
                labels: 2,
            },
            TreeError::RaggedInputs {
                expected: 3,
                got: 2,
                row: 5,
            },
            TreeError::LabelOutOfRange {
                label: 9,
                n_classes: 4,
            },
            TreeError::NoClasses,
            TreeError::NanFeature { row: 0, feature: 1 },
            TreeError::BadInputWidth {
                expected: 6,
                got: 5,
            },
            TreeError::NotALeaf { id: 0 },
            TreeError::BadNodeId { id: 10, nodes: 3 },
            TreeError::BadClass {
                class: 4,
                n_classes: 2,
            },
            TreeError::BadConfig {
                what: "min_samples_split < 2",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }
}
