//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for decision-tree operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TreeError {
    /// Fitting was invoked with no samples.
    EmptyDataset,
    /// Inputs and labels had different lengths.
    LengthMismatch {
        /// Number of input rows.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Input rows had inconsistent widths.
    RaggedInputs {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        got: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A label was `>= n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        n_classes: usize,
    },
    /// `n_classes` was zero.
    NoClasses,
    /// A feature value was NaN (trees cannot order NaNs).
    NanFeature {
        /// Row containing the NaN.
        row: usize,
        /// Feature column containing the NaN.
        feature: usize,
    },
    /// A prediction input had the wrong width.
    BadInputWidth {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        got: usize,
    },
    /// A node id did not identify the expected kind of node.
    NotALeaf {
        /// The offending node id.
        id: usize,
    },
    /// A node id was out of range.
    BadNodeId {
        /// The offending node id.
        id: usize,
        /// Number of nodes in the tree.
        nodes: usize,
    },
    /// A class id written to a leaf was `>= n_classes`.
    BadClass {
        /// The offending class.
        class: usize,
        /// The declared number of classes.
        n_classes: usize,
    },
    /// Tree configuration was invalid (e.g. `min_samples_split < 2`).
    BadConfig {
        /// Description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyDataset => write!(f, "cannot fit a tree on an empty dataset"),
            TreeError::LengthMismatch { inputs, labels } => {
                write!(f, "length mismatch: {inputs} inputs vs {labels} labels")
            }
            TreeError::RaggedInputs { expected, got, row } => {
                write!(f, "row {row} has width {got}, expected {expected}")
            }
            TreeError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            TreeError::NoClasses => write!(f, "n_classes must be at least 1"),
            TreeError::NanFeature { row, feature } => {
                write!(f, "NaN feature value at row {row}, feature {feature}")
            }
            TreeError::BadInputWidth { expected, got } => {
                write!(
                    f,
                    "input width {got} does not match tree's {expected} features"
                )
            }
            TreeError::NotALeaf { id } => write!(f, "node {id} is not a leaf"),
            TreeError::BadNodeId { id, nodes } => {
                write!(f, "node id {id} out of range ({nodes} nodes)")
            }
            TreeError::BadClass { class, n_classes } => {
                write!(f, "class {class} out of range for {n_classes} classes")
            }
            TreeError::BadConfig { what } => write!(f, "bad tree configuration: {what}"),
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            TreeError::EmptyDataset,
            TreeError::LengthMismatch {
                inputs: 1,
                labels: 2,
            },
            TreeError::RaggedInputs {
                expected: 3,
                got: 2,
                row: 5,
            },
            TreeError::LabelOutOfRange {
                label: 9,
                n_classes: 4,
            },
            TreeError::NoClasses,
            TreeError::NanFeature { row: 0, feature: 1 },
            TreeError::BadInputWidth {
                expected: 6,
                got: 5,
            },
            TreeError::NotALeaf { id: 0 },
            TreeError::BadNodeId { id: 10, nodes: 3 },
            TreeError::BadClass {
                class: 4,
                n_classes: 2,
            },
            TreeError::BadConfig {
                what: "min_samples_split < 2",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }
}
