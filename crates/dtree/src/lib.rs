//! From-scratch CART classification trees with structural introspection.
//!
//! The paper fits its policy with scikit-learn's CART ("we left the depth
//! unbounded, and the split threshold was set to its default value",
//! Section 4.1), then *verifies and edits* the tree: Algorithm 1 walks
//! every root-to-leaf path, intersects the axis-aligned "boxes" induced
//! by the decision rules, and rewrites the setpoints of leaves that can
//! be reached from unsafe regions. That workflow needs more than
//! `fit`/`predict` — it needs:
//!
//! * stable node identifiers and parent/child navigation,
//! * per-leaf **input boxes** ([`InputBox`]) describing exactly which
//!   subset of the input space a leaf handles,
//! * in-place **leaf editing** ([`DecisionTree::set_leaf_class`]), and
//! * human-readable export (the interpretability story of the paper).
//!
//! # Example
//!
//! ```
//! use hvac_dtree::{DecisionTree, TreeConfig};
//!
//! # fn main() -> Result<(), hvac_dtree::TreeError> {
//! // Two clusters in 1-D: x < 0.5 → class 0, x ≥ 0.5 → class 1.
//! let inputs = vec![vec![0.1], vec![0.2], vec![0.8], vec![0.9]];
//! let labels = vec![0, 0, 1, 1];
//! let tree = DecisionTree::fit(&inputs, &labels, 2, &TreeConfig::default())?;
//! assert_eq!(tree.predict(&[0.0])?, 0);
//! assert_eq!(tree.predict(&[1.0])?, 1);
//! // Every leaf knows its box:
//! for leaf in tree.leaves() {
//!     let b = tree.leaf_box(leaf)?;
//!     assert_eq!(b.dims(), 1);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod equivalence;
pub mod error;
pub mod export;
pub mod fit;
pub mod interval;
pub mod serialize;
pub mod tree;

pub use compiled::{sort_key, CompileOptions, CompiledTree, LEAF_BIT};
pub use equivalence::{prove_equivalence, EquivalenceProof};
pub use error::TreeError;
pub use interval::{InputBox, Interval};
pub use tree::{DecisionTree, LeafId, Node, NodeId, TreeConfig};
