//! Compact text serialization of fitted trees.
//!
//! The paper's procedure ends with "deploy it to the building edge
//! device" (Fig. 2): the verified decision tree must leave the training
//! machine. A decision tree needs no tensor runtime — this module
//! serializes one to a small, human-auditable text format that an edge
//! device (or a human reviewer) can load and check line by line:
//!
//! ```text
//! dtree v1
//! features 7
//! classes 90
//! nodes 5
//! S 0 0.5000000000000000 1 2
//! L 45 12
//! S 1 2.0000000000000000 3 4
//! L 30 7
//! L 61 5
//! ```
//!
//! `S <feature> <threshold> <left> <right>` is a decision node,
//! `L <class> <samples>` a leaf. Node ids are implicit line positions;
//! the root is node 0. Floats are printed with enough digits for exact
//! (`f64`-roundtrip) reconstruction.

use crate::error::TreeError;
use crate::tree::{DecisionTree, Node};

/// Current format version tag.
const FORMAT_HEADER: &str = "dtree v1";

impl DecisionTree {
    /// Serializes the tree to the compact text format.
    ///
    /// # Example
    ///
    /// ```
    /// use hvac_dtree::{DecisionTree, TreeConfig};
    ///
    /// # fn main() -> Result<(), hvac_dtree::TreeError> {
    /// let tree = DecisionTree::fit(
    ///     &[vec![0.0], vec![1.0]],
    ///     &[0, 1],
    ///     2,
    ///     &TreeConfig::default(),
    /// )?;
    /// let text = tree.to_compact_string();
    /// let restored = DecisionTree::from_compact_string(&text)?;
    /// assert_eq!(tree, restored);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        out.push_str(&format!("features {}\n", self.n_features()));
        out.push_str(&format!("classes {}\n", self.n_classes()));
        out.push_str(&format!("nodes {}\n", self.node_count()));
        for node in &self.nodes {
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // {:?} prints f64 with round-trip precision.
                    out.push_str(&format!("S {feature} {threshold:?} {left} {right}\n"));
                }
                Node::Leaf { class, samples } => {
                    out.push_str(&format!("L {class} {samples}\n"));
                }
            }
        }
        out
    }

    /// Parses a tree from the compact text format, validating structure
    /// (header, counts, index ranges, and that the node graph is a tree
    /// with the root at node 0).
    ///
    /// # Errors
    ///
    /// Malformed *text* (bad header, unparsable fields, count mismatch)
    /// is reported as [`TreeError::BadConfig`]; malformed *structure*
    /// comes back as the typed errors of
    /// [`DecisionTree::validate_structure`] — a cyclic child graph is
    /// [`TreeError::CycleDetected`], an out-of-range child index
    /// [`TreeError::ChildOutOfRange`], a NaN threshold
    /// [`TreeError::NonFiniteThreshold`], and so on. It never panics on
    /// malformed input.
    pub fn from_compact_string(text: &str) -> Result<Self, TreeError> {
        let bad = |what: &'static str| TreeError::BadConfig { what };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(FORMAT_HEADER) {
            return Err(bad("missing or unsupported format header"));
        }
        let mut parse_count = |key: &'static str, err: &'static str| -> Result<usize, TreeError> {
            let line = lines.next().ok_or(bad("truncated header"))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some(key) {
                return Err(bad(err));
            }
            parts.next().and_then(|v| v.parse().ok()).ok_or(bad(err))
        };
        let n_features = parse_count("features", "bad features line")?;
        let n_classes = parse_count("classes", "bad classes line")?;
        let n_nodes = parse_count("nodes", "bad nodes line")?;
        if n_features == 0 {
            return Err(bad("features must be positive"));
        }
        if n_classes == 0 {
            return Err(bad("classes must be positive"));
        }
        if n_nodes == 0 {
            return Err(bad("nodes must be positive"));
        }

        let mut nodes = Vec::with_capacity(n_nodes);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("S") => {
                    let feature: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad split feature"))?;
                    let threshold: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad split threshold"))?;
                    let left: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad left child"))?;
                    let right: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad right child"))?;
                    nodes.push(Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                }
                Some("L") => {
                    let class: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad leaf class"))?;
                    let samples: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(bad("bad leaf samples"))?;
                    if class >= n_classes {
                        return Err(TreeError::BadClass { class, n_classes });
                    }
                    nodes.push(Node::Leaf { class, samples });
                }
                _ => return Err(bad("unknown node tag")),
            }
        }
        if nodes.len() != n_nodes {
            return Err(bad("node count mismatch"));
        }

        // Structural validation — children in range, acyclic, every
        // node reachable exactly once, features in range, thresholds
        // finite — is the shared typed gate in `validate_structure`.
        let tree = DecisionTree {
            nodes,
            n_features,
            n_classes,
        };
        tree.validate_structure()?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use proptest::prelude::*;

    fn fitted(n: usize) -> DecisionTree {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i * 13 % 97) as f64 / 7.0, (i * 29 % 83) as f64])
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % 5).collect();
        DecisionTree::fit(&inputs, &labels, 5, &TreeConfig::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_tree() {
        let tree = fitted(60);
        let restored = DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
        assert_eq!(tree, restored);
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let tree = fitted(80);
        let restored = DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
        for i in 0..50 {
            let x = [i as f64 / 3.1, (i * 3) as f64];
            assert_eq!(tree.predict(&x).unwrap(), restored.predict(&x).unwrap());
        }
    }

    #[test]
    fn thresholds_roundtrip_exactly() {
        let tree = fitted(40);
        let restored = DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
        for (a, b) in tree.nodes.iter().zip(&restored.nodes) {
            if let (Node::Split { threshold: ta, .. }, Node::Split { threshold: tb, .. }) = (a, b) {
                assert_eq!(ta.to_bits(), tb.to_bits(), "threshold drifted");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "not a tree",
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\n",
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\nX 0 0\n",
            "dtree v1\nfeatures 0\nclasses 2\nnodes 1\nL 0 1\n",
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\nL 5 1\n", // class oob
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\nS 0 1.0 0 0\n", // self ref
            "dtree v1\nfeatures 2\nclasses 2\nnodes 2\nS 0 1.0 1 1\nL 0 1\n", // double ref
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\nS 9 1.0 1 2\n", // feature oob
            "dtree v1\nfeatures 2\nclasses 2\nnodes 1\nS 0 NaN 1 2\n", // NaN threshold
        ] {
            assert!(
                DecisionTree::from_compact_string(text).is_err(),
                "accepted: {text:?}"
            );
        }
    }

    #[test]
    fn rejects_cycles_and_orphans() {
        // Node 1 and 2 reference each other; in-degree is fine but the
        // graph has a cycle and node 3 is... actually build a subtle
        // case: root is a leaf, plus two nodes forming a cycle.
        let text = "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nL 0 1\nS 0 1.0 2 2\nL 1 1\n";
        assert!(DecisionTree::from_compact_string(text).is_err());
    }

    #[test]
    fn structural_offenses_are_typed() {
        use crate::error::TreeError;
        let cases: [(&str, TreeError); 4] = [
            (
                // Right child index 9 does not exist.
                "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nS 0 1.0 1 9\nL 0 1\nL 1 1\n",
                TreeError::ChildOutOfRange {
                    node: 0,
                    child: 9,
                    nodes: 3,
                },
            ),
            (
                // NaN threshold routes everything right — rejected.
                "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nS 0 NaN 1 2\nL 0 1\nL 1 1\n",
                TreeError::NonFiniteThreshold { node: 0 },
            ),
            (
                // Split tests feature 7 of a 1-feature tree.
                "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nS 7 1.0 1 2\nL 0 1\nL 1 1\n",
                TreeError::FeatureOutOfRange {
                    node: 0,
                    feature: 7,
                    n_features: 1,
                },
            ),
            (
                // Leaf class 5 of a 2-class tree.
                "dtree v1\nfeatures 1\nclasses 2\nnodes 1\nL 5 1\n",
                TreeError::BadClass {
                    class: 5,
                    n_classes: 2,
                },
            ),
        ];
        for (text, expected) in cases {
            assert_eq!(
                DecisionTree::from_compact_string(text).unwrap_err(),
                expected,
                "for {text:?}"
            );
        }
        // A disjoint two-node cycle hanging off a leaf root satisfies
        // per-node checks but is unreachable / has bad in-degree.
        let orphan_cycle = "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nL 0 1\nS 0 1.0 2 2\nL 1 1\n";
        assert!(matches!(
            DecisionTree::from_compact_string(orphan_cycle).unwrap_err(),
            TreeError::NotATree { .. } | TreeError::UnreachableNode { .. }
        ));
        // Infinite thresholds are rejected alongside NaN.
        let inf = "dtree v1\nfeatures 1\nclasses 2\nnodes 3\nS 0 inf 1 2\nL 0 1\nL 1 1\n";
        assert_eq!(
            DecisionTree::from_compact_string(inf).unwrap_err(),
            TreeError::NonFiniteThreshold { node: 0 },
        );
    }

    #[test]
    fn single_leaf_roundtrips() {
        let tree = DecisionTree::fit(&[vec![1.0]], &[0], 1, &TreeConfig::default()).unwrap();
        let restored = DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
        assert_eq!(restored.node_count(), 1);
        assert_eq!(restored.predict(&[5.0]).unwrap(), 0);
    }

    #[test]
    fn edited_tree_roundtrips() {
        let mut tree = fitted(40);
        let leaf = tree.leaves()[0];
        tree.set_leaf_class(leaf, 3).unwrap();
        let _ = tree.split_leaf(tree.leaves()[1], 1, 42.0, 0, 4).unwrap();
        let restored = DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
        assert_eq!(tree, restored);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_roundtrip_random_trees(
            xs in proptest::collection::vec(-50.0f64..50.0, 4..80),
            seed in 0usize..32,
        ) {
            let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
            let labels: Vec<usize> = xs.iter().enumerate().map(|(i, _)| (i + seed) % 4).collect();
            let tree = DecisionTree::fit(&inputs, &labels, 4, &TreeConfig::default()).unwrap();
            let restored =
                DecisionTree::from_compact_string(&tree.to_compact_string()).unwrap();
            prop_assert_eq!(&tree, &restored);
            for &x in xs.iter().take(10) {
                prop_assert_eq!(
                    tree.predict(&[x]).unwrap(),
                    restored.predict(&[x]).unwrap()
                );
            }
        }
    }
}
