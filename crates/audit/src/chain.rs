//! The append-only audit chain writer.
//!
//! [`AuditChain`] owns one chain file and appends records in strict
//! sequence: a genesis record binding the chain to the served policy
//! (and its certificate, when present), then decision / transition
//! records as they happen, a checkpoint every
//! [`ChainConfig::checkpoint_every`] records, and a `seal` record —
//! a final checkpoint — on graceful close or `Drop`.
//!
//! Durability follows the threat model, not just the crash model: a
//! chain is *evidence*, so by default every append is flushed through
//! the `BufWriter` to the OS ([`FlushPolicy::Always`]). That costs a
//! `write(2)` per record (measured in `BENCH_serve_audit.json`: p50
//! +29.6% on the serve path) but means a `SIGKILL`-ed serve loses at
//! most the decision in flight — never a suffix of acknowledged
//! decisions. Deployments that can tolerate a bounded loss window buy
//! the latency back with [`FlushPolicy::EveryN`] (flush after every
//! K appends) or [`FlushPolicy::IntervalMs`] (flush when the last
//! flush is older than T ms); [`FlushPolicy::OnSeal`] buffers
//! everything until seal/explicit flush and leans on the telemetry
//! panic-hook idiom: live chains register in a process-wide list that
//! [`flush_all_chains`] (wired into
//! [`hvac_telemetry::install_panic_flush_hook`]'s chained hook via
//! [`install_chain_flush_hook`]) drains on panic. Sealing flushes
//! under every policy.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};

use hvac_telemetry::json::parse;
use hvac_telemetry::{
    counter, histogram, process_elapsed_ns, Counter, Histogram, LATENCY_BOUNDS_NS,
};

use crate::hash::Sha256;
use crate::record::{
    split_line, ChainRecord, Payload, CHAIN_FORMAT, GENESIS_PREV_HASH, OBSERVATION_DIM,
};

/// The byte sink an [`AuditChain`] appends through. Ordinary chains
/// write straight to a [`std::fs::File`]; the chaos harness
/// (`hvac-faults::FaultyWriter`) threads deterministic write faults —
/// short writes, injected ENOSPC, fsync failures, latency spikes —
/// through the same seam via [`AuditChain::create_with_writer`].
pub trait ChainWriter: Write + Send + std::fmt::Debug {}

impl<W: Write + Send + std::fmt::Debug> ChainWriter for W {}

/// When buffered appends are pushed to the OS (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every append — the evidence-grade default; a kill
    /// loses at most the decision in flight.
    Always,
    /// Flush after every `K` appends (clamped to at least 1); a kill
    /// loses at most `K` acknowledged records.
    EveryN(u64),
    /// Flush when the previous flush is older than `T` ms at append
    /// time; a kill loses at most the records of the last `T` ms.
    IntervalMs(u64),
    /// Buffer until [`AuditChain::seal`] / [`AuditChain::flush`] /
    /// the panic hook.
    OnSeal,
}

impl FlushPolicy {
    /// Parses the `--audit-flush` CLI syntax: `always`, `every-n=K`,
    /// or `interval-ms=T`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed value.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "always" {
            return Ok(Self::Always);
        }
        if let Some(k) = text.strip_prefix("every-n=") {
            return match k.parse::<u64>() {
                Ok(k) if k > 0 => Ok(Self::EveryN(k)),
                _ => Err(format!("every-n wants a positive integer, got {k:?}")),
            };
        }
        if let Some(t) = text.strip_prefix("interval-ms=") {
            return match t.parse::<u64>() {
                Ok(t) => Ok(Self::IntervalMs(t)),
                _ => Err(format!("interval-ms wants an integer, got {t:?}")),
            };
        }
        Err(format!(
            "unknown flush policy {text:?}; expected always, every-n=K, or interval-ms=T"
        ))
    }
}

impl std::fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::EveryN(k) => write!(f, "every-n={k}"),
            Self::IntervalMs(t) => write!(f, "interval-ms={t}"),
            Self::OnSeal => write!(f, "on-seal"),
        }
    }
}

/// Tuning knobs for a chain writer.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// A checkpoint record is appended after every this-many records.
    pub checkpoint_every: u64,
    /// When appends reach the OS. Defaults to [`FlushPolicy::Always`].
    pub flush: FlushPolicy,
}

impl Default for ChainConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 256,
            flush: FlushPolicy::Always,
        }
    }
}

/// What [`AuditChain::recover`] found and did: the verified prefix it
/// resumed from, the torn bytes it truncated, and the identity the
/// chain's genesis record binds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the verified prefix (the resumed chain's length
    /// before the appended `recovery` record).
    pub prefix_records: u64,
    /// Torn trailing bytes truncated (0 when the file ended cleanly on
    /// a complete record).
    pub truncated_bytes: u64,
    /// Byte offset the file was truncated at (== the recovered file
    /// length before the `recovery` record was appended).
    pub truncated_at: u64,
    /// Whether the verified prefix ended in a `seal` record (a chain
    /// that shut down gracefully before the restart).
    pub was_sealed: bool,
    /// Policy hash the genesis record binds.
    pub policy_hash: String,
    /// Certificate id the genesis record binds (may be empty).
    pub certificate_id: String,
    /// Decision records in the verified prefix.
    pub decisions: u64,
    /// Transition records in the verified prefix.
    pub transitions: u64,
}

/// Mutable writer state behind the chain's mutex.
#[derive(Debug)]
struct Inner {
    out: BufWriter<Box<dyn ChainWriter>>,
    /// `seq` of the next record.
    next_seq: u64,
    /// `record_hash` of the last appended record.
    prev_hash: String,
    /// Running digest over the newline-joined `record_hash` values of
    /// every appended record; cloned (not consumed) at checkpoints.
    digest: Sha256,
    decisions: u64,
    transitions: u64,
    /// Content records appended since the last checkpoint.
    since_checkpoint: u64,
    /// Appends since the last flush ([`FlushPolicy::EveryN`] state).
    since_flush: u64,
    /// Process time of the last flush ([`FlushPolicy::IntervalMs`]).
    last_flush_ns: u64,
    sealed: bool,
}

/// An open, append-only decision chain.
///
/// Thread-safe: appends serialise on an internal mutex (the serve path
/// already holds its policy mutex per decision, so this adds no new
/// contention shape).
#[derive(Debug)]
pub struct AuditChain {
    inner: Mutex<Inner>,
    config: ChainConfig,
    records_total: Counter,
    checkpoints_total: Counter,
    append_ns: Histogram,
}

impl AuditChain {
    /// Creates `path` (truncating any existing file) and writes the
    /// genesis record binding the chain to `policy_hash` /
    /// `certificate_id` (pass `""` when serving uncertified).
    ///
    /// # Errors
    ///
    /// Propagates file creation or write failures.
    pub fn create(
        path: &Path,
        policy_hash: &str,
        certificate_id: &str,
        config: ChainConfig,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Self::create_with_writer(Box::new(file), policy_hash, certificate_id, config)
    }

    /// [`AuditChain::create`] over an arbitrary byte sink instead of a
    /// freshly-truncated file — the seam the chaos harness uses to
    /// thread deterministic write faults (`hvac-faults::FaultyWriter`)
    /// through every append.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the genesis append.
    pub fn create_with_writer(
        writer: Box<dyn ChainWriter>,
        policy_hash: &str,
        certificate_id: &str,
        config: ChainConfig,
    ) -> std::io::Result<Self> {
        let chain = Self {
            inner: Mutex::new(Inner {
                out: BufWriter::new(writer),
                next_seq: 0,
                prev_hash: GENESIS_PREV_HASH.to_string(),
                digest: Sha256::new(),
                decisions: 0,
                transitions: 0,
                since_checkpoint: 0,
                since_flush: 0,
                last_flush_ns: process_elapsed_ns(),
                sealed: false,
            }),
            config,
            records_total: counter("audit.records"),
            checkpoints_total: counter("audit.checkpoints"),
            append_ns: histogram("audit.append.ns", LATENCY_BOUNDS_NS),
        };
        {
            let mut inner = chain.inner.lock().expect("audit chain mutex poisoned");
            chain.append_locked(
                &mut inner,
                "genesis",
                Payload::Genesis {
                    format: CHAIN_FORMAT.to_string(),
                    policy_hash: policy_hash.to_string(),
                    certificate_id: certificate_id.to_string(),
                    crate_version: env!("CARGO_PKG_VERSION").to_string(),
                },
            )?;
        }
        Ok(chain)
    }

    /// Re-opens an existing chain for appending after a crash.
    ///
    /// Scans the file once (O(chain length)), verifying the
    /// hash-linked prefix record by record. A *torn tail* — trailing
    /// bytes after the last complete line, the well-defined signature
    /// of a write cut mid-record (the length-prefixed JSONL format
    /// never emits a raw newline inside a record, so the torn fragment
    /// can never masquerade as a complete line) — is truncated
    /// **atomically**: the verified prefix is written to a scratch
    /// file and renamed over the original, so a second crash mid-
    /// recovery leaves either the old file or the repaired one, never
    /// a half-truncated hybrid. Appending then resumes after a
    /// hash-covered `recovery` record carrying the verified prefix
    /// digest and the truncated byte count.
    ///
    /// A prefix ending in a `seal` record (graceful shutdown before
    /// the restart) is resumed the same way; the `recovery` record
    /// reopens the chain.
    ///
    /// # Errors
    ///
    /// * the file is missing, empty, or carries no complete genesis
    ///   record — create a fresh chain instead;
    /// * any *complete* line fails to parse, hash, or link — that is
    ///   interior corruption (tampering), which recovery refuses to
    ///   paper over; the error names the byte offset;
    /// * truncation or re-open I/O failures.
    pub fn recover(path: &Path, config: ChainConfig) -> std::io::Result<(Self, RecoveryReport)> {
        let corrupt = |offset: usize, seq: u64, why: &str| {
            std::io::Error::other(format!(
                "cannot recover {}: complete record at byte offset {offset} (seq {seq}) is \
                 corrupt: {why} — interior damage is tampering, not a torn tail",
                path.display()
            ))
        };
        let bytes = std::fs::read(path)?;
        let mut offset = 0usize;
        let mut next_seq = 0u64;
        let mut prev_hash = GENESIS_PREV_HASH.to_string();
        let mut digest = Sha256::new();
        let mut decisions = 0u64;
        let mut transitions = 0u64;
        let mut since_checkpoint = 0u64;
        let mut policy_hash = String::new();
        let mut certificate_id = String::new();
        let mut last_kind = String::new();
        while offset < bytes.len() {
            // A line is only *complete* with its newline; anything
            // after the last newline is the torn tail.
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = std::str::from_utf8(&bytes[offset..offset + nl])
                .map_err(|_| corrupt(offset, next_seq, "non-UTF-8 bytes"))?;
            let record = split_line(line)
                .and_then(|json| parse(json).map_err(|e| format!("bad JSON: {e:?}")))
                .and_then(|v| ChainRecord::from_json(&v))
                .map_err(|why| corrupt(offset, next_seq, &why))?;
            if !record.hash_is_consistent() {
                return Err(corrupt(
                    offset,
                    next_seq,
                    "stored record_hash does not match its canonical bytes",
                ));
            }
            if record.seq != next_seq || record.prev_hash != prev_hash {
                return Err(corrupt(
                    offset,
                    next_seq,
                    "seq/prev_hash does not link to the verified prefix",
                ));
            }
            if next_seq == 0 {
                let Payload::Genesis {
                    policy_hash: ph,
                    certificate_id: cid,
                    ..
                } = &record.payload
                else {
                    return Err(corrupt(offset, 0, "first record is not a genesis record"));
                };
                policy_hash = ph.clone();
                certificate_id = cid.clone();
            }
            match &record.payload {
                Payload::Decision { .. } => decisions += 1,
                Payload::Transition { .. } => transitions += 1,
                _ => {}
            }
            // Mirror the writer's checkpoint-cadence accounting.
            match record.kind.as_str() {
                "checkpoint" => since_checkpoint = 0,
                "seal" => {}
                _ => since_checkpoint += 1,
            }
            digest.update(record.record_hash.as_bytes());
            digest.update(b"\n");
            prev_hash = record.record_hash.clone();
            last_kind = record.kind;
            next_seq += 1;
            offset += nl + 1;
        }
        if next_seq == 0 {
            return Err(std::io::Error::other(format!(
                "cannot recover {}: no complete genesis record — create a fresh chain instead",
                path.display()
            )));
        }
        let truncated_bytes = (bytes.len() - offset) as u64;
        if truncated_bytes > 0 {
            // Atomic truncation: scratch + rename, never truncate in
            // place.
            let scratch = path.with_extension(format!("recover-scratch.{}", std::process::id()));
            {
                let mut out = std::fs::File::create(&scratch)?;
                out.write_all(&bytes[..offset])?;
                out.sync_all()?;
            }
            std::fs::rename(&scratch, path)?;
        }
        let report = RecoveryReport {
            prefix_records: next_seq,
            truncated_bytes,
            truncated_at: offset as u64,
            was_sealed: last_kind == "seal",
            policy_hash,
            certificate_id,
            decisions,
            transitions,
        };
        let prefix_digest = digest.clone().finalize_hex();
        let file = OpenOptions::new().append(true).open(path)?;
        let chain = Self {
            inner: Mutex::new(Inner {
                out: BufWriter::new(Box::new(file)),
                next_seq,
                prev_hash,
                digest,
                decisions,
                transitions,
                since_checkpoint,
                since_flush: 0,
                last_flush_ns: process_elapsed_ns(),
                sealed: false,
            }),
            config,
            records_total: counter("audit.records"),
            checkpoints_total: counter("audit.checkpoints"),
            append_ns: histogram("audit.append.ns", LATENCY_BOUNDS_NS),
        };
        {
            let mut inner = chain.inner.lock().expect("audit chain mutex poisoned");
            chain.append_locked(
                &mut inner,
                "recovery",
                Payload::Recovery {
                    prefix_records: report.prefix_records,
                    prefix_digest,
                    truncated_bytes,
                },
            )?;
            // The recovery record is evidence of the resume: it
            // reaches the OS under every flush policy.
            inner.out.flush()?;
        }
        counter("audit.recoveries").incr();
        Ok((chain, report))
    }

    /// Appends one decision record.
    ///
    /// # Errors
    ///
    /// Propagates write failures; appending to a sealed chain is an
    /// error of kind [`std::io::ErrorKind::Other`].
    pub fn append_decision(
        &self,
        observation: [f64; OBSERVATION_DIM],
        heating: u64,
        cooling: u64,
        action_index: u64,
        guard_state: &str,
        trace_id: Option<&str>,
    ) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("audit chain mutex poisoned");
        inner.decisions += 1;
        self.append_locked(
            &mut inner,
            "decision",
            Payload::Decision {
                observation,
                heating,
                cooling,
                action_index,
                guard_state: guard_state.to_string(),
                trace_id: trace_id.map(str::to_string),
            },
        )
    }

    /// Appends one guard degradation-ladder transition record.
    ///
    /// # Errors
    ///
    /// Propagates write failures (see [`AuditChain::append_decision`]).
    pub fn append_transition(&self, from: &str, to: &str) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("audit chain mutex poisoned");
        inner.transitions += 1;
        self.append_locked(
            &mut inner,
            "transition",
            Payload::Transition {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Writes the final `seal` checkpoint and flushes. Idempotent;
    /// called automatically on `Drop`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn seal(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("audit chain mutex poisoned");
        if inner.sealed {
            return Ok(());
        }
        let payload = Self::checkpoint_payload(&inner);
        self.append_locked(&mut inner, "seal", payload)?;
        inner.sealed = true;
        // The seal reaches disk under every flush policy.
        inner.out.flush()
    }

    /// Flushes buffered appends to the OS without sealing.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("audit chain mutex poisoned");
        inner.out.flush()?;
        inner.since_flush = 0;
        inner.last_flush_ns = process_elapsed_ns();
        Ok(())
    }

    /// Records appended so far (genesis and checkpoints included).
    pub fn len(&self) -> u64 {
        self.inner
            .lock()
            .expect("audit chain mutex poisoned")
            .next_seq
    }

    /// Always `false`: a chain carries its genesis record from birth.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn checkpoint_payload(inner: &Inner) -> Payload {
        Payload::Checkpoint {
            records: inner.next_seq,
            decisions: inner.decisions,
            transitions: inner.transitions,
            digest: inner.digest.clone().finalize_hex(),
        }
    }

    /// The one append path: builds, hashes, writes, and advances the
    /// running state; inserts a checkpoint when the cadence comes due.
    fn append_locked(
        &self,
        inner: &mut Inner,
        kind: &str,
        payload: Payload,
    ) -> std::io::Result<()> {
        if inner.sealed {
            return Err(std::io::Error::other("audit chain already sealed"));
        }
        let start = process_elapsed_ns();
        let record = ChainRecord::new(
            kind,
            inner.next_seq,
            start,
            inner.prev_hash.clone(),
            payload,
        );
        inner.out.write_all(record.to_line().as_bytes())?;
        inner.digest.update(record.record_hash.as_bytes());
        inner.digest.update(b"\n");
        inner.prev_hash = record.record_hash;
        inner.next_seq += 1;
        inner.since_flush += 1;
        let due = match self.config.flush {
            FlushPolicy::Always => true,
            FlushPolicy::EveryN(k) => inner.since_flush >= k.max(1),
            FlushPolicy::IntervalMs(t) => {
                process_elapsed_ns().saturating_sub(inner.last_flush_ns) >= t * 1_000_000
            }
            FlushPolicy::OnSeal => false,
        };
        if due {
            inner.out.flush()?;
            inner.since_flush = 0;
            inner.last_flush_ns = process_elapsed_ns();
        }
        self.records_total.incr();
        self.append_ns
            .record(process_elapsed_ns().saturating_sub(start));
        // Cadence counts *content* records (checkpoints and the seal
        // don't reset-and-count themselves).
        match kind {
            "checkpoint" => inner.since_checkpoint = 0,
            "seal" => {}
            _ => inner.since_checkpoint += 1,
        }
        if kind != "seal"
            && kind != "checkpoint"
            && self.config.checkpoint_every > 0
            && inner.since_checkpoint >= self.config.checkpoint_every
        {
            let payload = Self::checkpoint_payload(inner);
            self.checkpoints_total.incr();
            self.append_locked(inner, "checkpoint", payload)?;
        }
        Ok(())
    }
}

impl Drop for AuditChain {
    fn drop(&mut self) {
        // Best effort: a failing disk at drop time must not panic the
        // unwinding thread.
        let _ = self.seal();
    }
}

/// Process-wide list of live chains, for the panic flush hook.
fn live_chains() -> &'static Mutex<Vec<Weak<AuditChain>>> {
    static LIVE: std::sync::OnceLock<Mutex<Vec<Weak<AuditChain>>>> = std::sync::OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `chain` for panic-time flushing and returns it unchanged.
pub fn register_chain(chain: Arc<AuditChain>) -> Arc<AuditChain> {
    let mut live = live_chains().lock().expect("live chain list poisoned");
    live.retain(|weak| weak.strong_count() > 0);
    live.push(Arc::downgrade(&chain));
    chain
}

/// Flushes (not seals) every registered, still-live chain. Called from
/// the panic hook; safe to call any time.
pub fn flush_all_chains() {
    if let Ok(live) = live_chains().lock() {
        for weak in live.iter() {
            if let Some(chain) = weak.upgrade() {
                let _ = chain.flush();
            }
        }
    }
}

/// Installs a panic hook that flushes all registered chains (then the
/// telemetry sinks, via the chained previous hook). Idempotent.
pub fn install_chain_flush_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    hvac_telemetry::install_panic_flush_hook();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        flush_all_chains();
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::split_line;
    use hvac_telemetry::json::parse;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hvac-audit-chain-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("chain.jsonl")
    }

    fn read_records(path: &Path) -> Vec<ChainRecord> {
        let text = std::fs::read_to_string(path).unwrap();
        text.lines()
            .map(|line| ChainRecord::from_json(&parse(split_line(line).unwrap()).unwrap()).unwrap())
            .collect()
    }

    fn obs(seed: f64) -> [f64; OBSERVATION_DIM] {
        [seed, 1.0, 50.0, 4.0, 100.0, 2.0, 12.0]
    }

    #[test]
    fn chain_links_checkpoints_and_seals() {
        let path = temp_path("links");
        let chain = AuditChain::create(
            &path,
            &"aa".repeat(32),
            "",
            ChainConfig {
                checkpoint_every: 4,
                flush: FlushPolicy::OnSeal,
            },
        )
        .unwrap();
        for i in 0..10u64 {
            chain
                .append_decision(obs(i as f64), 20, 26, i, "normal", Some("req-ln"))
                .unwrap();
        }
        chain.append_transition("normal", "hold").unwrap();
        chain.seal().unwrap();
        let records = read_records(&path);

        // Genesis first, seal last, hash-linked throughout.
        assert_eq!(records[0].kind, "genesis");
        assert_eq!(records[0].prev_hash, GENESIS_PREV_HASH);
        assert_eq!(records.last().unwrap().kind, "seal");
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
            assert!(record.hash_is_consistent(), "record {i}");
            if i > 0 {
                assert_eq!(record.prev_hash, records[i - 1].record_hash, "link {i}");
            }
        }

        // Cadence: a checkpoint after every 4 content records.
        let checkpoint_seqs: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == "checkpoint")
            .map(|r| r.seq)
            .collect();
        // Content records (genesis + 10 decisions + 1 transition) in
        // groups of 4: checkpoints land after seqs 0-3, 5-8, 10-13.
        assert_eq!(checkpoint_seqs, vec![4, 9, 14]);

        // Checkpoint digests replay from the prefix hashes.
        for record in &records {
            if let Payload::Checkpoint {
                records: count,
                digest,
                ..
            } = &record.payload
            {
                let mut h = Sha256::new();
                for prior in &records[..*count as usize] {
                    h.update(prior.record_hash.as_bytes());
                    h.update(b"\n");
                }
                assert_eq!(&h.finalize_hex(), digest, "digest at seq {}", record.seq);
            }
        }

        // Seal counters cover the whole chain.
        let Payload::Checkpoint {
            decisions,
            transitions,
            ..
        } = &records.last().unwrap().payload
        else {
            panic!("seal payload");
        };
        assert_eq!((*decisions, *transitions), (10, 1));
    }

    #[test]
    fn seal_is_idempotent_and_blocks_further_appends() {
        let path = temp_path("sealed");
        let chain = AuditChain::create(&path, "ph", "cid", ChainConfig::default()).unwrap();
        chain.seal().unwrap();
        chain.seal().unwrap();
        assert!(chain
            .append_decision(obs(0.0), 20, 26, 0, "normal", None)
            .is_err());
        let records = read_records(&path);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].kind, "seal");
    }

    #[test]
    fn drop_seals_the_chain() {
        let path = temp_path("drop");
        {
            let chain = AuditChain::create(&path, "ph", "", ChainConfig::default()).unwrap();
            chain
                .append_decision(obs(1.0), 21, 27, 3, "normal", None)
                .unwrap();
        }
        let records = read_records(&path);
        assert_eq!(records.last().unwrap().kind, "seal");
    }

    #[test]
    fn durable_appends_are_visible_without_seal() {
        let path = temp_path("durable");
        let chain = AuditChain::create(
            &path,
            "ph",
            "",
            ChainConfig {
                checkpoint_every: 256,
                flush: FlushPolicy::Always,
            },
        )
        .unwrap();
        chain
            .append_decision(obs(2.0), 22, 28, 5, "normal", Some("req-durable"))
            .unwrap();
        // Read back while the chain is still open: both records are on
        // disk, every line complete.
        let records = read_records(&path);
        assert_eq!(records.len(), 2);
        drop(chain);
    }

    #[test]
    fn flush_policy_parses_cli_syntax() {
        assert_eq!(FlushPolicy::parse("always"), Ok(FlushPolicy::Always));
        assert_eq!(
            FlushPolicy::parse("every-n=64"),
            Ok(FlushPolicy::EveryN(64))
        );
        assert_eq!(
            FlushPolicy::parse("interval-ms=25"),
            Ok(FlushPolicy::IntervalMs(25))
        );
        assert!(FlushPolicy::parse("every-n=0").is_err());
        assert!(FlushPolicy::parse("every-n=x").is_err());
        assert!(FlushPolicy::parse("sometimes").is_err());
        assert_eq!(FlushPolicy::EveryN(8).to_string(), "every-n=8");
    }

    #[test]
    fn every_n_flushes_in_batches_and_seal_flushes_the_rest() {
        let path = temp_path("everyn");
        let chain = AuditChain::create(
            &path,
            "ph",
            "",
            ChainConfig {
                checkpoint_every: 1_000,
                flush: FlushPolicy::EveryN(4),
            },
        )
        .unwrap();
        // Genesis is append 1 of the first batch of 4; two decisions
        // leave the batch incomplete, so only complete lines on disk
        // come from ... nothing yet (batch not full).
        chain
            .append_decision(obs(0.0), 20, 26, 0, "normal", None)
            .unwrap();
        chain
            .append_decision(obs(1.0), 20, 26, 1, "normal", None)
            .unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().is_empty());
        // Fourth append completes the batch → everything visible.
        chain
            .append_decision(obs(2.0), 20, 26, 2, "normal", None)
            .unwrap();
        assert_eq!(read_records(&path).len(), 4);
        // One more buffered append, then seal pushes it out with the
        // seal record regardless of batch state.
        chain
            .append_decision(obs(3.0), 20, 26, 3, "normal", None)
            .unwrap();
        chain.seal().unwrap();
        let records = read_records(&path);
        assert_eq!(records.len(), 6);
        assert_eq!(records.last().unwrap().kind, "seal");
    }

    #[test]
    fn interval_policy_flushes_once_the_clock_passes() {
        let path = temp_path("interval");
        let chain = AuditChain::create(
            &path,
            "ph",
            "",
            ChainConfig {
                checkpoint_every: 1_000,
                flush: FlushPolicy::IntervalMs(20),
            },
        )
        .unwrap();
        chain
            .append_decision(obs(0.0), 20, 26, 0, "normal", None)
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // The next append notices the interval elapsed and flushes.
        chain
            .append_decision(obs(1.0), 20, 26, 1, "normal", None)
            .unwrap();
        assert_eq!(read_records(&path).len(), 3);
        drop(chain);
    }

    /// A chain whose process died without running Drop: every append
    /// durable, no seal. `mem::forget` skips the Drop-seal exactly like
    /// a kill -9 skips destructors.
    fn crashed_chain(name: &str, appends: u64) -> std::path::PathBuf {
        let path = temp_path(name);
        let chain = AuditChain::create(
            &path,
            &"aa".repeat(32),
            "",
            ChainConfig {
                checkpoint_every: 4,
                flush: FlushPolicy::Always,
            },
        )
        .unwrap();
        for i in 0..appends {
            chain
                .append_decision(obs(i as f64), 20, 26, i, "normal", None)
                .unwrap();
        }
        std::mem::forget(chain);
        path
    }

    #[test]
    fn recover_resumes_an_unsealed_chain_with_one_recovery_record() {
        let path = crashed_chain("recover-clean", 6);
        let before = read_records(&path);
        let (chain, report) = AuditChain::recover(&path, ChainConfig::default()).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.prefix_records, before.len() as u64);
        assert_eq!(report.decisions, 6);
        assert!(!report.was_sealed);
        assert_eq!(report.policy_hash, "aa".repeat(32));
        chain
            .append_decision(obs(9.0), 21, 27, 1, "normal", None)
            .unwrap();
        chain.seal().unwrap();

        let records = read_records(&path);
        let recovery = &records[before.len()];
        assert_eq!(recovery.kind, "recovery");
        assert_eq!(recovery.prev_hash, before.last().unwrap().record_hash);
        let Payload::Recovery {
            prefix_records,
            prefix_digest,
            truncated_bytes,
        } = &recovery.payload
        else {
            panic!("recovery payload");
        };
        assert_eq!(*prefix_records, before.len() as u64);
        assert_eq!(*truncated_bytes, 0);
        let mut h = Sha256::new();
        for prior in &before {
            h.update(prior.record_hash.as_bytes());
            h.update(b"\n");
        }
        assert_eq!(prefix_digest, &h.finalize_hex());

        // The whole resumed chain audits green, recovery check included.
        let text = std::fs::read_to_string(&path).unwrap();
        let report = crate::audit::Auditor::new(&text).run();
        assert!(report.passed(), "{report}");
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.failure_class(), "none");
    }

    #[test]
    fn recover_truncates_exactly_the_torn_tail() {
        use std::io::Write as _;
        let path = crashed_chain("recover-torn", 5);
        let clean = std::fs::read(&path).unwrap();
        // Simulate a write cut mid-record: a fragment with no newline.
        let torn = b"187 {\"kind\":\"decision\",\"seq\":9";
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(torn).unwrap();
        }

        let (chain, report) = AuditChain::recover(&path, ChainConfig::default()).unwrap();
        assert_eq!(report.truncated_bytes, torn.len() as u64);
        assert_eq!(report.truncated_at, clean.len() as u64);
        chain.seal().unwrap();

        // The verified prefix survived byte-for-byte.
        let repaired = std::fs::read(&path).unwrap();
        assert_eq!(&repaired[..clean.len()], &clean[..]);
        let text = std::fs::read_to_string(&path).unwrap();
        let audited = crate::audit::Auditor::new(&text).run();
        assert!(audited.passed(), "{audited}");
        assert_eq!(audited.recoveries, 1);
    }

    #[test]
    fn recover_refuses_interior_corruption() {
        let path = crashed_chain("recover-interior", 5);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte well inside the second line.
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 10;
        bytes[second_line] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = AuditChain::recover(&path, ChainConfig::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("byte offset"), "{msg}");
        assert!(msg.contains("tampering"), "{msg}");
        // The file was not modified: refusal is read-only.
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
    }

    #[test]
    fn recover_resumes_after_a_graceful_seal() {
        let path = temp_path("recover-sealed");
        {
            let chain = AuditChain::create(&path, "ph", "cid", ChainConfig::default()).unwrap();
            chain
                .append_decision(obs(1.0), 20, 26, 0, "normal", None)
                .unwrap();
            chain.seal().unwrap();
        }
        let (chain, report) = AuditChain::recover(&path, ChainConfig::default()).unwrap();
        assert!(report.was_sealed);
        assert_eq!(report.certificate_id, "cid");
        chain
            .append_decision(obs(2.0), 20, 26, 1, "normal", None)
            .unwrap();
        chain.seal().unwrap();
        let records = read_records(&path);
        // …seal, recovery, decision, seal — one unbroken hash chain.
        let kinds: Vec<&str> = records.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["genesis", "decision", "seal", "recovery", "decision", "seal"]
        );
        for (i, record) in records.iter().enumerate().skip(1) {
            assert_eq!(record.prev_hash, records[i - 1].record_hash, "link {i}");
        }
    }

    #[test]
    fn recover_refuses_an_empty_or_missing_file() {
        let path = temp_path("recover-empty");
        std::fs::write(&path, b"").unwrap();
        assert!(AuditChain::recover(&path, ChainConfig::default()).is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(AuditChain::recover(&path, ChainConfig::default()).is_err());
    }

    #[test]
    fn flush_all_chains_drains_registered_buffers() {
        let path = temp_path("panicflush");
        let chain = register_chain(Arc::new(
            AuditChain::create(
                &path,
                "ph",
                "",
                ChainConfig {
                    checkpoint_every: 256,
                    flush: FlushPolicy::OnSeal,
                },
            )
            .unwrap(),
        ));
        chain
            .append_decision(obs(3.0), 23, 29, 6, "normal", None)
            .unwrap();
        flush_all_chains();
        let records = read_records(&path);
        assert_eq!(records.len(), 2);
        drop(chain);
    }
}
