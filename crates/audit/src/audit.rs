//! The offline chain verifier behind `veri_hvac audit`.
//!
//! [`Auditor`] re-walks a chain file from cold bytes: it re-parses
//! every length-prefixed line, recomputes every record hash, re-links
//! `prev_hash`/`seq`, replays every checkpoint digest from the prefix,
//! checks the seal, and — when handed the policy and certificate —
//! re-derives the policy hash and certificate id and re-executes a
//! sample of decisions through the in-process policy to confirm
//! bit-identical actions.
//!
//! Each concern is one named [`AuditCheck`] so the report maps straight
//! onto the tamper classes the chain is designed to catch:
//!
//! | tamper                      | failing check                |
//! |-----------------------------|------------------------------|
//! | bit-flip in a record        | `lines` or `record_hashes`   |
//! | record deleted              | `chain_links`                |
//! | records reordered           | `chain_links`                |
//! | truncation after checkpoint | `seal`                       |
//! | wrong policy / certificate  | `certificate` / `policy`     |
//! | swapped/tampered compiled kernel | `compiled`              |
//! | crash-torn final record     | `lines` (class `torn_tail`)  |
//! | forged recovery record      | `recovery`                   |
//!
//! A *torn tail* — trailing bytes with no final newline, the signature
//! of a write cut by a crash — is reported separately from deliberate
//! tampering: the failure names the byte offset and the report's
//! [`AuditReport::failure_class`] says `torn_tail` rather than
//! `bad_hash`, because the remedy (truncate and resume via
//! `AuditChain::recover`) is safe there and unsafe everywhere else.

use hvac_control::DtPolicy;
use hvac_dtree::{prove_equivalence, CompileOptions, CompiledTree};
use hvac_env::Observation;
use hvac_env::Policy;
use hvac_telemetry::json::{parse, ObjectWriter};
use hvac_verify::Certificate;

use crate::hash::{sha256_hex, Sha256};
use crate::record::{
    split_line, ChainRecord, Payload, CHAIN_FORMAT, CHAIN_FORMAT_V1, CHAIN_FORMAT_V2,
    GENESIS_PREV_HASH,
};

/// Tuning for an audit pass.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Accept a chain with no final `seal` record. A serve process
    /// killed by signal cannot run destructors, so its (durable) chain
    /// ends mid-stream; pass `true` to audit such chains. Truncation
    /// after the last checkpoint is then *not* detectable — that is the
    /// documented trade-off, not a bug.
    pub allow_unsealed: bool,
    /// Maximum decision records to re-execute through the policy
    /// (stride-sampled across the chain; `0` skips replay).
    pub replay_sample: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            allow_unsealed: false,
            replay_sample: 64,
        }
    }
}

/// One named pass/fail line of an audit report.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditCheck {
    /// Stable check name (`lines`, `record_hashes`, `chain_links`,
    /// `genesis`, `checkpoints`, `recovery`, `seal`, `certificate`,
    /// `policy`, `compiled`, `replay`).
    pub name: &'static str,
    /// Whether the check passed.
    pub passed: bool,
    /// Human-readable outcome; on failure, points at the first
    /// offending line/record.
    pub detail: String,
}

/// The structured outcome of one audit pass.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Every check that ran, in execution order.
    pub checks: Vec<AuditCheck>,
    /// Total records parsed.
    pub records: u64,
    /// Decision records seen.
    pub decisions: u64,
    /// Transition records seen.
    pub transitions: u64,
    /// Checkpoint records seen (seal excluded).
    pub checkpoints: u64,
    /// Recovery records seen (crash-resume points).
    pub recoveries: u64,
    /// Byte offset of a crash-torn tail (trailing bytes with no final
    /// newline), when the chain has one.
    pub torn_tail_offset: Option<u64>,
    /// Decisions re-executed through the policy.
    pub replayed: u64,
    /// Whether the chain ends in a `seal` record.
    pub sealed: bool,
    /// Policy hash the genesis record claims.
    pub policy_hash: String,
    /// Certificate id the genesis record claims (may be empty).
    pub certificate_id: String,
}

impl AuditReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The first failing check, if any.
    pub fn first_failure(&self) -> Option<&AuditCheck> {
        self.checks.iter().find(|c| !c.passed)
    }

    /// Coarse classification of the outcome for machine consumers:
    /// `none` (all checks passed), `torn_tail` (the only line damage is
    /// a crash-torn final record — safe to repair with
    /// `AuditChain::recover`), `bad_hash` (a stored record hash does
    /// not recompute — tampering), or the name of the first failing
    /// check otherwise.
    pub fn failure_class(&self) -> &'static str {
        let Some(first) = self.first_failure() else {
            return "none";
        };
        match first.name {
            "lines" if self.torn_tail_offset.is_some() && first.detail.starts_with("torn tail") => {
                "torn_tail"
            }
            "record_hashes" => "bad_hash",
            name => name,
        }
    }

    /// Serializes the report as JSON (one object per check).
    pub fn to_json_string(&self) -> String {
        let mut o = ObjectWriter::new();
        o.bool_field("passed", self.passed());
        o.str_field("failure_class", self.failure_class());
        o.u64_field("records", self.records);
        o.u64_field("decisions", self.decisions);
        o.u64_field("transitions", self.transitions);
        o.u64_field("checkpoints", self.checkpoints);
        o.u64_field("recoveries", self.recoveries);
        if let Some(offset) = self.torn_tail_offset {
            o.u64_field("torn_tail_offset", offset);
        }
        o.u64_field("replayed", self.replayed);
        o.bool_field("sealed", self.sealed);
        o.str_field("policy_hash", &self.policy_hash);
        o.str_field("certificate_id", &self.certificate_id);
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{}:{}:{}",
                    c.name,
                    if c.passed { "pass" } else { "FAIL" },
                    c.detail
                )
            })
            .collect();
        o.str_array_field("checks", &checks);
        o.finish()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audit: {} ({} records: {} decisions, {} transitions, {} checkpoints; replayed {})",
            if self.passed() { "PASS" } else { "FAIL" },
            self.records,
            self.decisions,
            self.transitions,
            self.checkpoints,
            self.replayed,
        )?;
        for check in &self.checks {
            writeln!(
                f,
                "  [{}] {:<14} {}",
                if check.passed { "ok" } else { "XX" },
                check.name,
                check.detail
            )?;
        }
        Ok(())
    }
}

/// An audit pass over one chain file's text.
#[derive(Debug)]
pub struct Auditor<'a> {
    text: &'a str,
    options: AuditOptions,
    policy: Option<&'a DtPolicy>,
    certificate: Option<&'a Certificate>,
    compiled_artifact: Option<&'a str>,
}

impl<'a> Auditor<'a> {
    /// An auditor over the raw chain file contents.
    pub fn new(text: &'a str) -> Self {
        Self {
            text,
            options: AuditOptions::default(),
            policy: None,
            certificate: None,
            compiled_artifact: None,
        }
    }

    /// Overrides the default [`AuditOptions`].
    #[must_use]
    pub fn options(mut self, options: AuditOptions) -> Self {
        self.options = options;
        self
    }

    /// Supplies the served policy, enabling the `policy` binding check
    /// and decision replay.
    #[must_use]
    pub fn with_policy(mut self, policy: &'a DtPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Supplies the verification certificate, enabling the
    /// `certificate` binding checks.
    #[must_use]
    pub fn with_certificate(mut self, certificate: &'a Certificate) -> Self {
        self.certificate = Some(certificate);
        self
    }

    /// Supplies the compiled flat-kernel artifact (`ctree v1` text),
    /// enabling the `compiled` binding check: the artifact must hash to
    /// the certificate's `compiled_hash`, parse, and — when the policy
    /// is also supplied — re-prove exhaustively equivalent to the tree
    /// it claims to compile.
    #[must_use]
    pub fn with_compiled_artifact(mut self, artifact: &'a str) -> Self {
        self.compiled_artifact = Some(artifact);
        self
    }

    /// Runs every applicable check and returns the structured report.
    pub fn run(self) -> AuditReport {
        let mut checks = Vec::new();
        let mut records = Vec::new();

        // 1. lines: every line is complete and parses back to a record.
        // Trailing bytes without a final newline are a crash-torn tail
        // (a record is written in one line; only `\n` completes it),
        // classified apart from interior damage so the operator knows
        // truncation-and-resume is the safe remedy.
        let (complete, torn_tail_offset) = if self.text.is_empty() || self.text.ends_with('\n') {
            (self.text, None)
        } else {
            match self.text.rfind('\n') {
                Some(nl) => (&self.text[..=nl], Some(nl as u64 + 1)),
                None => ("", Some(0u64)),
            }
        };
        let mut line_failure: Option<String> = None;
        let mut offset = 0usize;
        for (i, line) in complete.lines().enumerate() {
            let parsed = split_line(line)
                .and_then(|json| parse(json).map_err(|e| format!("bad JSON: {e:?}")))
                .and_then(|v| ChainRecord::from_json(&v));
            match parsed {
                Ok(record) => records.push(record),
                Err(why) => {
                    line_failure = Some(format!("line {} (byte offset {offset}): {why}", i + 1));
                    break;
                }
            }
            offset += line.len() + 1;
        }
        if line_failure.is_none() {
            if let Some(at) = torn_tail_offset {
                line_failure = Some(format!(
                    "torn tail: {} trailing bytes at byte offset {at} are not a complete \
                     newline-terminated record (crash mid-write) — truncate and resume with \
                     `veri_hvac audit --recover` (AuditChain::recover)",
                    self.text.len() as u64 - at
                ));
            }
        }
        checks.push(AuditCheck {
            name: "lines",
            passed: line_failure.is_none() && !records.is_empty(),
            detail: match &line_failure {
                Some(why) => why.clone(),
                None if records.is_empty() => "chain file is empty".to_string(),
                None => format!("{} complete, well-formed lines", records.len()),
            },
        });

        // 2. record_hashes: every stored hash recomputes from the
        // canonical bytes.
        let first_bad_hash = records.iter().find(|r| !r.hash_is_consistent());
        checks.push(AuditCheck {
            name: "record_hashes",
            passed: first_bad_hash.is_none(),
            detail: match first_bad_hash {
                Some(r) => format!(
                    "record seq {}: stored record_hash does not match its canonical bytes \
                     (bit-flip or field edit)",
                    r.seq
                ),
                None => format!("{} hashes recomputed and matched", records.len()),
            },
        });

        // 3. chain_links: seqs count 0.. and every prev_hash matches
        // its predecessor's record_hash.
        let mut link_failure: Option<String> = None;
        for (i, record) in records.iter().enumerate() {
            if record.seq != i as u64 {
                link_failure = Some(format!(
                    "position {i}: seq jumps to {} (record deleted, inserted, or reordered)",
                    record.seq
                ));
                break;
            }
            let expected_prev = if i == 0 {
                GENESIS_PREV_HASH
            } else {
                &records[i - 1].record_hash
            };
            if record.prev_hash != expected_prev {
                link_failure = Some(format!(
                    "record seq {}: prev_hash does not match record {} \
                     (record deleted, inserted, or reordered)",
                    record.seq,
                    i.saturating_sub(1)
                ));
                break;
            }
        }
        checks.push(AuditCheck {
            name: "chain_links",
            passed: link_failure.is_none(),
            detail: link_failure.unwrap_or_else(|| "prev_hash / seq links intact".to_string()),
        });

        // 4. genesis: first record declares the expected format.
        let genesis = records.first();
        let (policy_hash, certificate_id, genesis_detail) = match genesis.map(|r| &r.payload) {
            Some(Payload::Genesis {
                format,
                policy_hash,
                certificate_id,
                ..
            }) if format == CHAIN_FORMAT
                || format == CHAIN_FORMAT_V1
                || format == CHAIN_FORMAT_V2 =>
            {
                (
                    policy_hash.clone(),
                    certificate_id.clone(),
                    Ok(format!("format {format:?}")),
                )
            }
            Some(Payload::Genesis { format, .. }) => (
                String::new(),
                String::new(),
                Err(format!("unknown chain format {format:?}")),
            ),
            Some(_) => (
                String::new(),
                String::new(),
                Err("first record is not a genesis record".to_string()),
            ),
            None => (String::new(), String::new(), Err("no records".to_string())),
        };
        checks.push(AuditCheck {
            name: "genesis",
            passed: genesis_detail.is_ok(),
            detail: genesis_detail.clone().unwrap_or_else(|e| e),
        });

        // 5. checkpoints: every embedded digest and counter snapshot
        // replays exactly from the prefix.
        let mut decisions = 0u64;
        let mut transitions = 0u64;
        let mut checkpoints = 0u64;
        let mut recoveries = 0u64;
        let mut running = Sha256::new();
        let mut checkpoint_failure: Option<String> = None;
        let mut recovery_failure: Option<String> = None;
        for record in &records {
            // 5b. recovery: every resume point's prefix digest must
            // replay from the verified prefix hashes, so a forged
            // recovery record (covering for deleted evidence) cannot
            // pass. `truncated_bytes` is attested, not re-checkable —
            // the torn bytes are gone by construction.
            if let Payload::Recovery {
                prefix_records,
                prefix_digest,
                ..
            } = &record.payload
            {
                recoveries += 1;
                if recovery_failure.is_none() {
                    let replayed = running.clone().finalize_hex();
                    if *prefix_records != record.seq {
                        recovery_failure = Some(format!(
                            "recovery seq {}: claims a {prefix_records}-record verified prefix, \
                             but its position implies {}",
                            record.seq, record.seq
                        ));
                    } else if &replayed != prefix_digest {
                        recovery_failure = Some(format!(
                            "recovery seq {}: prefix digest does not replay from the {} verified \
                             prefix hashes",
                            record.seq, record.seq
                        ));
                    }
                }
            }
            if let Payload::Checkpoint {
                records: claimed_records,
                decisions: claimed_decisions,
                transitions: claimed_transitions,
                digest,
            } = &record.payload
            {
                if record.kind == "checkpoint" {
                    checkpoints += 1;
                }
                if checkpoint_failure.is_none() {
                    let replayed = running.clone().finalize_hex();
                    if *claimed_records != record.seq
                        || *claimed_decisions != decisions
                        || *claimed_transitions != transitions
                    {
                        checkpoint_failure = Some(format!(
                            "{} seq {}: counters claim {}/{}/{} records/decisions/transitions, \
                             prefix has {}/{decisions}/{transitions}",
                            record.kind,
                            record.seq,
                            claimed_records,
                            claimed_decisions,
                            claimed_transitions,
                            record.seq,
                        ));
                    } else if &replayed != digest {
                        checkpoint_failure = Some(format!(
                            "{} seq {}: embedded digest does not replay from the prefix hashes",
                            record.kind, record.seq
                        ));
                    }
                }
            }
            match &record.payload {
                Payload::Decision { .. } => decisions += 1,
                Payload::Transition { .. } => transitions += 1,
                _ => {}
            }
            running.update(record.record_hash.as_bytes());
            running.update(b"\n");
        }
        checks.push(AuditCheck {
            name: "checkpoints",
            passed: checkpoint_failure.is_none(),
            detail: checkpoint_failure.unwrap_or_else(|| {
                format!("{checkpoints} checkpoint digests replayed from prefix hashes")
            }),
        });

        // 6. recovery: every crash-resume point attests the prefix it
        // verified (digest replayed above, alongside checkpoints).
        checks.push(AuditCheck {
            name: "recovery",
            passed: recovery_failure.is_none(),
            detail: recovery_failure.unwrap_or_else(|| {
                if recoveries == 0 {
                    "no recovery records".to_string()
                } else {
                    format!("{recoveries} recovery prefix digest(s) replayed from prefix hashes")
                }
            }),
        });

        // 7. seal: the chain ends with its closing checkpoint, so a
        // truncated suffix (past the last periodic checkpoint) cannot
        // pass silently.
        let sealed = records.last().is_some_and(|r| r.kind == "seal");
        checks.push(AuditCheck {
            name: "seal",
            passed: sealed || self.options.allow_unsealed,
            detail: if sealed {
                "chain ends in a seal record".to_string()
            } else if self.options.allow_unsealed {
                "no seal record (tolerated by --allow-unsealed; \
                 truncation after the last checkpoint is undetectable)"
                    .to_string()
            } else {
                format!(
                    "chain does not end in a seal record (last kind {:?}) — \
                     truncated, or serve was killed before sealing",
                    records.last().map_or("none", |r| r.kind.as_str())
                )
            },
        });

        // 8. certificate: the id commits to the canonical bytes, and
        // both ends of the binding (genesis, policy) agree.
        if let Some(cert) = self.certificate {
            let recomputed = sha256_hex(cert.canonical_string().as_bytes());
            let detail = if recomputed != cert.certificate_id {
                Err(format!(
                    "certificate_id {} does not hash its canonical bytes (expected {recomputed})",
                    cert.certificate_id
                ))
            } else if cert.certificate_id != certificate_id {
                Err(format!(
                    "chain genesis stamps certificate {certificate_id:.12}… but the supplied \
                     certificate is {:.12}…",
                    cert.certificate_id
                ))
            } else if cert.policy_hash != policy_hash {
                Err(format!(
                    "certificate covers policy {:.12}… but the chain genesis claims {:.12}…",
                    cert.policy_hash, policy_hash
                ))
            } else {
                Ok("certificate id and policy binding verified".to_string())
            };
            checks.push(AuditCheck {
                name: "certificate",
                passed: detail.is_ok(),
                detail: detail.unwrap_or_else(|e| e),
            });
        }

        // 9. policy: the supplied policy bytes hash to what the chain
        // (and certificate, if any) claim was served.
        if let Some(policy) = self.policy {
            let actual = sha256_hex(policy.to_compact_string().as_bytes());
            let expected = self
                .certificate
                .map_or(policy_hash.as_str(), |c| c.policy_hash.as_str());
            let passed = actual == expected && actual == policy_hash;
            checks.push(AuditCheck {
                name: "policy",
                passed,
                detail: if passed {
                    format!("policy file hashes to {actual:.12}… as recorded")
                } else {
                    format!(
                        "policy file hashes to {actual:.12}… but the chain/certificate \
                         claim {expected:.12}…"
                    )
                },
            });
        }

        // 10. compiled: the fast-path artifact is the one the
        // certificate committed to, and it still computes the same
        // function as the verified tree. Hash binding catches a swapped
        // or edited file; the re-proof catches the (paranoid) case of a
        // hash-colliding-by-construction certificate: even a *bound*
        // artifact must re-prove equivalent when the policy is present.
        if let Some(artifact) = self.compiled_artifact {
            let actual = sha256_hex(artifact.as_bytes());
            let mut detail: Result<String, String> = Ok(format!(
                "compiled artifact hashes to {actual:.12}… and parses"
            ));
            if let Some(cert) = self.certificate {
                if cert.compiled_hash.is_empty() {
                    detail = Err(
                        "a compiled artifact was supplied but the certificate carries no \
                         compiled_hash — nothing binds this kernel to the verified policy"
                            .to_string(),
                    );
                } else if cert.compiled_hash != actual {
                    detail = Err(format!(
                        "compiled artifact hashes to {actual:.12}… but the certificate \
                         committed {:.12}… (artifact swapped or tampered)",
                        cert.compiled_hash
                    ));
                }
            }
            if detail.is_ok() {
                match CompiledTree::from_compact_string(artifact, CompileOptions::default()) {
                    Err(e) => detail = Err(format!("compiled artifact does not parse: {e}")),
                    Ok(kernel) => {
                        if let Some(policy) = self.policy {
                            match prove_equivalence(policy.tree(), &kernel) {
                                Ok(proof) => {
                                    detail = Ok(format!(
                                        "artifact hash bound; equivalence re-proven over \
                                         {} probes across {} leaf boxes",
                                        proof.probes, proof.leaves
                                    ));
                                }
                                Err(e) => {
                                    detail = Err(format!(
                                        "compiled kernel is NOT equivalent to the policy \
                                         tree: {e}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            checks.push(AuditCheck {
                name: "compiled",
                passed: detail.is_ok(),
                detail: match detail {
                    Ok(d) | Err(d) => d,
                },
            });
        }

        // 11. replay: a stride sample of guard-normal decisions, re-run
        // through the policy, must reproduce bit-identical actions.
        // (Degraded-rung actions depend on guard state accumulated
        // across the whole session, so only `normal` rows are
        // deterministic functions of the stored observation.)
        let mut replayed = 0u64;
        if let Some(policy) = self.policy {
            let mut fresh = policy.clone();
            let normal: Vec<&ChainRecord> = records
                .iter()
                .filter(|r| {
                    matches!(&r.payload, Payload::Decision { guard_state, .. }
                        if guard_state == "normal")
                })
                .collect();
            // `replay_sample == 0` disables the check entirely.
            if let Some(per_sample) = normal.len().checked_div(self.options.replay_sample) {
                let stride = per_sample.max(1);
                let mut replay_failure: Option<String> = None;
                for record in normal.iter().step_by(stride) {
                    let Payload::Decision {
                        observation,
                        heating,
                        cooling,
                        action_index,
                        ..
                    } = &record.payload
                    else {
                        continue;
                    };
                    let action = fresh.decide(&Observation::from_vector(observation));
                    let index = fresh.action_space().index_of(action) as u64;
                    replayed += 1;
                    if action.heating() as u64 != *heating
                        || action.cooling() as u64 != *cooling
                        || index != *action_index
                    {
                        replay_failure = Some(format!(
                            "decision seq {}: policy replays ({}, {}) index {index}, \
                             chain recorded ({heating}, {cooling}) index {action_index}",
                            record.seq,
                            action.heating(),
                            action.cooling(),
                        ));
                        break;
                    }
                }
                checks.push(AuditCheck {
                    name: "replay",
                    passed: replay_failure.is_none(),
                    detail: replay_failure.unwrap_or_else(|| {
                        format!(
                            "{replayed} of {} guard-normal decisions replayed bit-identically",
                            normal.len()
                        )
                    }),
                });
            }
        }

        AuditReport {
            checks,
            records: records.len() as u64,
            decisions,
            transitions,
            checkpoints,
            recoveries,
            torn_tail_offset,
            replayed,
            sealed,
            policy_hash,
            certificate_id,
        }
    }
}
