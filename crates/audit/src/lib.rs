//! Tamper-evident audit chains and verification certificates.
//!
//! The paper argues a verified decision-tree policy is trustworthy
//! enough to deploy; this crate makes the deployment *prove it*.
//! Three pieces close the loop from Algorithm 1 to the building floor:
//!
//! * **Decision chains** ([`AuditChain`]): an append-only,
//!   length-prefixed JSONL log where every served decision, guard
//!   transition, and periodic checkpoint is SHA-256 hash-chained to its
//!   predecessor. Bit-flips, deletions, insertions, reordering, and
//!   truncation are all detectable offline from the file alone.
//! * **Certificates** ([`hvac_verify::Certificate`], ids computed
//!   here): `veri_hvac verify` binds the verification outcome to the
//!   exact policy bytes; the serve path stamps the certificate id into
//!   the chain's genesis record.
//! * **The offline verifier** ([`Auditor`]): re-walks a chain from cold
//!   bytes, recomputes every hash, replays checkpoint digests, checks
//!   the certificate binding, and re-executes sampled decisions through
//!   the in-process policy for bit-identical actions.
//!
//! See `DESIGN.md` §4f for the chain format and threat model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chain;
pub mod hash;
pub mod record;

pub use audit::{AuditCheck, AuditOptions, AuditReport, Auditor};
pub use chain::{
    flush_all_chains, install_chain_flush_hook, register_chain, AuditChain, ChainConfig,
    ChainWriter, FlushPolicy, RecoveryReport,
};
pub use hash::{sha256, sha256_hex, Sha256};
pub use record::{
    ChainRecord, Payload, CHAIN_FORMAT, CHAIN_FORMAT_V1, CHAIN_FORMAT_V2, GENESIS_PREV_HASH,
    OBSERVATION_DIM,
};

use hvac_verify::Certificate;

/// SHA-256 (hex) of a policy's canonical compact encoding — the
/// "policy content hash" certificates and chain genesis records bind
/// to.
pub fn policy_hash(policy: &hvac_control::DtPolicy) -> String {
    sha256_hex(policy.to_compact_string().as_bytes())
}

/// SHA-256 (hex) of a compiled flat-kernel artifact (`ctree v1` text) —
/// the hash a certificate's `compiled_hash` field commits to, binding
/// chain → certificate → compiled artifact.
pub fn compiled_hash(artifact: &str) -> String {
    sha256_hex(artifact.as_bytes())
}

/// Computes a certificate's id (SHA-256 of its canonical bytes) and
/// returns the certificate bound to it.
pub fn bind_certificate(certificate: Certificate) -> Certificate {
    let id = sha256_hex(certificate.canonical_string().as_bytes());
    certificate.with_id(id)
}

/// Whether `certificate.certificate_id` really is the hash of the
/// certificate's canonical bytes.
pub fn certificate_id_is_consistent(certificate: &Certificate) -> bool {
    sha256_hex(certificate.canonical_string().as_bytes()) == certificate.certificate_id
}
