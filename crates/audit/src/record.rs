//! The audit-chain record schema and its canonical encoding.
//!
//! Every record in a decision chain is one length-prefixed JSONL line:
//!
//! ```text
//! <len> <json>\n
//! ```
//!
//! where `<len>` is the decimal byte length of `<json>` — a torn or
//! truncated tail line is detected by the prefix alone, before any
//! hashing. The JSON object carries, in fixed field order:
//!
//! * `kind` — `genesis`, `decision`, `transition`, `checkpoint`, or
//!   `seal`;
//! * `seq` — monotonic record index starting at 0 (the genesis);
//! * `t_ns` — monotonic process timestamp of the append;
//! * `prev_hash` — the `record_hash` of the previous record (64 zeros
//!   for the genesis);
//! * the kind-specific payload fields;
//! * `record_hash` — SHA-256 over the *canonical encoding*: the exact
//!   JSON text of all preceding fields (everything up to but excluding
//!   `record_hash` itself).
//!
//! Because [`ObjectWriter`](hvac_telemetry::json::ObjectWriter) writes
//! floats with `{:?}` round-trip precision and our parser reads them
//! back bit-exactly, a verifier can parse a line, rebuild the canonical
//! text from the parsed fields, and recompute the hash — any bit flip
//! in any field (including the metadata) breaks it.

use crate::hash::sha256_hex;
use hvac_telemetry::json::{JsonValue, ObjectWriter};

/// Chain format tag embedded in every genesis record. Bump on any
/// change to the record schema or canonical encoding. v2 added the
/// optional `trace_id` field to decision records; v3 added the
/// `recovery` record kind written when [`crate::AuditChain::recover`]
/// resumes a crashed chain. Older records are encoded byte-identically
/// under every tag (new fields/kinds are additive), so v1 and v2
/// chains still re-hash exactly and verifiers accept all three tags.
pub const CHAIN_FORMAT: &str = "decision_chain v3";

/// The PR 6 format tag: decision records without `trace_id`.
pub const CHAIN_FORMAT_V1: &str = "decision_chain v1";

/// The PR 7 format tag: `trace_id` on decision records, no `recovery`
/// kind.
pub const CHAIN_FORMAT_V2: &str = "decision_chain v2";

/// `prev_hash` of the genesis record: 64 zeros (no predecessor).
pub const GENESIS_PREV_HASH: &str =
    "0000000000000000000000000000000000000000000000000000000000000000";

/// Observation width recorded per decision (mirrors
/// [`hvac_env::POLICY_INPUT_DIM`]).
pub const OBSERVATION_DIM: usize = hvac_env::POLICY_INPUT_DIM;

/// Kind-specific payload of one chain record.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// First record of every chain: binds the chain to the served
    /// policy bytes and (when present) its verification certificate.
    Genesis {
        /// [`CHAIN_FORMAT`].
        format: String,
        /// SHA-256 of the served policy's canonical compact encoding.
        policy_hash: String,
        /// Certificate id of the policy's verification certificate
        /// (empty when serving without one).
        certificate_id: String,
        /// Version of the crate that wrote the chain.
        crate_version: String,
    },
    /// One served decision.
    Decision {
        /// The observation vector the guard was handed (feature order
        /// of `hvac_env::space::feature::NAMES`).
        observation: [f64; OBSERVATION_DIM],
        /// Chosen heating setpoint (°C).
        heating: u64,
        /// Chosen cooling setpoint (°C).
        cooling: u64,
        /// Index of the action in the policy's action space.
        action_index: u64,
        /// Guard rung that produced the action (`normal`, `hold`,
        /// `fallback`, `fail_safe`).
        guard_state: String,
        /// Trace id of the serving request (format v2; `None` when
        /// parsed from a v1 chain, in which case the field is absent
        /// from the canonical text so v1 hashes still verify).
        trace_id: Option<String>,
    },
    /// A guard degradation-ladder transition (PR 4's rungs made
    /// auditable).
    Transition {
        /// Rung before the decision.
        from: String,
        /// Rung after the decision.
        to: String,
    },
    /// Written by [`crate::AuditChain::recover`] when appending
    /// resumes on an existing chain after a crash: attests the exact
    /// verified prefix (its record count and running digest) and how
    /// many torn trailing bytes were truncated to reach it. Format v3.
    Recovery {
        /// Records in the verified prefix (== this record's `seq`).
        prefix_records: u64,
        /// SHA-256 over the newline-joined `record_hash` values of the
        /// verified prefix — the same digest a checkpoint at this seq
        /// would embed.
        prefix_digest: String,
        /// Bytes of torn (partial final record) tail truncated before
        /// resuming. `0` when the file ended on a complete record.
        truncated_bytes: u64,
    },
    /// Periodic running-state snapshot; also the `seal` written on
    /// graceful shutdown.
    Checkpoint {
        /// Records in the chain *before* this one (== this `seq`).
        records: u64,
        /// Decision records so far.
        decisions: u64,
        /// Transition records so far.
        transitions: u64,
        /// SHA-256 over the newline-joined `record_hash` values of
        /// every preceding record.
        digest: String,
    },
}

impl Payload {
    /// The `kind` discriminator string.
    pub fn kind(&self, sealed: bool) -> &'static str {
        match self {
            Payload::Genesis { .. } => "genesis",
            Payload::Decision { .. } => "decision",
            Payload::Transition { .. } => "transition",
            Payload::Recovery { .. } => "recovery",
            Payload::Checkpoint { .. } => {
                if sealed {
                    "seal"
                } else {
                    "checkpoint"
                }
            }
        }
    }
}

/// One fully-formed chain record (hash included).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRecord {
    /// `kind` string as written (distinguishes `checkpoint` from
    /// `seal`, which share the [`Payload::Checkpoint`] shape).
    pub kind: String,
    /// Monotonic record index (genesis = 0).
    pub seq: u64,
    /// Monotonic process timestamp of the append.
    pub t_ns: u64,
    /// `record_hash` of the predecessor.
    pub prev_hash: String,
    /// Kind-specific fields.
    pub payload: Payload,
    /// SHA-256 over the canonical encoding of all other fields.
    pub record_hash: String,
}

impl ChainRecord {
    /// Builds (and hashes) a record from its parts.
    pub fn new(kind: &str, seq: u64, t_ns: u64, prev_hash: String, payload: Payload) -> Self {
        let canonical = canonical_text(kind, seq, t_ns, &prev_hash, &payload);
        let record_hash = sha256_hex(canonical.as_bytes());
        Self {
            kind: kind.to_string(),
            seq,
            t_ns,
            prev_hash,
            payload,
            record_hash,
        }
    }

    /// The canonical encoding this record's hash covers.
    pub fn canonical(&self) -> String {
        canonical_text(
            &self.kind,
            self.seq,
            self.t_ns,
            &self.prev_hash,
            &self.payload,
        )
    }

    /// Recomputes the hash from the canonical encoding and compares.
    pub fn hash_is_consistent(&self) -> bool {
        sha256_hex(self.canonical().as_bytes()) == self.record_hash
    }

    /// The full length-prefixed line, newline included.
    pub fn to_line(&self) -> String {
        // The JSON is the canonical text with `record_hash` appended as
        // the final field, so the stored bytes and the hashed bytes
        // agree by construction.
        let canonical = self.canonical();
        let json = format!(
            "{},\"record_hash\":\"{}\"}}",
            &canonical[..canonical.len() - 1],
            self.record_hash
        );
        format!("{} {json}\n", json.len())
    }

    /// Parses the JSON part of one chain line (length prefix already
    /// stripped and checked by the caller).
    ///
    /// # Errors
    ///
    /// Returns a static description of the first malformed field. The
    /// record's hash is *not* checked here — call
    /// [`ChainRecord::hash_is_consistent`].
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let str_of = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {name:?}"))
        };
        let u64_of = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {name:?}"))
        };
        let kind = str_of("kind")?;
        let seq = u64_of("seq")?;
        let t_ns = u64_of("t_ns")?;
        let prev_hash = str_of("prev_hash")?;
        let record_hash = str_of("record_hash")?;
        let payload = match kind.as_str() {
            "genesis" => Payload::Genesis {
                format: str_of("format")?,
                policy_hash: str_of("policy_hash")?,
                certificate_id: str_of("certificate_id")?,
                crate_version: str_of("crate_version")?,
            },
            "decision" => {
                let items = v
                    .get("observation")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "missing or non-array field \"observation\"".to_string())?;
                if items.len() != OBSERVATION_DIM {
                    return Err(format!(
                        "observation has {} entries, expected {OBSERVATION_DIM}",
                        items.len()
                    ));
                }
                let mut observation = [0.0f64; OBSERVATION_DIM];
                for (slot, item) in observation.iter_mut().zip(items) {
                    *slot = item
                        .as_f64()
                        .ok_or_else(|| "non-numeric observation entry".to_string())?;
                }
                Payload::Decision {
                    observation,
                    heating: u64_of("heating")?,
                    cooling: u64_of("cooling")?,
                    action_index: u64_of("action_index")?,
                    guard_state: str_of("guard_state")?,
                    trace_id: v
                        .get("trace_id")
                        .map(|t| {
                            t.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "non-string field \"trace_id\"".to_string())
                        })
                        .transpose()?,
                }
            }
            "transition" => Payload::Transition {
                from: str_of("from")?,
                to: str_of("to")?,
            },
            "recovery" => Payload::Recovery {
                prefix_records: u64_of("prefix_records")?,
                prefix_digest: str_of("prefix_digest")?,
                truncated_bytes: u64_of("truncated_bytes")?,
            },
            "checkpoint" | "seal" => Payload::Checkpoint {
                records: u64_of("records")?,
                decisions: u64_of("decisions")?,
                transitions: u64_of("transitions")?,
                digest: str_of("digest")?,
            },
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok(Self {
            kind,
            seq,
            t_ns,
            prev_hash,
            payload,
            record_hash,
        })
    }
}

/// The canonical JSON text of a record, `record_hash` excluded.
fn canonical_text(kind: &str, seq: u64, t_ns: u64, prev_hash: &str, payload: &Payload) -> String {
    let mut o = ObjectWriter::new();
    o.str_field("kind", kind);
    o.u64_field("seq", seq);
    o.u64_field("t_ns", t_ns);
    o.str_field("prev_hash", prev_hash);
    match payload {
        Payload::Genesis {
            format,
            policy_hash,
            certificate_id,
            crate_version,
        } => {
            o.str_field("format", format);
            o.str_field("policy_hash", policy_hash);
            o.str_field("certificate_id", certificate_id);
            o.str_field("crate_version", crate_version);
        }
        Payload::Decision {
            observation,
            heating,
            cooling,
            action_index,
            guard_state,
            trace_id,
        } => {
            o.f64_array_field("observation", observation);
            o.u64_field("heating", *heating);
            o.u64_field("cooling", *cooling);
            o.u64_field("action_index", *action_index);
            o.str_field("guard_state", guard_state);
            // Written only when present so v1 chains (no trace ids)
            // re-canonicalise to the exact bytes they were hashed over.
            if let Some(trace_id) = trace_id {
                o.str_field("trace_id", trace_id);
            }
        }
        Payload::Transition { from, to } => {
            o.str_field("from", from);
            o.str_field("to", to);
        }
        Payload::Recovery {
            prefix_records,
            prefix_digest,
            truncated_bytes,
        } => {
            o.u64_field("prefix_records", *prefix_records);
            o.str_field("prefix_digest", prefix_digest);
            o.u64_field("truncated_bytes", *truncated_bytes);
        }
        Payload::Checkpoint {
            records,
            decisions,
            transitions,
            digest,
        } => {
            o.u64_field("records", *records);
            o.u64_field("decisions", *decisions);
            o.u64_field("transitions", *transitions);
            o.str_field("digest", digest);
        }
    }
    o.finish()
}

/// Splits one chain line into its declared length and JSON text.
///
/// # Errors
///
/// Reports a missing prefix, a non-numeric prefix, or a length/byte
/// mismatch (the signature of a torn or bit-flipped line).
pub fn split_line(line: &str) -> Result<&str, String> {
    let (len_text, json) = line
        .split_once(' ')
        .ok_or_else(|| "missing length prefix".to_string())?;
    let declared: usize = len_text
        .parse()
        .map_err(|_| format!("non-numeric length prefix {len_text:?}"))?;
    if declared != json.len() {
        return Err(format!(
            "length prefix says {declared} bytes but line carries {}",
            json.len()
        ));
    }
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_telemetry::json::parse;

    fn decision_record() -> ChainRecord {
        ChainRecord::new(
            "decision",
            3,
            1234,
            "ab".repeat(32),
            Payload::Decision {
                observation: [18.5, -3.0, 55.0, 4.5, 120.0, 3.0, 10.25],
                heating: 23,
                cooling: 30,
                action_index: 7,
                guard_state: "normal".into(),
                trace_id: Some("req-00000001".into()),
            },
        )
    }

    #[test]
    fn line_round_trips_and_hash_verifies() {
        let record = decision_record();
        let line = record.to_line();
        assert!(line.ends_with('\n'));
        let json = split_line(line.trim_end_matches('\n')).unwrap();
        let parsed = ChainRecord::from_json(&parse(json).unwrap()).unwrap();
        assert_eq!(parsed, record);
        assert!(parsed.hash_is_consistent());
    }

    #[test]
    fn any_field_change_breaks_the_hash() {
        let record = decision_record();
        let mut tampered = record.clone();
        tampered.seq += 1;
        assert!(!tampered.hash_is_consistent());
        let mut tampered = record.clone();
        tampered.prev_hash = "cd".repeat(32);
        assert!(!tampered.hash_is_consistent());
        let mut tampered = record.clone();
        if let Payload::Decision { observation, .. } = &mut tampered.payload {
            observation[0] += 1e-9;
        }
        assert!(!tampered.hash_is_consistent());
        let mut tampered = record;
        if let Payload::Decision { heating, .. } = &mut tampered.payload {
            *heating = 24;
        }
        assert!(!tampered.hash_is_consistent());
    }

    #[test]
    fn v1_decision_without_trace_id_still_round_trips() {
        // A v1 chain line carries no trace_id; parsing must yield
        // `None` and re-canonicalising must reproduce the hashed bytes.
        let v1 = ChainRecord::new(
            "decision",
            2,
            999,
            "ab".repeat(32),
            Payload::Decision {
                observation: [18.5, -3.0, 55.0, 4.5, 120.0, 3.0, 10.25],
                heating: 21,
                cooling: 26,
                action_index: 1,
                guard_state: "normal".into(),
                trace_id: None,
            },
        );
        assert!(!v1.canonical().contains("trace_id"));
        let line = v1.to_line();
        let parsed =
            ChainRecord::from_json(&parse(split_line(line.trim_end()).unwrap()).unwrap()).unwrap();
        assert_eq!(parsed, v1);
        assert!(parsed.hash_is_consistent());
    }

    #[test]
    fn trace_id_is_hash_covered_in_v2_records() {
        let record = decision_record();
        let mut tampered = record;
        if let Payload::Decision { trace_id, .. } = &mut tampered.payload {
            *trace_id = Some("req-spoofed".into());
        }
        assert!(!tampered.hash_is_consistent());
    }

    #[test]
    fn split_line_rejects_torn_and_tampered_prefixes() {
        assert!(split_line("{\"kind\":\"x\"}").is_err());
        assert!(split_line("zz {\"kind\":\"x\"}").is_err());
        // Truncated tail: prefix says more bytes than present.
        assert!(split_line("99 {\"kind\":\"x\"}").is_err());
        assert!(split_line("12 {\"kind\":\"x\"}").is_ok());
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = [
            ChainRecord::new(
                "genesis",
                0,
                0,
                GENESIS_PREV_HASH.into(),
                Payload::Genesis {
                    format: CHAIN_FORMAT.into(),
                    policy_hash: "aa".repeat(32),
                    certificate_id: String::new(),
                    crate_version: "0.1.0".into(),
                },
            ),
            decision_record(),
            ChainRecord::new(
                "transition",
                4,
                2000,
                "ee".repeat(32),
                Payload::Transition {
                    from: "normal".into(),
                    to: "fallback".into(),
                },
            ),
            ChainRecord::new(
                "recovery",
                5,
                2500,
                "ab".repeat(32),
                Payload::Recovery {
                    prefix_records: 5,
                    prefix_digest: "ee".repeat(32),
                    truncated_bytes: 137,
                },
            ),
            ChainRecord::new(
                "checkpoint",
                5,
                3000,
                "ff".repeat(32),
                Payload::Checkpoint {
                    records: 5,
                    decisions: 3,
                    transitions: 1,
                    digest: "bb".repeat(32),
                },
            ),
            ChainRecord::new(
                "seal",
                6,
                4000,
                "dd".repeat(32),
                Payload::Checkpoint {
                    records: 6,
                    decisions: 3,
                    transitions: 1,
                    digest: "cc".repeat(32),
                },
            ),
        ];
        for record in kinds {
            let json = record.to_line();
            let parsed =
                ChainRecord::from_json(&parse(split_line(json.trim_end()).unwrap()).unwrap())
                    .unwrap();
            assert_eq!(parsed, record);
            assert!(parsed.hash_is_consistent(), "kind {}", record.kind);
        }
    }
}
