//! One integration test per tamper class the audit chain is designed
//! to catch (`ISSUE` acceptance criteria): bit-flip, deletion,
//! reordering, truncation after the last checkpoint, and policy /
//! certificate mismatch — plus a ≥1000-decision clean session that must
//! audit green end to end.

use std::path::PathBuf;
use std::sync::Arc;

use hvac_audit::{
    bind_certificate, policy_hash, AuditChain, AuditOptions, AuditReport, Auditor, ChainConfig,
    FlushPolicy,
};
use hvac_control::DtPolicy;
use hvac_dtree::{DecisionTree, TreeConfig};
use hvac_env::space::feature;
use hvac_env::{ActionSpace, Observation, Policy, SetpointAction, POLICY_INPUT_DIM};
use hvac_verify::probabilistic::SafeProbability;
use hvac_verify::{Certificate, VerificationConfig, VerificationReport};

/// Cold zones → heat hard, warm zones → off (the serve tests' toy
/// tree).
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// An unbound certificate covering `policy` (synthetic verification
/// outcome — the binding, not the verification math, is under test).
fn unbound_certificate(policy: &DtPolicy) -> Certificate {
    let report = VerificationReport {
        total_nodes: 7,
        leaf_nodes: 4,
        criterion_1: SafeProbability {
            safe: 1980,
            total: 2000,
            threshold: 0.9,
        },
        corrected_criterion_2: 1,
        corrected_criterion_3: 0,
    };
    let config = VerificationConfig::paper();
    Certificate::new(
        policy_hash(policy),
        report,
        &config,
        0.1,
        vec!["dataset/0011223344556677".to_string()],
    )
}

fn toy_certificate(policy: &DtPolicy) -> Certificate {
    bind_certificate(unbound_certificate(policy))
}

/// A scratch path under the target-dir tempdir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hvac-audit-tamper");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Serves `decisions` observations through `policy` into a fresh
/// sealed chain and returns the raw chain text.
fn record_session(
    name: &str,
    policy: &DtPolicy,
    certificate_id: &str,
    decisions: usize,
    checkpoint_every: u64,
) -> String {
    let path = scratch(name);
    let mut live = policy.clone();
    let chain = Arc::new(
        AuditChain::create(
            &path,
            &policy_hash(policy),
            certificate_id,
            ChainConfig {
                checkpoint_every,
                flush: FlushPolicy::OnSeal,
            },
        )
        .unwrap(),
    );
    for i in 0..decisions {
        let mut x = [0.0f64; POLICY_INPUT_DIM];
        x[feature::ZONE_TEMPERATURE] = 14.0 + (i % 160) as f64 * 0.063;
        x[feature::HOUR_OF_DAY] = (i % 24) as f64;
        let action = live.decide(&Observation::from_vector(&x));
        let index = live.action_space().index_of(action) as u64;
        // A couple of guard excursions so replay has non-normal rows
        // to skip.
        if i % 97 == 5 {
            chain.append_transition("normal", "hold").unwrap();
            chain
                .append_decision(x, 20, 26, index, "hold", Some("req-hold"))
                .unwrap();
            chain.append_transition("hold", "normal").unwrap();
            continue;
        }
        chain
            .append_decision(
                x,
                action.heating() as u64,
                action.cooling() as u64,
                index,
                "normal",
                Some(&format!("req-{i:08x}")),
            )
            .unwrap();
    }
    chain.seal().unwrap();
    std::fs::read_to_string(&path).unwrap()
}

fn audit(text: &str, policy: &DtPolicy, certificate: &Certificate) -> AuditReport {
    Auditor::new(text)
        .with_policy(policy)
        .with_certificate(certificate)
        .run()
}

fn failed_names(report: &AuditReport) -> Vec<&'static str> {
    report
        .checks
        .iter()
        .filter(|c| !c.passed)
        .map(|c| c.name)
        .collect()
}

#[test]
fn clean_thousand_decision_session_audits_green() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "clean.jsonl",
        &policy,
        &certificate.certificate_id,
        1000,
        64,
    );
    let report = audit(&text, &policy, &certificate);
    assert!(report.passed(), "{report}");
    assert_eq!(report.decisions, 1000);
    assert!(report.checkpoints >= 15, "{report}");
    assert!(report.sealed);
    assert!(report.replayed >= 60, "{report}");
    assert_eq!(report.policy_hash, policy_hash(&policy));
    assert_eq!(report.certificate_id, certificate.certificate_id);
}

#[test]
fn bit_flip_in_a_record_is_detected() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "bitflip.jsonl",
        &policy,
        &certificate.certificate_id,
        40,
        16,
    );
    // Flip one digit of a mid-chain observation (length-preserving, so
    // only the hash can catch it).
    let lines: Vec<&str> = text.lines().collect();
    let victim = lines[20];
    let flipped = if victim.contains("14.") {
        victim.replacen("14.", "15.", 1)
    } else {
        victim.replacen("0.0", "0.1", 1)
    };
    assert_ne!(victim, flipped, "fixture must actually flip a byte");
    let tampered = text.replacen(victim, &flipped, 1);
    let report = audit(&tampered, &policy, &certificate);
    assert!(!report.passed());
    let failed = failed_names(&report);
    assert!(
        failed.contains(&"record_hashes") || failed.contains(&"lines"),
        "bit-flip must fail the hash or parse check, failed: {failed:?}"
    );
    assert!(
        report.first_failure().unwrap().detail.contains("2"),
        "failure should point at a line/seq: {}",
        report.first_failure().unwrap().detail
    );
}

#[test]
fn deleted_record_is_detected() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session("delete.jsonl", &policy, &certificate.certificate_id, 40, 16);
    let lines: Vec<&str> = text.lines().collect();
    // Drop one mid-chain decision record entirely.
    let mut kept: Vec<&str> = lines.clone();
    kept.remove(12);
    let tampered = kept.join("\n") + "\n";
    let report = audit(&tampered, &policy, &certificate);
    assert!(!report.passed());
    assert!(
        failed_names(&report).contains(&"chain_links"),
        "deletion must break the seq/prev_hash links: {report}"
    );
}

#[test]
fn reordered_records_are_detected() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "reorder.jsonl",
        &policy,
        &certificate.certificate_id,
        40,
        16,
    );
    let mut lines: Vec<&str> = text.lines().collect();
    lines.swap(8, 9);
    let tampered = lines.join("\n") + "\n";
    let report = audit(&tampered, &policy, &certificate);
    assert!(!report.passed());
    assert!(
        failed_names(&report).contains(&"chain_links"),
        "reordering must break the seq/prev_hash links: {report}"
    );
}

#[test]
fn truncation_after_last_checkpoint_is_detected() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "truncate.jsonl",
        &policy,
        &certificate.certificate_id,
        50,
        16,
    );
    // Cut the suffix after the last periodic checkpoint (seal
    // included): every surviving prefix hash still verifies, so only
    // the missing seal can betray the cut.
    let lines: Vec<&str> = text.lines().collect();
    let last_checkpoint = lines
        .iter()
        .rposition(|l| l.contains("\"kind\":\"checkpoint\""))
        .expect("session long enough to checkpoint");
    let tampered = lines[..=last_checkpoint].join("\n") + "\n";
    let report = audit(&tampered, &policy, &certificate);
    assert!(!report.passed());
    assert_eq!(failed_names(&report), vec!["seal"], "{report}");
    // The documented trade-off: --allow-unsealed tolerates exactly
    // this, for chains from signal-killed serves.
    let tolerant = Auditor::new(&tampered)
        .with_policy(&policy)
        .with_certificate(&certificate)
        .options(AuditOptions {
            allow_unsealed: true,
            ..AuditOptions::default()
        })
        .run();
    assert!(tolerant.passed(), "{tolerant}");
}

#[test]
fn policy_and_certificate_mismatches_are_detected() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "mismatch.jsonl",
        &policy,
        &certificate.certificate_id,
        30,
        16,
    );

    // A different policy: both the binding check and (generally) the
    // replay check must object.
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    let space = ActionSpace::new();
    let low = space.index_of(SetpointAction::new(18, 26).unwrap());
    for i in 0..20 {
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = 14.0 + f64::from(i) * 0.5;
        inputs.push(row);
        labels.push(low);
    }
    let other = DtPolicy::new(
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap(),
    )
    .unwrap();
    let report = audit(&text, &other, &certificate);
    assert!(!report.passed());
    assert!(
        failed_names(&report).contains(&"policy"),
        "wrong policy must fail the binding check: {report}"
    );

    // A certificate for the wrong policy: the certificate check fails
    // even though the chain and policy agree with each other.
    let wrong_certificate = toy_certificate(&other);
    let report = audit(&text, &policy, &wrong_certificate);
    assert!(!report.passed());
    // The certificate binding fails outright, and the policy check
    // (which trusts the certificate's claim when one is supplied)
    // correctly objects too.
    assert!(
        failed_names(&report).contains(&"certificate"),
        "wrong certificate must fail the binding check: {report}"
    );

    // A certificate whose id was edited after binding: the id no
    // longer hashes its canonical bytes.
    let mut forged = certificate.clone();
    forged.certificate_id = format!("0{}", &forged.certificate_id[1..]);
    let report = audit(&text, &policy, &forged);
    assert!(
        failed_names(&report).contains(&"certificate"),
        "forged certificate id must fail: {report}"
    );
}

#[test]
fn tampered_compiled_artifact_fails_the_compiled_check() {
    let policy = toy_policy();
    let artifact = policy
        .compiled_artifact()
        .expect("the toy tree compiles and proves");
    let certificate = bind_certificate(
        unbound_certificate(&policy).with_compiled_hash(hvac_audit::compiled_hash(&artifact)),
    );
    let text = record_session(
        "compiled.jsonl",
        &policy,
        &certificate.certificate_id,
        30,
        16,
    );

    // The genuine artifact audits green, with the compiled check on
    // record (hash bound AND equivalence re-proven against the tree).
    let report = Auditor::new(&text)
        .with_policy(&policy)
        .with_certificate(&certificate)
        .with_compiled_artifact(&artifact)
        .run();
    assert!(report.passed(), "{report}");
    let compiled = report
        .checks
        .iter()
        .find(|c| c.name == "compiled")
        .expect("compiled check must run when an artifact is supplied");
    assert!(
        compiled.detail.contains("re-proven"),
        "clean audit must re-prove equivalence: {}",
        compiled.detail
    );

    // Edit one threshold digit in the artifact: the hash binding must
    // object before the kernel ever serves.
    let digit = artifact
        .lines()
        .find(|l| l.starts_with("N "))
        .expect("toy tree has a split line");
    let tampered = artifact.replacen(digit, &format!("{digit} "), 1);
    assert_ne!(tampered, artifact);
    let report = Auditor::new(&text)
        .with_policy(&policy)
        .with_certificate(&certificate)
        .with_compiled_artifact(&tampered)
        .run();
    assert_eq!(failed_names(&report), vec!["compiled"], "{report}");
    assert!(
        report.first_failure().unwrap().detail.contains("committed"),
        "failure must name the hash mismatch: {report}"
    );

    // A certificate with no compiled binding cannot vouch for any
    // artifact: supplying one is itself a failure, not a silent skip.
    let unbound = toy_certificate(&policy);
    let text2 = record_session("compiled2.jsonl", &policy, &unbound.certificate_id, 30, 16);
    let report = Auditor::new(&text2)
        .with_policy(&policy)
        .with_certificate(&unbound)
        .with_compiled_artifact(&artifact)
        .run();
    assert_eq!(failed_names(&report), vec!["compiled"], "{report}");

    // A *bound* artifact for the wrong tree: the hash agrees with the
    // (forged) certificate, so only the equivalence re-proof can catch
    // it — and must.
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    let space = ActionSpace::new();
    let low = space.index_of(SetpointAction::new(18, 26).unwrap());
    for i in 0..20 {
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = 14.0 + f64::from(i) * 0.5;
        inputs.push(row);
        labels.push(if i < 10 { low } else { 0 });
    }
    let other = DtPolicy::new(
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap(),
    )
    .unwrap();
    let foreign = other.compiled_artifact().expect("other tree compiles");
    let forged = bind_certificate(
        unbound_certificate(&policy).with_compiled_hash(hvac_audit::compiled_hash(&foreign)),
    );
    let text3 = record_session("compiled3.jsonl", &policy, &forged.certificate_id, 30, 16);
    let report = Auditor::new(&text3)
        .with_policy(&policy)
        .with_certificate(&forged)
        .with_compiled_artifact(&foreign)
        .run();
    assert!(
        failed_names(&report).contains(&"compiled"),
        "a hash-bound but non-equivalent kernel must fail the re-proof: {report}"
    );
    assert!(
        report
            .checks
            .iter()
            .find(|c| c.name == "compiled")
            .unwrap()
            .detail
            .contains("NOT equivalent"),
        "{report}"
    );
}

#[test]
fn torn_final_record_recovers_at_every_cut_offset() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session("torn.jsonl", &policy, &certificate.certificate_id, 40, 16);
    // Byte offset where the final (seal) record starts.
    let base = text[..text.len() - 1].rfind('\n').unwrap() + 1;
    let prefix_records = text[..base].lines().count() as u64;
    let json_start = text[base..].find(' ').unwrap() + 1;
    // Crash points: inside the length prefix, just into the JSON, deep
    // mid-JSON, and a complete record missing only its newline.
    let cuts = [
        base + 2,
        base + json_start + 1,
        base + json_start + 25,
        text.len() - 1,
    ];
    for (i, &cut) in cuts.iter().enumerate() {
        let torn = &text[..cut];
        // Before recovery the auditor names the torn fragment exactly.
        let report = audit(torn, &policy, &certificate);
        assert!(!report.passed(), "cut {i}: torn chain must audit red");
        assert_eq!(report.failure_class(), "torn_tail", "cut {i}: {report}");
        assert_eq!(report.torn_tail_offset, Some(base as u64), "cut {i}");
        let detail = &report.first_failure().unwrap().detail;
        assert!(
            detail.contains(&format!("byte offset {base}")) && detail.contains("--recover"),
            "cut {i}: detail must name the offset and the remedy: {detail}"
        );

        // Recovery truncates exactly the torn bytes and resumes.
        let path = scratch(&format!("torn-{i}.jsonl"));
        std::fs::write(&path, torn.as_bytes()).unwrap();
        let (chain, recovery) = hvac_audit::AuditChain::recover(
            &path,
            hvac_audit::ChainConfig {
                checkpoint_every: 16,
                flush: FlushPolicy::Always,
            },
        )
        .unwrap();
        assert_eq!(recovery.truncated_bytes, (cut - base) as u64, "cut {i}");
        assert_eq!(recovery.truncated_at, base as u64, "cut {i}");
        assert_eq!(recovery.prefix_records, prefix_records, "cut {i}");
        drop(chain); // drop-seals the resumed chain

        let recovered = std::fs::read_to_string(&path).unwrap();
        assert!(
            recovered.as_bytes().starts_with(&text.as_bytes()[..base]),
            "cut {i}: the verified prefix must survive byte-identically"
        );
        let report = audit(&recovered, &policy, &certificate);
        assert!(report.passed(), "cut {i}: {report}");
        assert_eq!(report.recoveries, 1, "cut {i}");
        assert_eq!(report.failure_class(), "none", "cut {i}");
    }
}

#[test]
fn interior_corruption_is_not_recoverable() {
    let policy = toy_policy();
    let certificate = toy_certificate(&policy);
    let text = record_session(
        "interior.jsonl",
        &policy,
        &certificate.certificate_id,
        30,
        16,
    );
    // A complete interior line whose bytes no longer match its hash is
    // tampering, not a crash: recovery must refuse and leave the file
    // untouched. (Length-preserving flip, so only the hash can object.)
    let tampered = text.replacen("14.", "15.", 1);
    assert_ne!(tampered, text);
    let path = scratch("interior-tampered.jsonl");
    std::fs::write(&path, tampered.as_bytes()).unwrap();
    let err = hvac_audit::AuditChain::recover(&path, hvac_audit::ChainConfig::default())
        .map(|_| ())
        .unwrap_err();
    assert!(
        err.to_string().contains("tampering"),
        "refusal must name tampering: {err}"
    );
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        tampered,
        "a refused recovery must not modify the chain"
    );
    // The auditor classifies it as bad_hash, not torn_tail.
    let report = audit(&tampered, &policy, &certificate);
    assert_eq!(report.failure_class(), "bad_hash", "{report}");
}
