//! Crash recovery under injected write-path faults.
//!
//! [`hvac_faults::FaultyWriter`] plugs into [`AuditChain::create_with_writer`]
//! to simulate the storage failures a deployed controller actually
//! meets: a disk that fills mid-append (tearing a length-prefixed
//! record), an fsync that reports failure after the bytes landed, and
//! latency spikes. Each scenario must end in a chain that
//! [`AuditChain::recover`] resumes and the auditor passes green.

use std::fs::{File, OpenOptions};
use std::path::PathBuf;

use hvac_audit::{AuditChain, Auditor, ChainConfig, FlushPolicy};
use hvac_env::POLICY_INPUT_DIM;
use hvac_faults::{FaultyWriter, WriteFault, WriteFaultKind, WriteFaultSchedule};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hvac-audit-write-faults");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const HASH: &str = "abababababababababababababababababababababababababababababababab";

fn config() -> ChainConfig {
    ChainConfig {
        checkpoint_every: 8,
        flush: FlushPolicy::Always,
    }
}

fn faulty_chain(path: &PathBuf, schedule: WriteFaultSchedule, flush: FlushPolicy) -> AuditChain {
    let file = File::create(path).unwrap();
    AuditChain::create_with_writer(
        Box::new(FaultyWriter::new(file, schedule)),
        HASH,
        "cert-0",
        ChainConfig {
            checkpoint_every: 8,
            flush,
        },
    )
    .unwrap()
}

fn append_until_err(chain: &AuditChain, max: usize) -> Option<std::io::Error> {
    for i in 0..max {
        let mut x = [0.0f64; POLICY_INPUT_DIM];
        x[0] = 20.0 + (i % 7) as f64 * 0.3;
        if let Err(e) = chain.append_decision(x, 22, 26, 3, "normal", Some(&format!("req-{i}"))) {
            return Some(e);
        }
    }
    None
}

#[test]
fn disk_full_mid_append_tears_the_tail_and_recovery_resumes() {
    let path = scratch("diskfull.jsonl");
    let schedule = WriteFaultSchedule::new(11).with(WriteFault {
        kind: WriteFaultKind::DiskFull { budget: 2500 },
        window: (0, u64::MAX),
    });
    let chain = faulty_chain(&path, schedule, FlushPolicy::Always);
    let err = append_until_err(&chain, 200).expect("a 2500-byte disk must fill");
    assert_eq!(err.raw_os_error(), Some(28), "ENOSPC must surface: {err}");
    // The process "dies" with the disk full — no drop-seal.
    std::mem::forget(chain);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), 2500);

    let (resumed, report) = AuditChain::recover(&path, config()).unwrap();
    assert!(
        report.truncated_bytes > 0,
        "2500 bytes lands mid-record: {report:?}"
    );
    assert!(!report.was_sealed);
    drop(resumed); // drop-seal

    let text = std::fs::read_to_string(&path).unwrap();
    let audit = Auditor::new(&text).run();
    assert!(audit.passed(), "{audit}");
    assert_eq!(audit.recoveries, 1);
}

#[test]
fn failed_fsync_after_a_complete_seal_still_recovers() {
    let path = scratch("fsyncfail.jsonl");
    let schedule = WriteFaultSchedule::new(3).with(WriteFault {
        kind: WriteFaultKind::FlushFail { probability: 1.0 },
        window: (0, u64::MAX),
    });
    // OnSeal keeps everything buffered until the seal, whose flush then
    // reports EIO *after* the bytes reached the file — the classic
    // "fsync failed but the data survived" crash.
    let chain = faulty_chain(&path, schedule, FlushPolicy::OnSeal);
    assert!(append_until_err(&chain, 20).is_none());
    let err = chain.seal().unwrap_err();
    assert_eq!(err.raw_os_error(), Some(5), "EIO must surface: {err}");
    std::mem::forget(chain);

    let (resumed, report) = AuditChain::recover(&path, config()).unwrap();
    // Every record (seal included) landed: nothing to truncate, and the
    // recovery record documents the resume after the in-doubt fsync.
    assert_eq!(report.truncated_bytes, 0, "{report:?}");
    assert!(report.was_sealed);
    assert_eq!(report.decisions, 20);
    drop(resumed);

    let text = std::fs::read_to_string(&path).unwrap();
    let audit = Auditor::new(&text).run();
    assert!(audit.passed(), "{audit}");
    assert_eq!(audit.recoveries, 1);
}

#[test]
fn latency_spikes_and_short_writes_never_corrupt_a_surviving_chain() {
    let path = scratch("slow.jsonl");
    let schedule = WriteFaultSchedule::new(9)
        .with(WriteFault {
            kind: WriteFaultKind::Latency {
                probability: 0.2,
                micros: 50,
            },
            window: (0, u64::MAX),
        })
        .with(WriteFault {
            kind: WriteFaultKind::ShortWrite { probability: 0.5 },
            window: (0, u64::MAX),
        });
    let chain = faulty_chain(&path, schedule, FlushPolicy::Always);
    assert!(append_until_err(&chain, 50).is_none());
    chain.seal().unwrap();
    drop(chain);

    // Short writes are retried by the buffered writer, latency only
    // stalls: the surviving chain audits green with nothing recovered
    // and nothing lost (timestamps differ from a clean run; structure
    // must not).
    let text = std::fs::read_to_string(&path).unwrap();
    let audit = Auditor::new(&text).run();
    assert!(audit.passed(), "{audit}");
    assert_eq!(audit.recoveries, 0);
    assert_eq!(audit.decisions, 50);
    assert!(audit.sealed);
}

#[test]
fn recovery_of_a_recovered_chain_keeps_every_prior_recovery_record() {
    // Two crashes in a row: each recover() adds exactly one recovery
    // record and the auditor replays both prefix digests.
    let path = scratch("double.jsonl");
    let schedule = WriteFaultSchedule::new(5).with(WriteFault {
        kind: WriteFaultKind::DiskFull { budget: 1800 },
        window: (0, u64::MAX),
    });
    let chain = faulty_chain(&path, schedule, FlushPolicy::Always);
    append_until_err(&chain, 200).expect("disk fills");
    std::mem::forget(chain);

    let (resumed, first) = AuditChain::recover(&path, config()).unwrap();
    assert!(first.truncated_bytes > 0);
    append_until_err(&resumed, 5);
    std::mem::forget(resumed); // second crash, mid-stream but no torn write

    let (resumed, second) = AuditChain::recover(&path, config()).unwrap();
    assert_eq!(second.truncated_bytes, 0, "{second:?}");
    drop(resumed);

    let text = std::fs::read_to_string(&path).unwrap();
    let audit = Auditor::new(&text).run();
    assert!(audit.passed(), "{audit}");
    assert_eq!(audit.recoveries, 2);
}

/// `OpenOptions` import kept honest: recovery reopens append-only, so a
/// concurrent reader holding the file open never sees rewritten bytes.
#[test]
fn recovered_file_is_opened_append_only() {
    let path = scratch("append-only.jsonl");
    let chain = AuditChain::create(&path, HASH, "cert-0", config()).unwrap();
    append_until_err(&chain, 3);
    std::mem::forget(chain);
    let before = std::fs::read_to_string(&path).unwrap();
    let (resumed, _) = AuditChain::recover(&path, config()).unwrap();
    drop(resumed);
    let after = std::fs::read_to_string(&path).unwrap();
    assert!(after.starts_with(&before), "prefix bytes must be stable");
    assert!(after.len() > before.len(), "recovery + seal must append");
    // Exercise the same open mode the recovery path uses.
    drop(OpenOptions::new().append(true).open(&path).unwrap());
}
