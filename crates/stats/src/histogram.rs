use crate::StatsError;

/// A fixed-range, uniform-bin histogram over `f64` samples.
///
/// Used throughout the workspace to turn empirical samples (setpoint
/// choices, augmented disturbance values) into discrete probability
/// distributions for entropy / Jensen–Shannon comparisons (paper Fig. 1
/// right panel and Fig. 3).
///
/// Out-of-range samples are clamped into the first / last bin so that two
/// histograms built over the same `[lo, hi]` range are always comparable
/// bin-by-bin, which is what the Jensen–Shannon machinery requires.
///
/// # Example
///
/// ```
/// use hvac_stats::Histogram;
///
/// # fn main() -> Result<(), hvac_stats::StatsError> {
/// let mut h = Histogram::new(4, 0.0, 4.0)?;
/// h.add(0.5);
/// h.add(1.5);
/// h.add(1.6);
/// assert_eq!(h.counts(), &[1, 2, 0, 0]);
/// assert_eq!(h.total(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins spanning `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroBins`] if `bins == 0`, and
    /// [`StatsError::InvalidRange`] if `lo >= hi` or either edge is not
    /// finite.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::ZeroBins);
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::InvalidRange { lo, hi });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Builds a histogram directly from a slice of samples.
    ///
    /// NaN samples are skipped (they carry no positional information);
    /// infinite samples clamp into the edge bins like any other
    /// out-of-range value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Histogram::new`].
    pub fn from_samples(
        bins: usize,
        lo: f64,
        hi: f64,
        samples: &[f64],
    ) -> Result<Self, StatsError> {
        let mut h = Self::new(bins, lo, hi)?;
        h.extend(samples.iter().copied());
        Ok(h)
    }

    /// Adds one sample, clamping out-of-range values into the edge bins.
    ///
    /// NaN samples are ignored.
    pub fn add(&mut self, sample: f64) {
        if sample.is_nan() {
            return;
        }
        let idx = self.bin_index(sample);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Returns the bin that `sample` falls into (clamped to the edges).
    pub fn bin_index(&self, sample: f64) -> usize {
        let n = self.counts.len();
        if sample <= self.lo {
            return 0;
        }
        if sample >= self.hi {
            return n - 1;
        }
        let frac = (sample - self.lo) / (self.hi - self.lo);
        ((frac * n as f64) as usize).min(n - 1)
    }

    /// Returns the midpoint value of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_center(&self, idx: usize) -> f64 {
        assert!(idx < self.counts.len(), "bin index out of bounds");
        let w = self.bin_width();
        self.lo + w * (idx as f64 + 0.5)
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// The raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Returns the empirical probability of each bin.
    ///
    /// If the histogram is empty every bin has probability zero; callers
    /// that feed the result into entropy/JSD functions should check
    /// [`Histogram::total`] first.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let t = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Index of the most populated bin (the empirical mode), breaking ties
    /// toward the lower bin.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.add(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_bins_rejected() {
        assert_eq!(Histogram::new(0, 0.0, 1.0), Err(StatsError::ZeroBins));
    }

    #[test]
    fn reversed_range_rejected() {
        assert!(matches!(
            Histogram::new(4, 1.0, 0.0),
            Err(StatsError::InvalidRange { .. })
        ));
    }

    #[test]
    fn nan_edge_rejected() {
        assert!(Histogram::new(4, f64::NAN, 1.0).is_err());
        assert!(Histogram::new(4, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(3, 0.0, 3.0).unwrap();
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts(), &[1, 0, 1]);
    }

    #[test]
    fn nan_sample_skipped() {
        let mut h = Histogram::new(3, 0.0, 3.0).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(4, 0.0, 4.0).unwrap();
        h.add(4.0);
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let h = Histogram::from_samples(8, 0.0, 8.0, &[0.5, 1.5, 1.6, 7.9]).unwrap();
        let p: f64 = h.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_probabilities_are_zero() {
        let h = Histogram::new(4, 0.0, 1.0).unwrap();
        assert_eq!(h.probabilities(), vec![0.0; 4]);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn mode_bin_prefers_lower_on_tie() {
        let h = Histogram::from_samples(4, 0.0, 4.0, &[0.5, 2.5]).unwrap();
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(4, 0.0, 4.0).unwrap();
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(3) - 3.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_every_sample_lands_in_exactly_one_bin(
            samples in proptest::collection::vec(-50.0f64..50.0, 1..200),
            bins in 1usize..40,
        ) {
            let h = Histogram::from_samples(bins, -10.0, 10.0, &samples).unwrap();
            prop_assert_eq!(h.total(), samples.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
        }

        #[test]
        fn prop_bin_index_monotone(
            a in -20.0f64..20.0,
            b in -20.0f64..20.0,
        ) {
            let h = Histogram::new(16, -10.0, 10.0).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(h.bin_index(lo) <= h.bin_index(hi));
        }

        #[test]
        fn prop_probabilities_normalized(
            samples in proptest::collection::vec(-5.0f64..5.0, 1..100),
        ) {
            let h = Histogram::from_samples(10, -5.0, 5.0, &samples).unwrap();
            let sum: f64 = h.probabilities().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
