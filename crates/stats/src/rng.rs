//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (weather generation, NN
//! initialization, random-shooting optimizers, Monte-Carlo verification)
//! takes its randomness from a seed so that experiments are bitwise
//! reproducible — a prerequisite for the determinism claims the paper
//! makes about the extracted decision-tree policy (Fig. 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a [`StdRng`] from a `u64` seed.
///
/// # Example
///
/// ```
/// use hvac_stats::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index using
/// SplitMix64 finalization, so that sub-components (e.g. each ensemble
/// member, each rollout worker) get decorrelated but reproducible streams.
pub fn split_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based producer of decorrelated child seeds.
///
/// # Example
///
/// ```
/// use hvac_stats::SeedStream;
///
/// let mut s = SeedStream::new(7);
/// let first = s.next_seed();
/// let second = s.next_seed();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    parent: u64,
    counter: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `parent`.
    pub fn new(parent: u64) -> Self {
        Self { parent, counter: 0 }
    }

    /// Produces the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.parent, self.counter);
        self.counter += 1;
        s
    }

    /// Produces the next child RNG.
    pub fn next_rng(&mut self) -> StdRng {
        seeded_rng(self.next_seed())
    }
}

/// Draws one standard-normal variate via the Box–Muller transform.
///
/// The workspace avoids a `rand_distr` dependency; this is the only
/// non-uniform distribution any component needs (AR(1) weather noise,
/// Eq. 5 data augmentation, NN weight initialization).
///
/// # Example
///
/// ```
/// use hvac_stats::{sample_standard_normal, seeded_rng};
///
/// let mut rng = seeded_rng(0);
/// let z = sample_standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std` is negative or non-finite.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0 && std.is_finite(), "std must be finite and >= 0");
    mean + std * sample_standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let av: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(9, 3), split_seed(9, 3));
        assert_ne!(split_seed(9, 3), split_seed(9, 4));
        assert_ne!(split_seed(9, 3), split_seed(8, 3));
    }

    #[test]
    fn seed_stream_counts_up() {
        let mut s = SeedStream::new(5);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_eq!(a, split_seed(5, 0));
        assert_eq!(b, split_seed(5, 1));
    }

    #[test]
    fn seed_stream_rngs_differ() {
        let mut s = SeedStream::new(11);
        let mut r1 = s.next_rng();
        let mut r2 = s.next_rng();
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn normal_samples_have_right_moments() {
        let mut rng = seeded_rng(99);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = sample_standard_normal(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_normal_scales_and_shifts() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += sample_normal(&mut rng, 5.0, 2.0);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn sample_normal_rejects_negative_std() {
        let mut rng = seeded_rng(1);
        let _ = sample_normal(&mut rng, 0.0, -1.0);
    }
}
