//! Running and batch summary statistics.

use crate::StatsError;

/// Numerically stable online mean/variance accumulator (Welford's
/// algorithm), plus min/max tracking.
///
/// Used by the evaluation harnesses to aggregate per-step metrics (energy,
/// comfort violation, decision latency) over month-long episodes without
/// storing every sample.
///
/// # Example
///
/// ```
/// use hvac_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.sample_std() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation. NaN observations are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 if fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot as a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std: self.sample_std(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
            sum: self.sum,
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// An immutable snapshot of basic statistics over a batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sum.
    pub sum: f64,
}

impl Summary {
    /// Computes a summary over a slice.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty slice.
    pub fn from_slice(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        Ok(xs.iter().copied().collect::<OnlineStats>().summary())
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std, self.min, self.max
        )
    }
}

/// Empirical quantiles of a batch of samples.
///
/// Quantiles are computed with linear interpolation between order
/// statistics (the same convention as NumPy's default).
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds the quantile structure from samples. NaNs are removed.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if no finite samples remain.
    pub fn from_samples(xs: &[f64]) -> Result<Self, StatsError> {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Ok(Self { sorted })
    }

    /// Returns the `q`-quantile for `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Number of retained (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Convenience: mean and *population* standard deviation of a slice in one
/// pass, matching the `sqrt(Σ(x−x̄)²/|X|)` term of the paper's Eq. 5.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn welford_mean_std(xs: &[f64]) -> Result<(f64, f64), StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let s: OnlineStats = xs.iter().copied().collect();
    Ok((s.mean(), s.population_std()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_std(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (mean, std) = welford_mean_std(&xs).unwrap();
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_error() {
        assert_eq!(welford_mean_std(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..40].iter().copied().collect();
        let b: OnlineStats = xs[40..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn quantiles_interpolate() {
        let q = Quantiles::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((q.median() - 2.5).abs() < 1e-12);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 4.0);
    }

    #[test]
    fn quantiles_single_sample() {
        let q = Quantiles::from_samples(&[7.0]).unwrap();
        assert_eq!(q.median(), 7.0);
        assert_eq!(q.quantile(0.9), 7.0);
    }

    #[test]
    fn quantiles_drop_nan() {
        let q = Quantiles::from_samples(&[f64::NAN, 3.0]).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn quantiles_all_nan_is_error() {
        assert!(Quantiles::from_samples(&[f64::NAN]).is_err());
    }

    #[test]
    fn summary_display_mentions_mean() {
        let s = Summary::from_slice(&[1.0, 3.0]).unwrap();
        assert!(s.to_string().contains("mean=2.0000"));
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.mean() >= s.min() - 1e-6);
            prop_assert!(s.mean() <= s.max() + 1e-6);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.sample_variance() >= -1e-9);
        }

        #[test]
        fn prop_quantile_monotone(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let q = Quantiles::from_samples(&xs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(q.quantile(lo) <= q.quantile(hi) + 1e-9);
        }

        #[test]
        fn prop_merge_associative_count(
            xs in proptest::collection::vec(-10.0f64..10.0, 3..60),
            split in 1usize..2,
        ) {
            let k = split.min(xs.len() - 1);
            let mut a: OnlineStats = xs[..k].iter().copied().collect();
            let b: OnlineStats = xs[k..].iter().copied().collect();
            a.merge(&b);
            prop_assert_eq!(a.count() as usize, xs.len());
        }
    }
}
