//! Information-theoretic measures over discrete distributions.
//!
//! The noise-level study of the paper (Section 3.2.1, Fig. 3) selects the
//! Gaussian augmentation scale by comparing the *Shannon entropy* of the
//! augmented historical-data distribution (larger is better — more
//! generalization) against the *Jensen–Shannon distance* to a reference
//! climate (smaller than the cross-city distance — still representative).

use crate::StatsError;

const LOG2: f64 = std::f64::consts::LN_2;

fn validate_distribution(p: &[f64]) -> Result<(), StatsError> {
    if p.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut sum = 0.0;
    for &x in p {
        if !x.is_finite() {
            return Err(StatsError::NonFinite { value: x });
        }
        if x < 0.0 {
            return Err(StatsError::NotADistribution { sum: x });
        }
        sum += x;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(StatsError::NotADistribution { sum });
    }
    Ok(())
}

/// Shannon entropy `H(p) = -Σ p_i log2 p_i` in bits.
///
/// Zero-probability bins contribute nothing (the `0 log 0 = 0` convention).
///
/// # Errors
///
/// Returns an error if `p` is empty, contains negative or non-finite
/// entries, or does not sum to 1 (within `1e-6`).
///
/// # Example
///
/// ```
/// use hvac_stats::shannon_entropy;
///
/// # fn main() -> Result<(), hvac_stats::StatsError> {
/// let h = shannon_entropy(&[0.5, 0.5])?;
/// assert!((h - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn shannon_entropy(p: &[f64]) -> Result<f64, StatsError> {
    validate_distribution(p)?;
    let mut h = 0.0;
    for &x in p {
        if x > 0.0 {
            h -= x * x.ln();
        }
    }
    Ok(h / LOG2)
}

/// Entropy normalized by the maximum achievable for the support size,
/// yielding a value in `[0, 1]`.
///
/// # Errors
///
/// Same conditions as [`shannon_entropy`]. A single-bin distribution has
/// zero maximum entropy; it returns `0.0` by convention.
pub fn normalized_entropy(p: &[f64]) -> Result<f64, StatsError> {
    let h = shannon_entropy(p)?;
    if p.len() <= 1 {
        return Ok(0.0);
    }
    Ok(h / (p.len() as f64).log2())
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits.
///
/// Where `p_i > 0` but `q_i == 0` the divergence is infinite; this
/// function returns `f64::INFINITY` in that case rather than erroring,
/// because it is a legitimate (if extreme) value of the measure.
///
/// # Errors
///
/// Returns an error if either input fails distribution validation or the
/// lengths differ.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, StatsError> {
    validate_distribution(p)?;
    validate_distribution(q)?;
    if p.len() != q.len() {
        return Err(StatsError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi == 0.0 {
                return Ok(f64::INFINITY);
            }
            d += pi * (pi / qi).ln();
        }
    }
    Ok(d / LOG2)
}

/// Jensen–Shannon divergence in bits: `JSD(p, q) = ½D(p‖m) + ½D(q‖m)` with
/// `m = ½(p+q)`.
///
/// Always finite and bounded by `[0, 1]` (base-2).
///
/// # Errors
///
/// Returns an error if either input fails distribution validation or the
/// lengths differ.
pub fn jensen_shannon_divergence(p: &[f64], q: &[f64]) -> Result<f64, StatsError> {
    validate_distribution(p)?;
    validate_distribution(q)?;
    if p.len() != q.len() {
        return Err(StatsError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    // m_i == 0 implies p_i == q_i == 0, so the KL terms are well defined.
    let mut d = 0.0;
    for (&pi, &mi) in p.iter().zip(&m) {
        if pi > 0.0 {
            d += 0.5 * pi * (pi / mi).ln();
        }
    }
    for (&qi, &mi) in q.iter().zip(&m) {
        if qi > 0.0 {
            d += 0.5 * qi * (qi / mi).ln();
        }
    }
    Ok((d / LOG2).clamp(0.0, 1.0))
}

/// Jensen–Shannon *distance* — the square root of the divergence — which
/// is a true metric. This is the quantity plotted in the paper's Fig. 3.
///
/// # Errors
///
/// Same conditions as [`jensen_shannon_divergence`].
///
/// # Example
///
/// ```
/// use hvac_stats::jensen_shannon_distance;
///
/// # fn main() -> Result<(), hvac_stats::StatsError> {
/// // Identical distributions are at distance zero.
/// let d = jensen_shannon_distance(&[0.3, 0.7], &[0.3, 0.7])?;
/// assert!(d.abs() < 1e-9);
/// // Disjoint distributions are at the maximum distance 1 (base 2).
/// let d = jensen_shannon_distance(&[1.0, 0.0], &[0.0, 1.0])?;
/// assert!((d - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn jensen_shannon_distance(p: &[f64], q: &[f64]) -> Result<f64, StatsError> {
    Ok(jensen_shannon_divergence(p, q)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = vec![0.25; 4];
        assert!((shannon_entropy(&p).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        assert!(shannon_entropy(&[1.0, 0.0, 0.0]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn entropy_rejects_non_distribution() {
        assert!(shannon_entropy(&[0.5, 0.2]).is_err());
        assert!(shannon_entropy(&[-0.5, 1.5]).is_err());
        assert!(shannon_entropy(&[]).is_err());
        assert!(shannon_entropy(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn normalized_entropy_bounds() {
        assert!((normalized_entropy(&[0.25; 4]).unwrap() - 1.0).abs() < 1e-12);
        assert!(normalized_entropy(&[1.0]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_self_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_missing_support_is_infinite() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert_eq!(kl_divergence(&p, &q).unwrap(), f64::INFINITY);
    }

    #[test]
    fn kl_length_mismatch() {
        assert!(matches!(
            kl_divergence(&[1.0], &[0.5, 0.5]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn jsd_disjoint_is_one_bit() {
        let d = jensen_shannon_divergence(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_distance_triangle_inequality_spot_check() {
        let a = [0.7, 0.2, 0.1];
        let b = [0.1, 0.8, 0.1];
        let c = [0.3, 0.3, 0.4];
        let dab = jensen_shannon_distance(&a, &b).unwrap();
        let dac = jensen_shannon_distance(&a, &c).unwrap();
        let dcb = jensen_shannon_distance(&c, &b).unwrap();
        assert!(dab <= dac + dcb + 1e-12);
    }

    fn arb_distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(1e-3f64..1.0, n).prop_map(|v| {
            let s: f64 = v.iter().sum();
            v.into_iter().map(|x| x / s).collect()
        })
    }

    proptest! {
        #[test]
        fn prop_entropy_bounds(p in arb_distribution(8)) {
            let h = shannon_entropy(&p).unwrap();
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= 3.0 + 1e-9); // log2(8)
        }

        #[test]
        fn prop_jsd_symmetric(p in arb_distribution(6), q in arb_distribution(6)) {
            let d1 = jensen_shannon_divergence(&p, &q).unwrap();
            let d2 = jensen_shannon_divergence(&q, &p).unwrap();
            prop_assert!((d1 - d2).abs() < 1e-9);
        }

        #[test]
        fn prop_jsd_bounded(p in arb_distribution(6), q in arb_distribution(6)) {
            let d = jensen_shannon_divergence(&p, &q).unwrap();
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn prop_jsd_identity_of_indiscernibles(p in arb_distribution(5)) {
            let d = jensen_shannon_divergence(&p, &p).unwrap();
            prop_assert!(d.abs() < 1e-9);
        }

        #[test]
        fn prop_kl_nonnegative(p in arb_distribution(5), q in arb_distribution(5)) {
            let d = kl_divergence(&p, &q).unwrap();
            prop_assert!(d >= -1e-9);
        }
    }
}
