//! Statistical primitives shared across the Veri-HVAC reproduction.
//!
//! This crate is the numerical bedrock of the workspace: it provides
//! histograms, information-theoretic measures (Shannon entropy,
//! Kullback–Leibler divergence, Jensen–Shannon divergence/distance),
//! running summary statistics, and small deterministic-RNG helpers.
//!
//! The paper relies on these primitives in two places:
//!
//! * **Section 3.2.1 (Eq. 5)** — choosing the noise level for
//!   importance-sampled decision-dataset generation compares the
//!   *information entropy* and *Jensen–Shannon distance* of augmented
//!   historical-data distributions (Fig. 3).
//! * **Section 4.2** — evaluation aggregates energy and comfort metrics
//!   over month-long simulated episodes.
//!
//! # Example
//!
//! ```
//! use hvac_stats::{Histogram, jensen_shannon_distance};
//!
//! # fn main() -> Result<(), hvac_stats::StatsError> {
//! let a = Histogram::from_samples(20, 0.0, 10.0, &[1.0, 2.0, 2.5, 7.0])?;
//! let b = Histogram::from_samples(20, 0.0, 10.0, &[1.1, 2.1, 2.4, 7.2])?;
//! let d = jensen_shannon_distance(&a.probabilities(), &b.probabilities())?;
//! assert!(d < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod histogram;
mod info;
mod rng;
mod summary;

pub use error::StatsError;
pub use histogram::Histogram;
pub use info::{
    jensen_shannon_distance, jensen_shannon_divergence, kl_divergence, normalized_entropy,
    shannon_entropy,
};
pub use rng::{sample_normal, sample_standard_normal, seeded_rng, split_seed, SeedStream};
pub use summary::{welford_mean_std, OnlineStats, Quantiles, Summary};
