//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for statistical computations.
///
/// All fallible functions in this crate return `Result<_, StatsError>`.
/// The variants carry enough context to diagnose the failing call without
/// needing a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty where at least one element is required.
    EmptyInput,
    /// A histogram was requested with zero bins.
    ZeroBins,
    /// A histogram range was degenerate or reversed (`lo >= hi`).
    InvalidRange {
        /// Lower edge supplied by the caller.
        lo: f64,
        /// Upper edge supplied by the caller.
        hi: f64,
    },
    /// Two probability vectors had different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A probability vector did not sum to ~1 or contained negatives.
    NotADistribution {
        /// The offending sum.
        sum: f64,
    },
    /// A value was not finite (NaN or infinite) where finiteness is required.
    NonFinite {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input slice was empty"),
            StatsError::ZeroBins => write!(f, "histogram requires at least one bin"),
            StatsError::InvalidRange { lo, hi } => {
                write!(f, "invalid histogram range [{lo}, {hi}]")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::NotADistribution { sum } => {
                write!(f, "vector is not a probability distribution (sum = {sum})")
            }
            StatsError::NonFinite { value } => {
                write!(f, "value is not finite: {value}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StatsError::EmptyInput,
            StatsError::ZeroBins,
            StatsError::InvalidRange { lo: 1.0, hi: 0.0 },
            StatsError::LengthMismatch { left: 2, right: 3 },
            StatsError::NotADistribution { sum: 0.5 },
            StatsError::NonFinite { value: f64::NAN },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
