//! The combined verify-and-correct pass and its report (Table 2).

use crate::error::VerifyError;
use crate::path::{correct_leaf, verify_paths, CorrectionStrategy, PathVerification};
use crate::probabilistic::{verify_criterion_1, SafeProbability};
use hvac_control::{DtPolicy, Predictor};
use hvac_env::ComfortRange;
use hvac_extract::NoiseAugmenter;
use hvac_telemetry::json::{self, ObjectWriter};

const REPORT_FORMAT: &str = "verification_report v1";

/// Settings for the full verification pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerificationConfig {
    /// Comfort range defining the safe set.
    pub comfort: ComfortRange,
    /// Monte-Carlo samples for criterion #1.
    pub samples: usize,
    /// The building manager's probability threshold `l`.
    pub threshold: f64,
    /// Seed for the probabilistic stage.
    pub seed: u64,
    /// How failed leaves are repaired.
    pub correction: CorrectionStrategy,
}

impl VerificationConfig {
    /// Reference settings: winter comfort, 2000 samples, `l = 0.9`.
    pub fn paper() -> Self {
        Self {
            comfort: ComfortRange::winter(),
            samples: 2000,
            threshold: 0.9,
            seed: 0,
            correction: CorrectionStrategy::default(),
        }
    }
}

impl Default for VerificationConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The verification summary the paper reports per city in Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Total number of tree nodes.
    pub total_nodes: usize,
    /// Number of leaf nodes (unique paths).
    pub leaf_nodes: usize,
    /// Criterion-#1 result (estimated on the corrected tree).
    pub criterion_1: SafeProbability,
    /// Leaves corrected because of criterion #2.
    pub corrected_criterion_2: usize,
    /// Leaves corrected because of criterion #3.
    pub corrected_criterion_3: usize,
}

impl VerificationReport {
    /// Whether the corrected policy satisfies all of Eq. 4.
    pub fn verified(&self) -> bool {
        self.criterion_1.verified()
    }

    /// Conservative variant of [`VerificationReport::verified`]: the
    /// Wilson lower bound at `z` standard normal quantiles (e.g. `1.96`
    /// for 95%) must clear the threshold, not just the point estimate.
    pub fn verified_conservative(&self, z: f64) -> bool {
        self.criterion_1.verified_conservative(z)
    }

    /// Serializes the report as a flat JSON object.
    pub fn to_json_string(&self) -> String {
        let mut o = ObjectWriter::new();
        o.str_field("format", REPORT_FORMAT);
        o.u64_field("total_nodes", self.total_nodes as u64);
        o.u64_field("leaf_nodes", self.leaf_nodes as u64);
        o.u64_field("safe", self.criterion_1.safe as u64);
        o.u64_field("total", self.criterion_1.total as u64);
        o.f64_field("threshold", self.criterion_1.threshold);
        o.u64_field("corrected_criterion_2", self.corrected_criterion_2 as u64);
        o.u64_field("corrected_criterion_3", self.corrected_criterion_3 as u64);
        o.finish()
    }

    /// Parses a report from [`VerificationReport::to_json_string`]
    /// output. The float threshold round-trips bitwise (written with
    /// `{:?}` precision).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadReport`] for malformed JSON, a missing
    /// field, or an unknown format tag.
    pub fn from_json_string(text: &str) -> Result<Self, VerifyError> {
        let bad = |what: &'static str| VerifyError::BadReport { what };
        let v = json::parse(text).map_err(|_| bad("json"))?;
        if v.get("format").and_then(|f| f.as_str()) != Some(REPORT_FORMAT) {
            return Err(bad("format"));
        }
        let u = |name: &'static str| {
            v.get(name)
                .and_then(|x| x.as_u64())
                .map(|x| x as usize)
                .ok_or(bad(name))
        };
        Ok(Self {
            total_nodes: u("total_nodes")?,
            leaf_nodes: u("leaf_nodes")?,
            criterion_1: SafeProbability {
                safe: u("safe")?,
                total: u("total")?,
                threshold: v
                    .get("threshold")
                    .and_then(|x| x.as_f64())
                    .ok_or(bad("threshold"))?,
            },
            corrected_criterion_2: u("corrected_criterion_2")?,
            corrected_criterion_3: u("corrected_criterion_3")?,
        })
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Total No. of nodes                      {}",
            self.total_nodes
        )?;
        writeln!(
            f,
            "No. of leaf nodes (unique path)         {}",
            self.leaf_nodes
        )?;
        writeln!(
            f,
            "Safe probability estimated by crit. #1  {:.1}%",
            100.0 * self.criterion_1.probability()
        )?;
        let (lo, hi) = self.criterion_1.wilson_interval(1.96);
        writeln!(
            f,
            "95% Wilson interval for crit. #1        [{:.1}%, {:.1}%]",
            100.0 * lo,
            100.0 * hi
        )?;
        writeln!(
            f,
            "No. of nodes corrected by crit. #2      {}",
            self.corrected_criterion_2
        )?;
        write!(
            f,
            "No. of nodes corrected by crit. #3      {}",
            self.corrected_criterion_3
        )
    }
}

/// Runs the full offline verification procedure of Section 3.3:
///
/// 1. Algorithm 1 detects criterion-#2/#3 violations and corrects the
///    failing leaves in place (comfort-median action).
/// 2. Criterion #1 is estimated on the corrected policy by the one-step
///    Monte-Carlo method.
///
/// # Errors
///
/// Propagates parameter and tree errors from the two stages.
pub fn verify_and_correct<Pred: Predictor>(
    policy: &mut DtPolicy,
    predictor: &Pred,
    augmenter: &NoiseAugmenter,
    config: &VerificationConfig,
) -> Result<VerificationReport, VerifyError> {
    let paths_checked = policy.tree().leaf_count();
    let path_result: PathVerification = verify_paths(policy, &config.comfort)?;
    let corrected_2 = path_result.criterion_2_count();
    let corrected_3 = path_result.criterion_3_count();
    let mut leaves_corrected = 0u64;
    for (leaf, too_warm, too_cold, _) in path_result.merged_by_leaf() {
        correct_leaf(
            policy,
            leaf,
            too_warm,
            too_cold,
            &config.comfort,
            config.correction,
        )?;
        leaves_corrected += 1;
    }
    hvac_telemetry::counter("verify.paths_checked").add(paths_checked as u64);
    hvac_telemetry::counter("verify.leaves_corrected").add(leaves_corrected);

    // Corrections (and zero-gain CART splits) can leave sibling leaves
    // with identical actions; collapse them so the reported/deployed
    // tree is minimal. Behavior-preserving (see DecisionTree::simplify).
    policy.tree_mut().simplify();

    let criterion_1 = verify_criterion_1(
        policy,
        predictor,
        augmenter,
        &config.comfort,
        config.samples,
        config.threshold,
        config.seed,
    )?;

    Ok(VerificationReport {
        total_nodes: policy.tree().node_count(),
        leaf_nodes: policy.tree().leaf_count(),
        criterion_1,
        corrected_criterion_2: corrected_2,
        corrected_criterion_3: corrected_3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::space::feature;
    use hvac_env::{ActionSpace, Observation, SetpointAction, POLICY_INPUT_DIM};

    struct Stable;
    impl Predictor for Stable {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let target = f64::from(action.heating()).clamp(20.5, 23.0);
            obs.zone_temperature + 0.6 * (target - obs.zone_temperature)
        }
    }

    fn augmenter() -> NoiseAugmenter {
        let rows: Vec<[f64; POLICY_INPUT_DIM]> = (0..40)
            .map(|i| {
                let mut r = [0.0; POLICY_INPUT_DIM];
                r[feature::ZONE_TEMPERATURE] = 18.0 + (i % 8) as f64;
                r[feature::OUTDOOR_TEMPERATURE] = -3.0;
                r[feature::RELATIVE_HUMIDITY] = 60.0;
                r
            })
            .collect();
        NoiseAugmenter::fit(rows, 0.05).unwrap()
    }

    /// A policy with deliberate #2/#3 violations (cold → off, hot → no
    /// cooling).
    fn bad_policy() -> DtPolicy {
        let space = ActionSpace::new();
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let temp = 12.0 + i as f64 * 0.3;
            let mut row = [0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row.to_vec());
            let action = if temp < 20.0 {
                SetpointAction::off() // lazy heating → #3 violation
            } else if temp > 23.5 {
                SetpointAction::new(15, 30).unwrap() // lazy cooling → #2
            } else {
                SetpointAction::new(21, 23).unwrap()
            };
            labels.push(space.index_of(action));
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    #[test]
    fn full_pass_corrects_and_verifies() {
        let mut policy = bad_policy();
        let config = VerificationConfig {
            samples: 500,
            ..VerificationConfig::paper()
        };
        let report = verify_and_correct(&mut policy, &Stable, &augmenter(), &config).unwrap();
        assert!(report.corrected_criterion_2 > 0 || report.corrected_criterion_3 > 0);
        // After correction, re-running Algorithm 1 finds nothing.
        let recheck = verify_paths(&policy, &config.comfort).unwrap();
        assert!(recheck.passed());
        // Stable contraction dynamics keep safe starts safe.
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn report_counts_match_tree() {
        let mut policy = bad_policy();
        let config = VerificationConfig {
            samples: 100,
            ..VerificationConfig::paper()
        };
        let report = verify_and_correct(&mut policy, &Stable, &augmenter(), &config).unwrap();
        assert_eq!(report.total_nodes, policy.tree().node_count());
        assert_eq!(report.leaf_nodes, policy.tree().leaf_count());
    }

    #[test]
    fn display_has_table2_rows() {
        let mut policy = bad_policy();
        let config = VerificationConfig {
            samples: 100,
            ..VerificationConfig::paper()
        };
        let report = verify_and_correct(&mut policy, &Stable, &augmenter(), &config).unwrap();
        let s = report.to_string();
        assert!(s.contains("Total No. of nodes"));
        assert!(s.contains("crit. #1"));
        assert!(s.contains("crit. #2"));
        assert!(s.contains("crit. #3"));
    }

    #[test]
    fn display_includes_wilson_interval() {
        let report = VerificationReport {
            total_nodes: 11,
            leaf_nodes: 6,
            criterion_1: SafeProbability {
                safe: 95,
                total: 100,
                threshold: 0.9,
            },
            corrected_criterion_2: 1,
            corrected_criterion_3: 0,
        };
        let s = report.to_string();
        assert!(s.contains("Wilson interval"), "{s}");
        let (lo, hi) = report.criterion_1.wilson_interval(1.96);
        assert!(lo < 0.95 && 0.95 < hi);
    }

    #[test]
    fn conservative_gate_is_stricter_than_point_estimate() {
        let report = VerificationReport {
            total_nodes: 11,
            leaf_nodes: 6,
            criterion_1: SafeProbability {
                safe: 92,
                total: 100,
                threshold: 0.9,
            },
            corrected_criterion_2: 0,
            corrected_criterion_3: 0,
        };
        assert!(report.verified());
        assert!(!report.verified_conservative(1.96));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = VerificationReport {
            total_nodes: 123,
            leaf_nodes: 62,
            criterion_1: SafeProbability {
                safe: 1873,
                total: 2000,
                threshold: 0.9,
            },
            corrected_criterion_2: 3,
            corrected_criterion_3: 7,
        };
        let restored = VerificationReport::from_json_string(&report.to_json_string()).unwrap();
        assert_eq!(report, restored);
    }

    #[test]
    fn json_rejects_garbage() {
        for text in [
            "",
            "{}",
            r#"{"format":"verification_report v9"}"#,
            r#"{"format":"verification_report v1","total_nodes":1}"#, // missing fields
            "not json",
        ] {
            assert!(
                VerificationReport::from_json_string(text).is_err(),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn idempotent_on_safe_policy() {
        let mut policy = bad_policy();
        let config = VerificationConfig {
            samples: 100,
            ..VerificationConfig::paper()
        };
        let _ = verify_and_correct(&mut policy, &Stable, &augmenter(), &config).unwrap();
        let second = verify_and_correct(&mut policy, &Stable, &augmenter(), &config).unwrap();
        assert_eq!(second.corrected_criterion_2, 0);
        assert_eq!(second.corrected_criterion_3, 0);
    }
}
