//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for verification operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The requested sample count was zero.
    ZeroSamples,
    /// The probability threshold `l` was outside `[0, 1)`.
    BadThreshold {
        /// The rejected value.
        value: f64,
    },
    /// The verification horizon was zero.
    ZeroHorizon,
    /// Rejection sampling failed to find a safe-start state (the
    /// augmented distribution never intersects the comfort range).
    NoSafeStates,
    /// A serialized verification report failed to parse.
    BadReport {
        /// Which part of the report was malformed or missing.
        what: &'static str,
    },
    /// An underlying decision-tree error.
    Tree(hvac_dtree::TreeError),
    /// An underlying environment error.
    Env(hvac_env::EnvError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ZeroSamples => write!(f, "sample count must be positive"),
            VerifyError::BadThreshold { value } => {
                write!(f, "probability threshold {value} must be in [0, 1)")
            }
            VerifyError::ZeroHorizon => write!(f, "verification horizon must be positive"),
            VerifyError::NoSafeStates => {
                write!(
                    f,
                    "could not sample any safe-start state from the input distribution"
                )
            }
            VerifyError::BadReport { what } => {
                write!(f, "malformed verification report: bad {what}")
            }
            VerifyError::Tree(e) => write!(f, "tree error: {e}"),
            VerifyError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Tree(e) => Some(e),
            VerifyError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hvac_dtree::TreeError> for VerifyError {
    fn from(e: hvac_dtree::TreeError) -> Self {
        VerifyError::Tree(e)
    }
}

impl From<hvac_env::EnvError> for VerifyError {
    fn from(e: hvac_env::EnvError) -> Self {
        VerifyError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            VerifyError::ZeroSamples,
            VerifyError::BadThreshold { value: 1.5 },
            VerifyError::ZeroHorizon,
            VerifyError::NoSafeStates,
            VerifyError::Tree(hvac_dtree::TreeError::EmptyDataset),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        assert!(VerifyError::Tree(hvac_dtree::TreeError::EmptyDataset)
            .source()
            .is_some());
        assert!(VerifyError::ZeroSamples.source().is_none());
    }
}
