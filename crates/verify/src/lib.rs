//! Offline verification of decision-tree HVAC policies.
//!
//! Implements the paper's three-part verification criterion (Eq. 4):
//!
//! * **Criterion #1** (probabilistic): starting from a safe state, the
//!   policy keeps the zone inside the comfort range with probability
//!   above a threshold `l` chosen by the building manager. Verified by
//!   the paper's *one-step* Monte-Carlo method (Section 3.3.2), which it
//!   proves equivalent to H-step bootstrap rollouts while being
//!   parallelizable and `H×` cheaper; both are implemented here so the
//!   equivalence is testable.
//! * **Criterion #2** (formal): if the zone is *above* the comfort range
//!   the commanded setpoint must pull it down (`π(s, d) < s_t`).
//! * **Criterion #3** (formal): if the zone is *below* the range the
//!   setpoint must pull it up (`π(s, d) > s_t`).
//!
//! Criteria #2/#3 are checked by **Algorithm 1** (decision-path
//! verification): every leaf's unique root path induces an axis-aligned
//! input box; leaves whose box intersects the unsafe regions are checked
//! against the rules above and *corrected in place* by rewriting their
//! setpoints to the comfort-zone median.
//!
//! # Example
//!
//! ```no_run
//! use hvac_verify::{verify_and_correct, VerificationConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut policy: hvac_control::DtPolicy = unimplemented!();
//! # let model: hvac_dynamics::DynamicsModel = unimplemented!();
//! # let augmenter: hvac_extract::NoiseAugmenter = unimplemented!();
//! let report = verify_and_correct(
//!     &mut policy,
//!     &model,
//!     &augmenter,
//!     &VerificationConfig::paper(),
//! )?;
//! println!("{report}");
//! assert!(report.criterion_1.probability() > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod error;
pub mod path;
pub mod probabilistic;
pub mod reachability;
pub mod report;
pub mod runtime;

pub use certificate::{Certificate, CERTIFICATE_FORMAT, CERTIFICATE_WILSON_Z};
pub use error::VerifyError;
pub use path::{
    correct_leaf, corrected_action, median_action, verify_paths, CorrectionStrategy,
    PathVerification, PathViolation, ViolatedCriterion,
};
pub use probabilistic::{verify_criterion_1, verify_criterion_1_bootstrap, SafeProbability};
pub use reachability::{reachability_tube, ReachabilityTube};
pub use report::{verify_and_correct, VerificationConfig, VerificationReport};
pub use runtime::SafetyAudit;
