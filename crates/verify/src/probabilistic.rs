//! Criterion #1 — probabilistic verification (Section 3.3.2).
//!
//! Estimates the probability that, starting from a safe state drawn
//! from the augmented input distribution `p̂(x)`, the policy's next step
//! stays inside the comfort range. The paper proves that this *one-step*
//! check is equivalent to classifying full H-step bootstrap rollouts
//! while needing `H×` fewer model evaluations; the bootstrap variant is
//! provided so tests (and the ablation bench) can observe the agreement.

use crate::error::VerifyError;
use hvac_control::Predictor;
use hvac_env::space::feature;
use hvac_env::{ComfortRange, Observation, Policy};
use hvac_extract::NoiseAugmenter;
use hvac_stats::seeded_rng;
use rand::Rng;

/// Outcome of a probabilistic verification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeProbability {
    /// Samples that stayed in the comfort range.
    pub safe: usize,
    /// Total samples evaluated.
    pub total: usize,
    /// The threshold `l` the estimate was compared against.
    pub threshold: f64,
}

impl SafeProbability {
    /// The estimated safe probability.
    pub fn probability(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.safe as f64 / self.total as f64
        }
    }

    /// Whether the estimate clears the threshold
    /// (`E[z̄ ≥ s ≥ z̲] > l` in Eq. 4).
    pub fn verified(&self) -> bool {
        self.probability() > self.threshold
    }

    /// Wilson score interval for the safe probability at confidence
    /// `z` standard normal quantiles (e.g. `1.96` for 95%).
    ///
    /// A Monte-Carlo estimate alone says nothing about how much to
    /// trust it; the building manager's threshold `l` should be
    /// compared against the interval's *lower* bound for a conservative
    /// go/no-go decision (see [`SafeProbability::verified_conservative`]).
    ///
    /// # Panics
    ///
    /// Panics if `z` is negative or non-finite.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        assert!(z >= 0.0 && z.is_finite(), "z must be finite and >= 0");
        if self.total == 0 {
            return (0.0, 1.0);
        }
        let n = self.total as f64;
        let p = self.probability();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Conservative verification: the Wilson *lower* bound (at the given
    /// `z`) must clear the threshold, not just the point estimate.
    pub fn verified_conservative(&self, z: f64) -> bool {
        self.wilson_interval(z).0 > self.threshold
    }
}

impl std::fmt::Display for SafeProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% safe ({}/{}, threshold {:.0}%)",
            100.0 * self.probability(),
            self.safe,
            self.total,
            100.0 * self.threshold,
        )
    }
}

fn validate(samples: usize, threshold: f64) -> Result<(), VerifyError> {
    if samples == 0 {
        return Err(VerifyError::ZeroSamples);
    }
    if !(0.0..1.0).contains(&threshold) {
        return Err(VerifyError::BadThreshold { value: threshold });
    }
    Ok(())
}

/// Draws a safe-start observation: an augmented input whose zone
/// temperature is projected into the comfort range (rejection sampling
/// with a uniform-in-range fallback, so the draw always succeeds).
fn sample_safe_start<R: Rng + ?Sized>(
    augmenter: &NoiseAugmenter,
    comfort: &ComfortRange,
    rng: &mut R,
) -> Observation {
    for _ in 0..16 {
        let x = augmenter.sample(rng);
        if comfort.contains(x[feature::ZONE_TEMPERATURE]) {
            return Observation::from_vector(&x);
        }
    }
    let mut x = augmenter.sample(rng);
    x[feature::ZONE_TEMPERATURE] = rng.gen_range(comfort.lo()..=comfort.hi());
    Observation::from_vector(&x)
}

/// One-step probabilistic verification (the paper's method).
///
/// # Errors
///
/// Returns [`VerifyError::ZeroSamples`] / [`VerifyError::BadThreshold`]
/// for invalid parameters.
pub fn verify_criterion_1<Pol, Pred>(
    policy: &mut Pol,
    predictor: &Pred,
    augmenter: &NoiseAugmenter,
    comfort: &ComfortRange,
    samples: usize,
    threshold: f64,
    seed: u64,
) -> Result<SafeProbability, VerifyError>
where
    Pol: Policy,
    Pred: Predictor,
{
    validate(samples, threshold)?;
    let mut rng = seeded_rng(seed);
    // Sample every safe start and decide every action up front, then
    // resolve all one-step predictions in a single batched model call.
    // The verifier's RNG only feeds `sample_safe_start` and the policy's
    // internal stream only feeds `decide`, so hoisting the phases leaves
    // both streams — and therefore the estimate — bit-identical to the
    // interleaved sample/decide/predict loop this replaces.
    let mut starts = Vec::with_capacity(samples);
    let mut actions = Vec::with_capacity(samples);
    for _ in 0..samples {
        let obs = sample_safe_start(augmenter, comfort, &mut rng);
        actions.push(policy.decide(&obs));
        starts.push(obs);
    }
    let mut next = vec![0.0; samples];
    predictor.predict_next_batch(&starts, &actions, &mut next);
    let safe = next.iter().filter(|&&t| comfort.contains(t)).count();
    Ok(SafeProbability {
        safe,
        total: samples,
        threshold,
    })
}

/// H-step bootstrap verification (the naive method the paper's proof
/// replaces): each sampled safe start is rolled out `horizon` steps
/// under a persistence disturbance forecast, and counts as safe only if
/// *every* step stays in the comfort range.
///
/// # Errors
///
/// Returns [`VerifyError::ZeroHorizon`] for `horizon == 0` plus the
/// parameter errors of [`verify_criterion_1`].
#[allow(clippy::too_many_arguments)] // mirrors verify_criterion_1 plus the horizon
pub fn verify_criterion_1_bootstrap<Pol, Pred>(
    policy: &mut Pol,
    predictor: &Pred,
    augmenter: &NoiseAugmenter,
    comfort: &ComfortRange,
    samples: usize,
    horizon: usize,
    threshold: f64,
    seed: u64,
) -> Result<SafeProbability, VerifyError>
where
    Pol: Policy,
    Pred: Predictor,
{
    validate(samples, threshold)?;
    if horizon == 0 {
        return Err(VerifyError::ZeroHorizon);
    }
    let mut rng = seeded_rng(seed);
    let mut safe = 0;
    for _ in 0..samples {
        let mut obs = sample_safe_start(augmenter, comfort, &mut rng);
        let mut ok = true;
        for _ in 0..horizon {
            let action = policy.decide(&obs);
            let next = predictor.predict_next(&obs, action);
            if !comfort.contains(next) {
                ok = false;
                break;
            }
            obs.zone_temperature = next;
        }
        if ok {
            safe += 1;
        }
    }
    Ok(SafeProbability {
        safe,
        total: samples,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::{SetpointAction, POLICY_INPUT_DIM};

    /// Predictor that decays the zone toward the heating setpoint.
    struct Stable;
    impl Predictor for Stable {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let target = f64::from(action.heating()).max(20.5);
            obs.zone_temperature + 0.5 * (target.min(23.0) - obs.zone_temperature)
        }
    }

    /// Predictor that always escapes the comfort range.
    struct Runaway;
    impl Predictor for Runaway {
        fn predict_next(&self, _obs: &Observation, _action: SetpointAction) -> f64 {
            50.0
        }
    }

    struct Hold;
    impl Policy for Hold {
        fn decide(&mut self, _obs: &Observation) -> SetpointAction {
            SetpointAction::new(21, 24).unwrap()
        }
        fn name(&self) -> &str {
            "hold"
        }
    }

    fn augmenter() -> NoiseAugmenter {
        let rows: Vec<[f64; POLICY_INPUT_DIM]> = (0..50)
            .map(|i| {
                let mut r = [0.0; POLICY_INPUT_DIM];
                r[feature::ZONE_TEMPERATURE] = 19.0 + (i % 6) as f64;
                r[feature::OUTDOOR_TEMPERATURE] = -2.0;
                r[feature::RELATIVE_HUMIDITY] = 60.0;
                r
            })
            .collect();
        NoiseAugmenter::fit(rows, 0.05).unwrap()
    }

    #[test]
    fn stable_system_verifies() {
        let p = verify_criterion_1(
            &mut Hold,
            &Stable,
            &augmenter(),
            &ComfortRange::winter(),
            500,
            0.9,
            0,
        )
        .unwrap();
        assert!(p.verified(), "{p}");
        assert_eq!(p.total, 500);
    }

    #[test]
    fn runaway_system_fails() {
        let p = verify_criterion_1(
            &mut Hold,
            &Runaway,
            &augmenter(),
            &ComfortRange::winter(),
            200,
            0.9,
            0,
        )
        .unwrap();
        assert_eq!(p.safe, 0);
        assert!(!p.verified());
    }

    #[test]
    fn bootstrap_agrees_with_one_step_on_stable_system() {
        let comfort = ComfortRange::winter();
        let one =
            verify_criterion_1(&mut Hold, &Stable, &augmenter(), &comfort, 400, 0.9, 1).unwrap();
        let boot = verify_criterion_1_bootstrap(
            &mut Hold,
            &Stable,
            &augmenter(),
            &comfort,
            400,
            20,
            0.9,
            1,
        )
        .unwrap();
        // The paper's equivalence: both classify the stable system as
        // safe (the one-step estimate cannot be *lower* in the limit for
        // a contraction like Stable).
        assert!(one.verified());
        assert!(boot.verified());
        assert!((one.probability() - boot.probability()).abs() < 0.1);
    }

    #[test]
    fn parameters_validated() {
        let comfort = ComfortRange::winter();
        assert!(matches!(
            verify_criterion_1(&mut Hold, &Stable, &augmenter(), &comfort, 0, 0.9, 0),
            Err(VerifyError::ZeroSamples)
        ));
        assert!(matches!(
            verify_criterion_1(&mut Hold, &Stable, &augmenter(), &comfort, 10, 1.0, 0),
            Err(VerifyError::BadThreshold { .. })
        ));
        assert!(matches!(
            verify_criterion_1_bootstrap(&mut Hold, &Stable, &augmenter(), &comfort, 10, 0, 0.9, 0),
            Err(VerifyError::ZeroHorizon)
        ));
    }

    #[test]
    fn verification_is_seeded() {
        let comfort = ComfortRange::winter();
        let a =
            verify_criterion_1(&mut Hold, &Stable, &augmenter(), &comfort, 100, 0.9, 5).unwrap();
        let b =
            verify_criterion_1(&mut Hold, &Stable, &augmenter(), &comfort, 100, 0.9, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn safe_starts_are_in_range() {
        let mut rng = seeded_rng(0);
        let comfort = ComfortRange::winter();
        for _ in 0..200 {
            let obs = sample_safe_start(&augmenter(), &comfort, &mut rng);
            assert!(comfort.contains(obs.zone_temperature));
        }
    }

    #[test]
    fn wilson_interval_brackets_point_estimate() {
        let p = SafeProbability {
            safe: 95,
            total: 100,
            threshold: 0.9,
        };
        let (lo, hi) = p.wilson_interval(1.96);
        assert!(lo < 0.95 && 0.95 < hi);
        assert!(lo > 0.85 && hi < 1.0);
    }

    #[test]
    fn wilson_interval_narrows_with_samples() {
        let small = SafeProbability {
            safe: 95,
            total: 100,
            threshold: 0.9,
        };
        let large = SafeProbability {
            safe: 9500,
            total: 10_000,
            threshold: 0.9,
        };
        let width = |p: &SafeProbability| {
            let (lo, hi) = p.wilson_interval(1.96);
            hi - lo
        };
        assert!(width(&large) < width(&small) / 2.0);
    }

    #[test]
    fn conservative_verification_is_stricter() {
        // 92/100 safe clears l=0.9 on the point estimate but not on the
        // 95% Wilson lower bound.
        let p = SafeProbability {
            safe: 92,
            total: 100,
            threshold: 0.9,
        };
        assert!(p.verified());
        assert!(!p.verified_conservative(1.96));
        // With 10k samples at the same rate, both agree.
        let p = SafeProbability {
            safe: 9200,
            total: 10_000,
            threshold: 0.9,
        };
        assert!(p.verified());
        assert!(p.verified_conservative(1.96));
    }

    #[test]
    fn wilson_degenerate_cases() {
        let empty = SafeProbability {
            safe: 0,
            total: 0,
            threshold: 0.9,
        };
        assert_eq!(empty.wilson_interval(1.96), (0.0, 1.0));
        let all = SafeProbability {
            safe: 50,
            total: 50,
            threshold: 0.9,
        };
        let (lo, hi) = all.wilson_interval(1.96);
        assert!(lo > 0.9 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "z must be finite")]
    fn wilson_rejects_negative_z() {
        let p = SafeProbability {
            safe: 1,
            total: 2,
            threshold: 0.5,
        };
        let _ = p.wilson_interval(-1.0);
    }

    #[test]
    fn display_formats_percentage() {
        let p = SafeProbability {
            safe: 95,
            total: 100,
            threshold: 0.9,
        };
        assert!(p.to_string().contains("95.0%"));
    }

    #[test]
    fn empty_probability_is_zero() {
        let p = SafeProbability {
            safe: 0,
            total: 0,
            threshold: 0.9,
        };
        assert_eq!(p.probability(), 0.0);
        assert!(!p.verified());
    }
}
