//! Forward reachability tubes (Eq. 3).
//!
//! `R⁺(s₀)|π^H` is the set of states reachable within `H` steps under
//! policy `π`. With a deterministic policy and a point-estimate dynamics
//! model, one start state yields one trajectory; the *tube* is the
//! Monte-Carlo union over sampled disturbance scenarios. The tube's
//! interval hull gives a quick visual/numeric safety summary
//! ("does the tube stay inside the comfort range?").

use crate::error::VerifyError;
use hvac_control::Predictor;
use hvac_env::{ComfortRange, Observation, Policy};
use hvac_extract::NoiseAugmenter;
use hvac_stats::seeded_rng;

/// A forward reachability tube: per-step min/max over sampled
/// trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityTube {
    /// Per-step lower envelope of the zone temperature, °C.
    pub lower: Vec<f64>,
    /// Per-step upper envelope, °C.
    pub upper: Vec<f64>,
}

impl ReachabilityTube {
    /// Horizon length.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the tube is empty.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Whether the whole tube stays within the comfort range — i.e. all
    /// states in `R⁺` are safe.
    pub fn within(&self, comfort: &ComfortRange) -> bool {
        self.lower
            .iter()
            .zip(&self.upper)
            .all(|(&lo, &hi)| comfort.contains(lo) && comfort.contains(hi))
    }
}

/// Builds the Monte-Carlo reachability tube from `start` under `policy`
/// and `predictor`, sampling disturbance scenarios from the augmented
/// distribution (the zone temperature of each sampled scenario is
/// overridden by the rolled-out state).
///
/// # Errors
///
/// Returns [`VerifyError::ZeroSamples`] / [`VerifyError::ZeroHorizon`]
/// for degenerate parameters.
pub fn reachability_tube<Pol, Pred>(
    policy: &mut Pol,
    predictor: &Pred,
    augmenter: &NoiseAugmenter,
    start: &Observation,
    horizon: usize,
    scenarios: usize,
    seed: u64,
) -> Result<ReachabilityTube, VerifyError>
where
    Pol: Policy,
    Pred: Predictor,
{
    if scenarios == 0 {
        return Err(VerifyError::ZeroSamples);
    }
    if horizon == 0 {
        return Err(VerifyError::ZeroHorizon);
    }
    let mut rng = seeded_rng(seed);
    let mut lower = vec![f64::INFINITY; horizon];
    let mut upper = vec![f64::NEG_INFINITY; horizon];

    for _ in 0..scenarios {
        // Disturbance scenario: a fresh draw per rollout, held constant
        // over the horizon (persistence), like the planner's forecast.
        let scenario = augmenter.sample_observation(&mut rng);
        let mut obs = *start;
        obs.disturbances = scenario.disturbances;
        for step in 0..horizon {
            let action = policy.decide(&obs);
            let next = predictor.predict_next(&obs, action);
            lower[step] = lower[step].min(next);
            upper[step] = upper[step].max(next);
            obs.zone_temperature = next;
        }
    }
    Ok(ReachabilityTube { lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::space::feature;
    use hvac_env::{SetpointAction, POLICY_INPUT_DIM};

    struct Contraction;
    impl Predictor for Contraction {
        fn predict_next(&self, obs: &Observation, _a: SetpointAction) -> f64 {
            obs.zone_temperature + 0.5 * (21.5 - obs.zone_temperature)
        }
    }

    struct Hold;
    impl Policy for Hold {
        fn decide(&mut self, _o: &Observation) -> SetpointAction {
            SetpointAction::new(21, 24).unwrap()
        }
        fn name(&self) -> &str {
            "hold"
        }
    }

    fn augmenter() -> NoiseAugmenter {
        let rows: Vec<[f64; POLICY_INPUT_DIM]> = (0..20)
            .map(|i| {
                let mut r = [0.0; POLICY_INPUT_DIM];
                r[feature::ZONE_TEMPERATURE] = 21.0;
                r[feature::OUTDOOR_TEMPERATURE] = -5.0 + i as f64 * 0.5;
                r
            })
            .collect();
        NoiseAugmenter::fit(rows, 0.1).unwrap()
    }

    #[test]
    fn tube_contracts_to_fixed_point() {
        let start = Observation::new(21.0, Default::default());
        let tube =
            reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 20, 30, 0).unwrap();
        assert_eq!(tube.len(), 20);
        assert!((tube.lower[19] - 21.5).abs() < 0.01);
        assert!((tube.upper[19] - 21.5).abs() < 0.01);
        assert!(tube.within(&ComfortRange::winter()));
    }

    #[test]
    fn tube_detects_unsafe_start_transient() {
        let start = Observation::new(15.0, Default::default());
        let tube =
            reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 5, 10, 0).unwrap();
        assert!(!tube.within(&ComfortRange::winter()));
    }

    #[test]
    fn envelopes_ordered() {
        let start = Observation::new(21.0, Default::default());
        let tube =
            reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 10, 25, 3).unwrap();
        for (lo, hi) in tube.lower.iter().zip(&tube.upper) {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn degenerate_parameters_rejected() {
        let start = Observation::new(21.0, Default::default());
        assert!(matches!(
            reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 0, 10, 0),
            Err(VerifyError::ZeroHorizon)
        ));
        assert!(matches!(
            reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 10, 0, 0),
            Err(VerifyError::ZeroSamples)
        ));
    }

    #[test]
    fn seeded_tubes_reproduce() {
        let start = Observation::new(21.0, Default::default());
        let a = reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 8, 12, 9).unwrap();
        let b = reachability_tube(&mut Hold, &Contraction, &augmenter(), &start, 8, 12, 9).unwrap();
        assert_eq!(a, b);
    }
}
