//! Algorithm 1 — decision-path verification of criteria #2 and #3.
//!
//! For each leaf, the unique root-to-leaf path induces an axis-aligned
//! box of inputs that reach it. If that box intersects the unsafe-warm
//! region (`s_t > z̄`), every reachable too-warm state must satisfy
//! `π(s, d) < s_t` — the *cooling* setpoint must undercut the zone
//! temperature so the HVAC pushes it back down. Symmetrically, if the
//! box intersects the unsafe-cold region (`s_t < z̲`), the *heating*
//! setpoint must exceed the reachable too-cold temperatures.
//!
//! Because the comparison must hold for **every** state in the
//! intersection, the binding case is the extremum:
//!
//! * criterion #2: `cool_sp ≤ max(box.lo, z̄)` (states approach the
//!   infimum from above, so `≤` on the bound gives strict `<` on every
//!   reachable state);
//! * criterion #3: `heat_sp ≥ min(box.hi, z̲)` (states approach the
//!   supremum from below).
//!
//! The paper scopes safety to *occupied* hours ("we focus on the
//! precise air temperature control of a thermal zone during occupied
//! hours", Section 3.1), so a leaf whose box only contains unoccupied
//! inputs (occupant count ≤ 0) is exempt — night setback is supposed to
//! let the zone drift.
//!
//! Failing leaves are corrected by rewriting the *violating* setpoint to
//! the comfort-zone median (Section 3.3.1): a #2 failure lowers the
//! cooling setpoint, a #3 failure raises the heating setpoint. The
//! median satisfies either criterion for any box.

use crate::error::VerifyError;
use hvac_control::DtPolicy;
use hvac_dtree::LeafId;
use hvac_env::space::feature;
use hvac_env::{ComfortRange, SetpointAction};

/// Which of the two formal criteria a leaf violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolatedCriterion {
    /// Criterion #2: reachable too-warm states whose cooling setpoint
    /// does not undercut them.
    TooWarmNotCooling,
    /// Criterion #3: reachable too-cold states whose heating setpoint
    /// does not exceed them.
    TooColdNotHeating,
}

/// One detected violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathViolation {
    /// The offending leaf.
    pub leaf: LeafId,
    /// Which criterion it violates.
    pub criterion: ViolatedCriterion,
    /// The leaf's action at detection time.
    pub action: SetpointAction,
}

/// Result of a path-verification pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathVerification {
    /// All violations found (a leaf can appear twice, once per
    /// criterion).
    pub violations: Vec<PathViolation>,
    /// Leaves examined.
    pub leaves_checked: usize,
}

impl PathVerification {
    /// Number of criterion-#2 violations.
    pub fn criterion_2_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.criterion == ViolatedCriterion::TooWarmNotCooling)
            .count()
    }

    /// Number of criterion-#3 violations.
    pub fn criterion_3_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.criterion == ViolatedCriterion::TooColdNotHeating)
            .count()
    }

    /// Whether the policy passed both formal criteria.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations merged per leaf: `(leaf, violates_#2, violates_#3,
    /// action)` — the unit the correction pass operates on (a leaf can
    /// fail both criteria at once).
    pub fn merged_by_leaf(&self) -> Vec<(LeafId, bool, bool, SetpointAction)> {
        let mut merged: Vec<(LeafId, bool, bool, SetpointAction)> = Vec::new();
        for v in &self.violations {
            if let Some(entry) = merged.iter_mut().find(|(l, _, _, _)| *l == v.leaf) {
                match v.criterion {
                    ViolatedCriterion::TooWarmNotCooling => entry.1 = true,
                    ViolatedCriterion::TooColdNotHeating => entry.2 = true,
                }
            } else {
                let (w, c) = match v.criterion {
                    ViolatedCriterion::TooWarmNotCooling => (true, false),
                    ViolatedCriterion::TooColdNotHeating => (false, true),
                };
                merged.push((v.leaf, w, c, v.action));
            }
        }
        merged
    }
}

/// Runs Algorithm 1 over every leaf of the policy, *without* modifying
/// it.
///
/// # Errors
///
/// Propagates tree-introspection errors (which indicate a corrupted
/// tree, not bad input data).
pub fn verify_paths(
    policy: &DtPolicy,
    comfort: &ComfortRange,
) -> Result<PathVerification, VerifyError> {
    let tree = policy.tree();
    let space = policy.action_space();
    let mut result = PathVerification::default();

    for leaf in tree.leaves() {
        result.leaves_checked += 1;
        let class = tree.leaf_class(leaf)?;
        let action = space.action(class).map_err(|_| {
            VerifyError::Tree(hvac_dtree::TreeError::BadClass {
                class,
                n_classes: space.len(),
            })
        })?;
        let input_box = tree.leaf_box(leaf)?;
        let temp_side = input_box.side(feature::ZONE_TEMPERATURE);

        // The criteria only constrain occupied states; skip leaves whose
        // box cannot contain an occupied input.
        let occupancy_side = input_box.side(feature::OCCUPANT_COUNT);
        if !occupancy_side.overlaps_above(0.0) {
            continue;
        }

        // Criterion #2: the box intersects (z̄, ∞).
        if temp_side.overlaps_above(comfort.hi()) {
            let infimum = temp_side.lo.max(comfort.hi());
            if f64::from(action.cooling()) > infimum {
                result.violations.push(PathViolation {
                    leaf,
                    criterion: ViolatedCriterion::TooWarmNotCooling,
                    action,
                });
            }
        }

        // Criterion #3: the box intersects (−∞, z̲).
        if temp_side.overlaps_below(comfort.lo()) {
            let supremum = temp_side.hi.min(comfort.lo());
            if f64::from(action.heating()) < supremum {
                result.violations.push(PathViolation {
                    leaf,
                    criterion: ViolatedCriterion::TooColdNotHeating,
                    action,
                });
            }
        }
    }
    Ok(result)
}

/// How a failed leaf is repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrectionStrategy {
    /// The paper's literal edit (Section 3.3.1): overwrite the failed
    /// leaf's violating setpoint(s) with the comfort-zone median. Blunt
    /// but simple — the correction also applies to the leaf's
    /// *unoccupied* inputs, where the criteria impose nothing.
    EditLeaf,
    /// Occupancy-scoped refinement (default): if the failed leaf also
    /// handles unoccupied inputs, split it on the occupant-count
    /// feature at 0 so that only the occupied child receives the
    /// corrected action; night setback behavior is preserved exactly.
    /// Falls back to [`CorrectionStrategy::EditLeaf`] when the leaf is
    /// occupied-only.
    #[default]
    SplitOnOccupancy,
}

/// The corrective action for a leaf given which criteria it violates:
/// each violated side's setpoint moves to the comfort-zone median
/// ("we correct it by editing the setpoint in the failed leaf node to
/// the median of the comfort zone", Section 3.3.1); the other setpoint
/// is untouched.
pub fn corrected_action(
    current: SetpointAction,
    too_warm: bool,
    too_cold: bool,
    comfort: &ComfortRange,
) -> SetpointAction {
    let median = comfort.median();
    let mut heating = f64::from(current.heating());
    let mut cooling = f64::from(current.cooling());
    if too_warm {
        cooling = median;
        heating = heating.min(median);
    }
    if too_cold {
        heating = median;
        cooling = cooling.max(median);
    }
    SetpointAction::from_clamped(heating, cooling)
}

/// The fully corrective action: both setpoints at the comfort median
/// (used when a leaf violates both criteria).
pub fn median_action(comfort: &ComfortRange) -> SetpointAction {
    SetpointAction::from_clamped(comfort.median(), comfort.median())
}

/// Corrects one failed leaf in place.
///
/// `too_warm` / `too_cold` say which criteria the leaf violates (from
/// [`PathVerification::merged_by_leaf`]).
///
/// # Errors
///
/// Propagates leaf-editing errors for invalid leaf ids.
pub fn correct_leaf(
    policy: &mut DtPolicy,
    leaf: LeafId,
    too_warm: bool,
    too_cold: bool,
    comfort: &ComfortRange,
    strategy: CorrectionStrategy,
) -> Result<(), VerifyError> {
    let space = policy.action_space().clone();
    let current_class = policy.tree().leaf_class(leaf)?;
    let current = space.action(current_class).map_err(|_| {
        VerifyError::Tree(hvac_dtree::TreeError::BadClass {
            class: current_class,
            n_classes: space.len(),
        })
    })?;
    let corrected = corrected_action(current, too_warm, too_cold, comfort);
    let corrected_class = space.index_of(corrected);

    match strategy {
        CorrectionStrategy::EditLeaf => {
            policy.tree_mut().set_leaf_class(leaf, corrected_class)?;
        }
        CorrectionStrategy::SplitOnOccupancy => {
            let handles_unoccupied = {
                let input_box = policy.tree().leaf_box(leaf)?;
                input_box.side(feature::OCCUPANT_COUNT).contains(0.0)
            };
            if handles_unoccupied {
                // Unoccupied inputs (occ ≤ 0) keep the learned action;
                // occupied inputs (occ > 0) get the correction.
                policy.tree_mut().split_leaf(
                    leaf,
                    feature::OCCUPANT_COUNT,
                    0.0,
                    current_class,
                    corrected_class,
                )?;
            } else {
                policy.tree_mut().set_leaf_class(leaf, corrected_class)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_dtree::{DecisionTree, TreeConfig};
    use hvac_env::{ActionSpace, Observation, Policy, POLICY_INPUT_DIM};

    /// Builds a DtPolicy whose behavior we control exactly: zone temp is
    /// the only split feature; below 20 °C → `cold_action`, above 24 °C →
    /// `hot_action`, otherwise `mid_action`.
    fn three_region_policy(
        cold_action: SetpointAction,
        mid_action: SetpointAction,
        hot_action: SetpointAction,
    ) -> DtPolicy {
        let space = ActionSpace::new();
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..48 {
            // A 0.5 °C grid offset so CART's midpoint thresholds land
            // exactly on the comfort bounds (20.0 and 23.5).
            let temp = 10.25 + i as f64 * 0.5; // 10.25 .. 33.75
            let mut row = [0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = temp;
            inputs.push(row.to_vec());
            let action = if temp < 20.0 {
                cold_action
            } else if temp > 23.5 {
                hot_action
            } else {
                mid_action
            };
            labels.push(space.index_of(action));
        }
        let tree =
            DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
        DtPolicy::new(tree).unwrap()
    }

    fn comfort() -> ComfortRange {
        ComfortRange::winter() // [20, 23.5]
    }

    #[test]
    fn safe_policy_passes() {
        // Cold zone → heat to 23 (> all temps below 20 ✓).
        // Hot zone → cool to 21 (cooling sp 21 ≤ 23.5 ✓ pulls down).
        let policy = three_region_policy(
            SetpointAction::new(23, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 21).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(v.passed(), "violations: {:?}", v.violations);
        assert!(v.leaves_checked >= 3);
    }

    #[test]
    fn lazy_cooling_violates_criterion_2() {
        // Hot zone keeps cooling setpoint at 30: the HVAC never cools.
        let policy = three_region_policy(
            SetpointAction::new(23, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 30).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(v.criterion_2_count() > 0);
        assert_eq!(v.criterion_3_count(), 0);
    }

    #[test]
    fn lazy_heating_violates_criterion_3() {
        // Cold zone keeps heating setpoint at 15 — below reachable
        // too-cold temperatures (up to 20 °C).
        let policy = three_region_policy(
            SetpointAction::new(15, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 21).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(v.criterion_3_count() > 0);
        assert_eq!(v.criterion_2_count(), 0);
    }

    #[test]
    fn correction_fixes_all_violations() {
        let mut policy = three_region_policy(
            SetpointAction::new(15, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 30).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(!v.passed());
        for (leaf, warm, cold, _) in v.merged_by_leaf() {
            correct_leaf(
                &mut policy,
                leaf,
                warm,
                cold,
                &comfort(),
                CorrectionStrategy::EditLeaf,
            )
            .unwrap();
        }
        let v2 = verify_paths(&policy, &comfort()).unwrap();
        assert!(v2.passed(), "still violating: {:?}", v2.violations);
    }

    #[test]
    fn split_correction_also_converges() {
        let mut policy = three_region_policy(
            SetpointAction::new(15, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 30).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(!v.passed());
        for (leaf, warm, cold, _) in v.merged_by_leaf() {
            correct_leaf(
                &mut policy,
                leaf,
                warm,
                cold,
                &comfort(),
                CorrectionStrategy::SplitOnOccupancy,
            )
            .unwrap();
        }
        let v2 = verify_paths(&policy, &comfort()).unwrap();
        assert!(v2.passed(), "still violating: {:?}", v2.violations);
    }

    #[test]
    fn split_correction_preserves_unoccupied_behavior() {
        // The three-region policy never split on occupancy, so its
        // leaves handle both occupied and unoccupied inputs. After a
        // SplitOnOccupancy correction, unoccupied inputs must still get
        // the original (energy-saving) action.
        let lazy_cold = SetpointAction::off();
        let mut policy = three_region_policy(
            lazy_cold,
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 21).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(v.criterion_3_count() > 0);
        for (leaf, warm, cold, _) in v.merged_by_leaf() {
            correct_leaf(
                &mut policy,
                leaf,
                warm,
                cold,
                &comfort(),
                CorrectionStrategy::SplitOnOccupancy,
            )
            .unwrap();
        }
        // Unoccupied cold zone: original setback action preserved.
        let night = Observation {
            zone_temperature: 15.0,
            ..Observation::default()
        };
        assert_eq!(policy.clone().decide(&night), lazy_cold);
        // Occupied cold zone: corrected to heat at the comfort median.
        let mut day = night;
        day.disturbances.occupant_count = 3.0;
        assert_eq!(
            f64::from(policy.decide(&day).heating()),
            comfort().median().round()
        );
    }

    #[test]
    fn corrected_leaf_commands_median() {
        let mut policy = three_region_policy(
            SetpointAction::new(15, 30).unwrap(),
            SetpointAction::new(20, 24).unwrap(),
            SetpointAction::new(15, 21).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        let (leaf, warm, cold, _) = v.merged_by_leaf()[0];
        correct_leaf(
            &mut policy,
            leaf,
            warm,
            cold,
            &comfort(),
            CorrectionStrategy::EditLeaf,
        )
        .unwrap();
        // A deep-cold observation routes to the corrected leaf, whose
        // heating setpoint is now the comfort median.
        let obs = Observation {
            zone_temperature: 12.0,
            ..Observation::default()
        };
        let a = policy.decide(&obs);
        assert_eq!(f64::from(a.heating()), comfort().median().round());
    }

    #[test]
    fn median_action_is_legal_and_central() {
        let m = median_action(&comfort());
        // Winter median 21.75 → heat 22, cool 22.
        assert_eq!(m.heating(), 22);
        assert_eq!(m.cooling(), 22);
    }

    #[test]
    fn median_correction_satisfies_both_criteria_for_any_box() {
        // The correction must be universally safe: heat_sp ≥ z̲ and
        // cool_sp ≤ z̄.
        let m = median_action(&comfort());
        assert!(f64::from(m.heating()) >= comfort().lo());
        assert!(f64::from(m.cooling()) <= comfort().hi());
    }

    #[test]
    fn interior_leaves_are_not_flagged() {
        // A mid-range leaf with a lazy action is *not* a #2/#3
        // violation — the criteria only constrain out-of-range states.
        let policy = three_region_policy(
            SetpointAction::new(23, 30).unwrap(),
            SetpointAction::new(15, 30).unwrap(), // lazy, but in-range
            SetpointAction::new(15, 21).unwrap(),
        );
        let v = verify_paths(&policy, &comfort()).unwrap();
        assert!(v.passed(), "violations: {:?}", v.violations);
    }
}
