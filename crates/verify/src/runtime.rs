//! Runtime safety auditing — counting criterion departures on a live
//! trace.
//!
//! The offline machinery of this crate proves properties of the *tree*;
//! [`SafetyAudit`] measures the same three criteria on an *executed
//! episode*, one `(pre-state, action, post-state)` triple at a time. The
//! fault-robustness benchmark runs it on the **true** zone state while
//! the policy under test sees corrupted observations, so the audit
//! reports what the building actually experienced:
//!
//! * **criterion #1 departures** — the zone was inside the comfort range
//!   before the step and outside it after (the empirical counterpart of
//!   the probabilistic `P(safe | safe) ≥ l` bound);
//! * **criterion #2 violations** — occupied and above the range, yet the
//!   commanded cooling setpoint did not pull the zone down
//!   (`cooling ≥ s_t`);
//! * **criterion #3 violations** — occupied and below the range, yet the
//!   commanded heating setpoint did not pull it up (`heating ≤ s_t`).

use hvac_env::{ComfortRange, SetpointAction};

/// Accumulates safety-criterion counts over an executed trace.
///
/// Feed every control step through [`SafetyAudit::record_step`]; read
/// the counters and rates at the end of the episode.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyAudit {
    comfort: ComfortRange,
    steps: usize,
    occupied_steps: usize,
    violation_steps: usize,
    violation_degree_hours: f64,
    criterion_1_departures: usize,
    criterion_2_violations: usize,
    criterion_3_violations: usize,
}

impl SafetyAudit {
    /// An empty audit against `comfort`.
    pub fn new(comfort: ComfortRange) -> Self {
        Self {
            comfort,
            steps: 0,
            occupied_steps: 0,
            violation_steps: 0,
            violation_degree_hours: 0.0,
            criterion_1_departures: 0,
            criterion_2_violations: 0,
            criterion_3_violations: 0,
        }
    }

    /// Records one control step: the zone was at `pre_temp` when
    /// `action` was commanded, and at `post_temp` one step later.
    /// `occupied` is the occupancy during the step; comfort violations
    /// follow the paper and only count while someone is present.
    pub fn record_step(
        &mut self,
        pre_temp: f64,
        action: SetpointAction,
        post_temp: f64,
        occupied: bool,
    ) {
        self.steps += 1;
        if occupied {
            self.occupied_steps += 1;
            if !self.comfort.contains(post_temp) {
                self.violation_steps += 1;
                self.violation_degree_hours += self.comfort.violation_degrees(post_temp) * 0.25;
            }
            if self.comfort.is_above(pre_temp) && f64::from(action.cooling()) >= pre_temp {
                self.criterion_2_violations += 1;
            }
            if self.comfort.is_below(pre_temp) && f64::from(action.heating()) <= pre_temp {
                self.criterion_3_violations += 1;
            }
        }
        if occupied && self.comfort.contains(pre_temp) && !self.comfort.contains(post_temp) {
            self.criterion_1_departures += 1;
        }
    }

    /// Steps recorded so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Steps recorded with occupancy.
    pub fn occupied_steps(&self) -> usize {
        self.occupied_steps
    }

    /// Occupied steps whose post-step temperature violated comfort.
    pub fn violation_steps(&self) -> usize {
        self.violation_steps
    }

    /// Violation magnitude integrated over time, °C·h (15-minute steps).
    pub fn violation_degree_hours(&self) -> f64 {
        self.violation_degree_hours
    }

    /// Fraction of *occupied* steps that violated comfort (0 when the
    /// trace had no occupancy).
    pub fn comfort_violation_rate(&self) -> f64 {
        if self.occupied_steps == 0 {
            0.0
        } else {
            self.violation_steps as f64 / self.occupied_steps as f64
        }
    }

    /// Occupied safe→unsafe transitions (empirical criterion #1).
    pub fn criterion_1_departures(&self) -> usize {
        self.criterion_1_departures
    }

    /// Occupied too-warm steps whose cooling setpoint failed to command
    /// a pull-down (criterion #2).
    pub fn criterion_2_violations(&self) -> usize {
        self.criterion_2_violations
    }

    /// Occupied too-cold steps whose heating setpoint failed to command
    /// a pull-up (criterion #3).
    pub fn criterion_3_violations(&self) -> usize {
        self.criterion_3_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action(heat: i32, cool: i32) -> SetpointAction {
        SetpointAction::new(heat, cool).unwrap()
    }

    #[test]
    fn comfortable_occupied_trace_counts_nothing() {
        let mut audit = SafetyAudit::new(ComfortRange::winter());
        for _ in 0..10 {
            audit.record_step(21.0, action(20, 23), 21.5, true);
        }
        assert_eq!(audit.steps(), 10);
        assert_eq!(audit.occupied_steps(), 10);
        assert_eq!(audit.comfort_violation_rate(), 0.0);
        assert_eq!(audit.criterion_1_departures(), 0);
        assert_eq!(audit.criterion_2_violations(), 0);
        assert_eq!(audit.criterion_3_violations(), 0);
    }

    #[test]
    fn departure_from_comfort_is_a_criterion_1_event() {
        let mut audit = SafetyAudit::new(ComfortRange::winter());
        // In range → out of range: departure AND violation step.
        audit.record_step(21.0, action(15, 30), 18.0, true);
        assert_eq!(audit.criterion_1_departures(), 1);
        assert_eq!(audit.violation_steps(), 1);
        // Already out of range → still out: violation but no new departure.
        audit.record_step(18.0, action(15, 30), 17.5, true);
        assert_eq!(audit.criterion_1_departures(), 1);
        assert_eq!(audit.violation_steps(), 2);
        assert_eq!(audit.comfort_violation_rate(), 1.0);
        assert!(audit.violation_degree_hours() > 0.0);
    }

    #[test]
    fn too_warm_without_pull_down_is_a_criterion_2_event() {
        let mut audit = SafetyAudit::new(ComfortRange::winter());
        // 25 °C is above winter comfort; cooling at 26 does not pull down.
        audit.record_step(25.0, action(20, 26), 25.0, true);
        assert_eq!(audit.criterion_2_violations(), 1);
        // Cooling at 23 (< 25) commands a pull-down: compliant.
        audit.record_step(25.0, action(20, 23), 24.0, true);
        assert_eq!(audit.criterion_2_violations(), 1);
    }

    #[test]
    fn too_cold_without_pull_up_is_a_criterion_3_event() {
        let mut audit = SafetyAudit::new(ComfortRange::winter());
        // 18 °C is below winter comfort; heating at 15 does not pull up.
        audit.record_step(18.0, action(15, 30), 18.0, true);
        assert_eq!(audit.criterion_3_violations(), 1);
        // Heating at 21 (> 18) commands a pull-up: compliant.
        audit.record_step(18.0, action(21, 30), 19.0, true);
        assert_eq!(audit.criterion_3_violations(), 1);
    }

    #[test]
    fn unoccupied_steps_are_exempt() {
        let mut audit = SafetyAudit::new(ComfortRange::winter());
        audit.record_step(18.0, action(15, 30), 17.0, false);
        audit.record_step(25.0, action(20, 26), 26.0, false);
        assert_eq!(audit.steps(), 2);
        assert_eq!(audit.occupied_steps(), 0);
        assert_eq!(audit.comfort_violation_rate(), 0.0);
        assert_eq!(audit.criterion_1_departures(), 0);
        assert_eq!(audit.criterion_2_violations(), 0);
        assert_eq!(audit.criterion_3_violations(), 0);
    }
}
