//! Verification certificates: the portable, signed-by-hash summary that
//! binds a verification outcome to the exact policy bytes it covers.
//!
//! A [`VerificationReport`] says *a* policy passed; a [`Certificate`]
//! says *this* policy — identified by the SHA-256 of its canonical
//! compact encoding — passed, under which comfort range, noise level,
//! sample count, and seed, produced by which crate version, with which
//! artifact-store keys as provenance. The serve path can then refuse to
//! serve policy bytes whose hash no certificate covers, and the offline
//! `veri_hvac audit` verifier can re-check the binding end to end.
//!
//! This crate stays hash-agnostic: [`Certificate::canonical_string`]
//! defines the exact byte string a certificate id must commit to, and
//! `hvac-audit` (which owns the SHA-256 implementation) computes the id
//! over it. That keeps the dependency arrow pointing one way
//! (`hvac-audit → hvac-verify`).

use crate::error::VerifyError;
use crate::probabilistic::SafeProbability;
use crate::report::{VerificationConfig, VerificationReport};
use hvac_telemetry::json::{self, ObjectWriter};

/// Format tag of the certificate schema. Bump on any field change.
pub const CERTIFICATE_FORMAT: &str = "certificate v1";

/// The standard-normal quantile certificates use for their Wilson
/// interval (95% two-sided).
pub const CERTIFICATE_WILSON_Z: f64 = 1.96;

/// A verification certificate: one policy hash bound to one
/// verification outcome and its full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// SHA-256 (hex) of the policy's canonical compact encoding.
    pub policy_hash: String,
    /// Hash of [`Certificate::canonical_string`]; empty until bound via
    /// [`Certificate::with_id`].
    pub certificate_id: String,
    /// The verification outcome (criteria 1/2/3 counts).
    pub report: VerificationReport,
    /// Wilson lower bound on criterion #1 at [`CERTIFICATE_WILSON_Z`].
    pub wilson_lower: f64,
    /// Wilson upper bound on criterion #1 at [`CERTIFICATE_WILSON_Z`].
    pub wilson_upper: f64,
    /// Comfort range lower bound the safe set used (°C).
    pub comfort_lo: f64,
    /// Comfort range upper bound the safe set used (°C).
    pub comfort_hi: f64,
    /// Monte-Carlo samples behind criterion #1.
    pub samples: u64,
    /// Seed of the probabilistic stage.
    pub seed: u64,
    /// Noise level of the augmenter the verification ran with.
    pub noise: f64,
    /// Artifact-store provenance keys (`stage:hash` strings), in
    /// pipeline order. Empty when verification ran without a store.
    pub artifact_keys: Vec<String>,
    /// Version of the crate that verified the policy.
    pub crate_version: String,
    /// SHA-256 (hex) of the compiled flat-kernel artifact (`ctree v1`
    /// text) proven equivalent to the verified tree, or empty when the
    /// policy ships without a compiled form. Certificates that predate
    /// compiled kernels omit the field entirely, so their ids are
    /// unchanged.
    pub compiled_hash: String,
}

impl Certificate {
    /// Assembles an unbound certificate (empty `certificate_id`) from a
    /// verification run's inputs and outcome.
    pub fn new(
        policy_hash: String,
        report: VerificationReport,
        config: &VerificationConfig,
        noise: f64,
        artifact_keys: Vec<String>,
    ) -> Self {
        let (wilson_lower, wilson_upper) = report.criterion_1.wilson_interval(CERTIFICATE_WILSON_Z);
        Self {
            policy_hash,
            certificate_id: String::new(),
            report,
            wilson_lower,
            wilson_upper,
            comfort_lo: config.comfort.lo(),
            comfort_hi: config.comfort.hi(),
            samples: config.samples as u64,
            seed: config.seed,
            noise,
            artifact_keys,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            compiled_hash: String::new(),
        }
    }

    /// Whether the certified outcome passes (criterion #1 point
    /// estimate clears the threshold; criteria #2/#3 are corrected by
    /// construction).
    pub fn verified(&self) -> bool {
        self.report.verified()
    }

    /// The exact byte string a certificate id commits to: the JSON
    /// encoding of every field *except* `certificate_id`.
    pub fn canonical_string(&self) -> String {
        let mut o = ObjectWriter::new();
        o.str_field("format", CERTIFICATE_FORMAT);
        o.str_field("policy_hash", &self.policy_hash);
        o.u64_field("total_nodes", self.report.total_nodes as u64);
        o.u64_field("leaf_nodes", self.report.leaf_nodes as u64);
        o.u64_field("safe", self.report.criterion_1.safe as u64);
        o.u64_field("total", self.report.criterion_1.total as u64);
        o.f64_field("threshold", self.report.criterion_1.threshold);
        o.u64_field(
            "corrected_criterion_2",
            self.report.corrected_criterion_2 as u64,
        );
        o.u64_field(
            "corrected_criterion_3",
            self.report.corrected_criterion_3 as u64,
        );
        o.f64_field("wilson_lower", self.wilson_lower);
        o.f64_field("wilson_upper", self.wilson_upper);
        o.f64_field("comfort_lo", self.comfort_lo);
        o.f64_field("comfort_hi", self.comfort_hi);
        o.u64_field("samples", self.samples);
        o.u64_field("seed", self.seed);
        o.f64_field("noise", self.noise);
        o.str_array_field("artifact_keys", &self.artifact_keys);
        o.str_field("crate_version", &self.crate_version);
        // Only emitted when a compiled kernel was bound: certificates
        // issued before compiled kernels existed keep their exact
        // canonical bytes (and therefore their ids).
        if !self.compiled_hash.is_empty() {
            o.str_field("compiled_hash", &self.compiled_hash);
        }
        o.finish()
    }

    /// Binds the certificate to its id (the hash of
    /// [`Certificate::canonical_string`], computed by the caller).
    #[must_use]
    pub fn with_id(mut self, id: String) -> Self {
        self.certificate_id = id;
        self
    }

    /// Binds the certificate to the SHA-256 of a compiled flat-kernel
    /// artifact. Must be applied *before* [`Certificate::with_id`]: the
    /// compiled hash is part of the canonical bytes the id commits to,
    /// so `veri_hvac audit` can detect a swapped or tampered compiled
    /// artifact the same way it detects swapped policy bytes.
    #[must_use]
    pub fn with_compiled_hash(mut self, hash: String) -> Self {
        self.compiled_hash = hash;
        self
    }

    /// Serializes the certificate: the canonical string with
    /// `certificate_id` appended as the final field, so the stored
    /// bytes and the id-committed bytes agree by construction.
    pub fn to_json_string(&self) -> String {
        let canonical = self.canonical_string();
        format!(
            "{},\"certificate_id\":\"{}\"}}",
            &canonical[..canonical.len() - 1],
            self.certificate_id
        )
    }

    /// Parses a certificate from [`Certificate::to_json_string`]
    /// output. Floats round-trip bitwise, so
    /// [`Certificate::canonical_string`] of the result reproduces the
    /// original id-committed bytes exactly.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BadReport`] for malformed JSON, a missing
    /// field, or an unknown format tag.
    pub fn from_json_string(text: &str) -> Result<Self, VerifyError> {
        let bad = |what: &'static str| VerifyError::BadReport { what };
        let v = json::parse(text).map_err(|_| bad("json"))?;
        if v.get("format").and_then(|f| f.as_str()) != Some(CERTIFICATE_FORMAT) {
            return Err(bad("format"));
        }
        let s = |name: &'static str| {
            v.get(name)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or(bad(name))
        };
        let u = |name: &'static str| v.get(name).and_then(|x| x.as_u64()).ok_or(bad(name));
        let f = |name: &'static str| v.get(name).and_then(|x| x.as_f64()).ok_or(bad(name));
        let keys = v
            .get("artifact_keys")
            .and_then(|x| x.as_array())
            .ok_or(bad("artifact_keys"))?
            .iter()
            .map(|item| item.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()
            .ok_or(bad("artifact_keys"))?;
        Ok(Self {
            policy_hash: s("policy_hash")?,
            certificate_id: s("certificate_id")?,
            report: VerificationReport {
                total_nodes: u("total_nodes")? as usize,
                leaf_nodes: u("leaf_nodes")? as usize,
                criterion_1: SafeProbability {
                    safe: u("safe")? as usize,
                    total: u("total")? as usize,
                    threshold: f("threshold")?,
                },
                corrected_criterion_2: u("corrected_criterion_2")? as usize,
                corrected_criterion_3: u("corrected_criterion_3")? as usize,
            },
            wilson_lower: f("wilson_lower")?,
            wilson_upper: f("wilson_upper")?,
            comfort_lo: f("comfort_lo")?,
            comfort_hi: f("comfort_hi")?,
            samples: u("samples")?,
            seed: u("seed")?,
            noise: f("noise")?,
            artifact_keys: keys,
            crate_version: s("crate_version")?,
            // Absent on certificates that predate compiled kernels.
            compiled_hash: v
                .get("compiled_hash")
                .and_then(|x| x.as_str())
                .unwrap_or_default()
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn certificate() -> Certificate {
        let report = VerificationReport {
            total_nodes: 41,
            leaf_nodes: 21,
            criterion_1: SafeProbability {
                safe: 1910,
                total: 2000,
                threshold: 0.9,
            },
            corrected_criterion_2: 2,
            corrected_criterion_3: 5,
        };
        Certificate::new(
            "ab".repeat(32),
            report,
            &VerificationConfig::paper(),
            0.05,
            vec![
                "tree:0011223344556677".into(),
                "verified:8899aabbccddeeff".into(),
            ],
        )
        .with_id("cd".repeat(32))
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cert = certificate();
        let restored = Certificate::from_json_string(&cert.to_json_string()).unwrap();
        assert_eq!(restored, cert);
        // The canonical bytes — what the id commits to — survive too.
        assert_eq!(restored.canonical_string(), cert.canonical_string());
    }

    #[test]
    fn canonical_string_excludes_the_id() {
        let cert = certificate();
        assert!(!cert.canonical_string().contains("certificate_id"));
        assert!(cert.to_json_string().contains("certificate_id"));
        // Rebinding the id must not change the committed bytes.
        let rebound = cert.clone().with_id("ee".repeat(32));
        assert_eq!(rebound.canonical_string(), cert.canonical_string());
    }

    #[test]
    fn wilson_interval_matches_the_report() {
        let cert = certificate();
        let (lo, hi) = cert
            .report
            .criterion_1
            .wilson_interval(CERTIFICATE_WILSON_Z);
        assert_eq!((cert.wilson_lower, cert.wilson_upper), (lo, hi));
        assert!(cert.verified());
    }

    #[test]
    fn compiled_hash_is_committed_only_when_present() {
        let plain = certificate();
        // No compiled kernel bound: the field stays out of the
        // canonical bytes, so pre-compiled-kernel ids are unchanged.
        assert!(!plain.canonical_string().contains("compiled_hash"));

        let bound = certificate().with_compiled_hash("ef".repeat(32));
        assert!(bound.canonical_string().contains("compiled_hash"));
        assert_ne!(bound.canonical_string(), plain.canonical_string());

        // Round trip preserves the binding bit-exactly.
        let restored = Certificate::from_json_string(&bound.to_json_string()).unwrap();
        assert_eq!(restored, bound);
        assert_eq!(restored.canonical_string(), bound.canonical_string());

        // A v1 certificate serialized before the field existed still
        // parses, with an empty compiled hash.
        let legacy = Certificate::from_json_string(&plain.to_json_string()).unwrap();
        assert_eq!(legacy.compiled_hash, "");
        assert_eq!(legacy, plain);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{}",
            "not json",
            r#"{"format":"certificate v9"}"#,
            r#"{"format":"certificate v1","policy_hash":"ab"}"#,
        ] {
            assert!(Certificate::from_json_string(text).is_err(), "{text:?}");
        }
    }
}
