//! Policy extraction: from a black-box MBRL controller to a decision
//! tree.
//!
//! Section 3.2 of the paper, in three pieces:
//!
//! 1. **Importance-sampled input generation (Eq. 5).** Sampling optimal
//!    actions uniformly over the 5-plus-dimensional input space is
//!    hopeless (the paper estimates 444 hours); instead, inputs are
//!    drawn from the historical data and perturbed with element-wise
//!    Gaussian noise scaled by `noise_level × column std` —
//!    [`NoiseAugmenter`].
//! 2. **Noise-level selection (Fig. 3).** The augmentation must add
//!    entropy (generalization) without drifting away from the city's
//!    true input distribution; [`noise_study()`] reproduces the
//!    entropy/Jensen–Shannon analysis that led the paper to
//!    `noise_level ∈ [0.01, 0.09]`.
//! 3. **Decision-dataset generation + CART fitting.** Each sampled input
//!    is labeled with the *mode* of the stochastic optimizer's action
//!    distribution (Monte-Carlo distillation), and the resulting
//!    `(x, a*)` pairs are fitted with CART into a deployable
//!    [`hvac_control::DtPolicy`] — [`generate_decision_dataset`] and
//!    [`fit_decision_tree`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod dagger;
pub mod decision;
pub mod error;
pub mod noise_study;
pub mod parallel;
pub mod serialize;

pub use augment::NoiseAugmenter;
pub use dagger::{extract_with_dagger, DaggerConfig, DaggerOutcome};
pub use decision::{
    fit_decision_tree, generate_decision_dataset, DecisionDataset, Distillation, ExtractionConfig,
};
pub use error::ExtractError;
pub use noise_study::{noise_study, NoiseStudyRow};
pub use parallel::generate_decision_dataset_parallel;
