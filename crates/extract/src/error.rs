//! Error types.

use std::error::Error;
use std::fmt;

/// Error type for policy extraction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// The historical dataset was empty.
    NoHistoricalData,
    /// A noise level was negative or non-finite.
    BadNoiseLevel {
        /// The rejected value.
        value: f64,
    },
    /// Extraction was configured with zero points or zero Monte-Carlo
    /// runs.
    BadExtractionConfig {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The decision dataset was empty (nothing to fit).
    EmptyDecisionDataset,
    /// A serialized artifact failed to parse.
    BadArtifact {
        /// Which artifact format was malformed.
        what: &'static str,
    },
    /// An underlying decision-tree error.
    Tree(hvac_dtree::TreeError),
    /// An underlying controller error.
    Control(hvac_control::ControlError),
    /// An underlying statistics error.
    Stats(hvac_stats::StatsError),
    /// An underlying environment error (DAgger deployments).
    Env(hvac_env::EnvError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::NoHistoricalData => write!(f, "historical dataset is empty"),
            ExtractError::BadNoiseLevel { value } => {
                write!(f, "noise level {value} must be finite and non-negative")
            }
            ExtractError::BadExtractionConfig { name } => {
                write!(f, "extraction parameter {name} must be positive")
            }
            ExtractError::EmptyDecisionDataset => write!(f, "decision dataset is empty"),
            ExtractError::BadArtifact { what } => {
                write!(f, "malformed {what} artifact")
            }
            ExtractError::Tree(e) => write!(f, "tree error: {e}"),
            ExtractError::Control(e) => write!(f, "controller error: {e}"),
            ExtractError::Stats(e) => write!(f, "statistics error: {e}"),
            ExtractError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl Error for ExtractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractError::Tree(e) => Some(e),
            ExtractError::Control(e) => Some(e),
            ExtractError::Stats(e) => Some(e),
            ExtractError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hvac_dtree::TreeError> for ExtractError {
    fn from(e: hvac_dtree::TreeError) -> Self {
        ExtractError::Tree(e)
    }
}

impl From<hvac_control::ControlError> for ExtractError {
    fn from(e: hvac_control::ControlError) -> Self {
        ExtractError::Control(e)
    }
}

impl From<hvac_stats::StatsError> for ExtractError {
    fn from(e: hvac_stats::StatsError) -> Self {
        ExtractError::Stats(e)
    }
}

impl From<hvac_env::EnvError> for ExtractError {
    fn from(e: hvac_env::EnvError) -> Self {
        ExtractError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs = [
            ExtractError::NoHistoricalData,
            ExtractError::BadNoiseLevel { value: -0.1 },
            ExtractError::BadExtractionConfig { name: "n_points" },
            ExtractError::EmptyDecisionDataset,
            ExtractError::Tree(hvac_dtree::TreeError::EmptyDataset),
            ExtractError::Stats(hvac_stats::StatsError::EmptyInput),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        assert!(ExtractError::Tree(hvac_dtree::TreeError::EmptyDataset)
            .source()
            .is_some());
        assert!(ExtractError::NoHistoricalData.source().is_none());
    }
}
