//! Compact text serialization of extraction-stage artifacts.
//!
//! Same conventions as `hvac_dynamics::serialize`: a one-line versioned
//! header, floats written with `{:?}` so parsing is bitwise-exact, one
//! record per line.
//!
//! The [`NoiseAugmenter`] format stores the historical rows and the
//! noise level and *refits* on load — [`NoiseAugmenter::fit`] is a
//! deterministic function of those two, so the reconstructed per-column
//! scales are bit-identical to the originals.

use crate::augment::NoiseAugmenter;
use crate::decision::DecisionDataset;
use crate::error::ExtractError;
use hvac_env::POLICY_INPUT_DIM;

const AUGMENTER_HEADER: &str = "augmenter v1";
const DECISIONS_HEADER: &str = "decisions v1";

fn write_row(out: &mut String, prefix: char, row: &[f64; POLICY_INPUT_DIM]) {
    out.push(prefix);
    for v in row {
        out.push(' ');
        out.push_str(&format!("{v:?}"));
    }
}

fn parse_row(tokens: &[&str], what: &'static str) -> Result<[f64; POLICY_INPUT_DIM], ExtractError> {
    if tokens.len() < POLICY_INPUT_DIM {
        return Err(ExtractError::BadArtifact { what });
    }
    let mut row = [0.0; POLICY_INPUT_DIM];
    for (slot, tok) in row.iter_mut().zip(tokens) {
        *slot = tok
            .parse::<f64>()
            .map_err(|_| ExtractError::BadArtifact { what })?;
    }
    Ok(row)
}

fn parse_count(line: Option<&str>, what: &'static str) -> Result<usize, ExtractError> {
    line.and_then(|l| l.strip_prefix("n "))
        .and_then(|v| v.trim().parse::<usize>().ok())
        .ok_or(ExtractError::BadArtifact { what })
}

impl NoiseAugmenter {
    /// Serializes the augmenter (noise level + backing rows).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(AUGMENTER_HEADER);
        out.push('\n');
        out.push_str(&format!("noise_level {:?}\n", self.noise_level()));
        out.push_str(&format!("n {}\n", self.len()));
        for row in self.rows() {
            write_row(&mut out, 'r', row);
            out.push('\n');
        }
        out
    }

    /// Parses an augmenter from the compact text format, refitting on
    /// the stored rows (bit-identical to the original).
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::BadArtifact`] for malformed text and
    /// propagates [`NoiseAugmenter::fit`] failures (empty rows, bad
    /// noise level).
    pub fn from_compact_string(text: &str) -> Result<Self, ExtractError> {
        const WHAT: &str = "augmenter";
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(AUGMENTER_HEADER) {
            return Err(ExtractError::BadArtifact { what: WHAT });
        }
        let noise_level = lines
            .next()
            .and_then(|l| l.strip_prefix("noise_level "))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .ok_or(ExtractError::BadArtifact { what: WHAT })?;
        let n = parse_count(lines.next(), WHAT)?;
        let mut rows = Vec::with_capacity(n);
        for line in lines {
            let rest = line
                .strip_prefix("r ")
                .ok_or(ExtractError::BadArtifact { what: WHAT })?;
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != POLICY_INPUT_DIM {
                return Err(ExtractError::BadArtifact { what: WHAT });
            }
            rows.push(parse_row(&tokens, WHAT)?);
        }
        if rows.len() != n {
            return Err(ExtractError::BadArtifact { what: WHAT });
        }
        NoiseAugmenter::fit(rows, noise_level)
    }
}

impl DecisionDataset {
    /// Serializes the decision dataset, one `(x, a*)` pair per line.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        out.push_str(DECISIONS_HEADER);
        out.push('\n');
        out.push_str(&format!("n {}\n", self.len()));
        for (input, label) in self.inputs().iter().zip(self.labels()) {
            write_row(&mut out, 'd', input);
            out.push_str(&format!(" {label}\n"));
        }
        out
    }

    /// Parses a decision dataset from the compact text format.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::BadArtifact`] for malformed text.
    pub fn from_compact_string(text: &str) -> Result<Self, ExtractError> {
        const WHAT: &str = "decision dataset";
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(DECISIONS_HEADER) {
            return Err(ExtractError::BadArtifact { what: WHAT });
        }
        let n = parse_count(lines.next(), WHAT)?;
        let mut dataset = DecisionDataset::new();
        for line in lines {
            let rest = line
                .strip_prefix("d ")
                .ok_or(ExtractError::BadArtifact { what: WHAT })?;
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != POLICY_INPUT_DIM + 1 {
                return Err(ExtractError::BadArtifact { what: WHAT });
            }
            let input = parse_row(&tokens[..POLICY_INPUT_DIM], WHAT)?;
            let label = tokens[POLICY_INPUT_DIM]
                .parse::<usize>()
                .map_err(|_| ExtractError::BadArtifact { what: WHAT })?;
            dataset.push(input, label);
        }
        if dataset.len() != n {
            return Err(ExtractError::BadArtifact { what: WHAT });
        }
        Ok(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<[f64; POLICY_INPUT_DIM]> {
        (0..50)
            .map(|i| {
                [
                    18.0 + (i % 10) as f64 * 0.3,
                    -5.0 + (i % 7) as f64 * 1.7,
                    70.0 + (i % 4) as f64,
                    4.0,
                    100.0 * (i % 5) as f64,
                    (i % 3) as f64,
                    (i % 24) as f64 + 0.25,
                ]
            })
            .collect()
    }

    #[test]
    fn augmenter_roundtrip_is_bitwise_exact() {
        let a = NoiseAugmenter::fit(rows(), 0.05).unwrap();
        let restored = NoiseAugmenter::from_compact_string(&a.to_compact_string()).unwrap();
        assert_eq!(a, restored);
        assert_eq!(a.noise_scales(), restored.noise_scales());
        // Same RNG stream → same samples.
        use hvac_stats::seeded_rng;
        assert_eq!(
            a.sample_many(&mut seeded_rng(3), 8),
            restored.sample_many(&mut seeded_rng(3), 8)
        );
    }

    #[test]
    fn augmenter_preserves_noise_level() {
        for level in [0.0, 0.01, 0.05, 0.09] {
            let a = NoiseAugmenter::fit(rows(), level).unwrap();
            let restored = NoiseAugmenter::from_compact_string(&a.to_compact_string()).unwrap();
            assert_eq!(restored.noise_level(), level);
        }
    }

    #[test]
    fn augmenter_rejects_garbage() {
        for text in [
            "",
            "augmenter v9\nnoise_level 0.05\nn 0\n",
            "augmenter v1\nnoise_level nope\nn 0\n",
            "augmenter v1\nnoise_level 0.05\nn 2\nr 1 2 3 4 5 6 7\n", // count mismatch
            "augmenter v1\nnoise_level 0.05\nn 1\nr 1 2 3\n",         // short row
            "augmenter v1\nnoise_level 0.05\nn 0\n",                  // empty → fit() rejects
        ] {
            assert!(
                NoiseAugmenter::from_compact_string(text).is_err(),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn decisions_roundtrip_is_bitwise_exact() {
        let mut d = DecisionDataset::new();
        for (i, row) in rows().into_iter().enumerate() {
            d.push(row, i % 90);
        }
        let restored = DecisionDataset::from_compact_string(&d.to_compact_string()).unwrap();
        assert_eq!(d, restored);
    }

    #[test]
    fn decisions_roundtrip_empty() {
        let d = DecisionDataset::new();
        let restored = DecisionDataset::from_compact_string(&d.to_compact_string()).unwrap();
        assert_eq!(d, restored);
    }

    #[test]
    fn decisions_rejects_garbage() {
        for text in [
            "",
            "decisions v9\nn 0\n",
            "decisions v1\nn 2\nd 1 2 3 4 5 6 7 12\n", // count mismatch
            "decisions v1\nn 1\nd 1 2 3 4 5 6 7\n",    // missing label
            "decisions v1\nn 1\nd 1 2 3 4 5 6 7 -2\n", // negative label
        ] {
            assert!(
                DecisionDataset::from_compact_string(text).is_err(),
                "accepted {text:?}"
            );
        }
    }
}
