//! The Fig. 3 noise-level study.
//!
//! "The ideal noise level should result in a JSD lower than the other
//! city and an entropy as large as possible" (Section 3.2.1). For each
//! candidate noise level this module computes, on the outdoor-temperature
//! marginal of the augmented distribution:
//!
//! * its Shannon entropy (bits),
//! * its Jensen–Shannon distance to the *original* historical
//!   distribution, and
//! * (once, independent of noise) the JSD between the two cities'
//!   original distributions — the budget the augmented drift must stay
//!   under.

use crate::augment::NoiseAugmenter;
use crate::error::ExtractError;
use hvac_env::POLICY_INPUT_DIM;
use hvac_stats::{jensen_shannon_distance, seeded_rng, shannon_entropy, Histogram};

/// Result of one noise level in the study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseStudyRow {
    /// The noise level evaluated.
    pub noise_level: f64,
    /// Entropy (bits) of the augmented feature distribution.
    pub entropy_bits: f64,
    /// JSD between the augmented and the original distribution.
    pub jsd_to_original: f64,
    /// JSD between the two cities' original distributions (constant
    /// across rows; repeated for convenient tabulation).
    pub jsd_between_cities: f64,
}

impl NoiseStudyRow {
    /// The paper's acceptance test: the augmentation must not drift
    /// farther from the original data than the sibling city does.
    pub fn acceptable(&self) -> bool {
        self.jsd_to_original < self.jsd_between_cities
    }
}

fn column(rows: &[[f64; POLICY_INPUT_DIM]], feature: usize) -> Vec<f64> {
    rows.iter().map(|r| r[feature]).collect()
}

/// Runs the noise study over `noise_levels` for one feature column
/// (Fig. 3 uses the disturbance distribution; the outdoor-temperature
/// marginal is the dominant axis).
///
/// `city_a` is the target city's historical inputs; `city_b` the
/// reference city of the same ASHRAE class (the paper pairs Pittsburgh
/// with New York). Histogram support is derived from the pooled data.
///
/// # Errors
///
/// Returns [`ExtractError::NoHistoricalData`] for empty inputs and
/// propagates histogram/entropy errors.
pub fn noise_study(
    city_a: &[[f64; POLICY_INPUT_DIM]],
    city_b: &[[f64; POLICY_INPUT_DIM]],
    feature: usize,
    noise_levels: &[f64],
    samples_per_level: usize,
    bins: usize,
    seed: u64,
) -> Result<Vec<NoiseStudyRow>, ExtractError> {
    if city_a.is_empty() || city_b.is_empty() {
        return Err(ExtractError::NoHistoricalData);
    }
    let col_a = column(city_a, feature);
    let col_b = column(city_b, feature);
    let lo = col_a
        .iter()
        .chain(&col_b)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = col_a
        .iter()
        .chain(&col_b)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    // Widen the support so augmented samples stay in range.
    let pad = 0.25 * (hi - lo).max(1.0);
    let (lo, hi) = (lo - pad, hi + pad);

    let hist_a = Histogram::from_samples(bins, lo, hi, &col_a)?;
    let hist_b = Histogram::from_samples(bins, lo, hi, &col_b)?;
    let p_a = hist_a.probabilities();
    let p_b = hist_b.probabilities();
    let jsd_between_cities = jensen_shannon_distance(&p_a, &p_b)?;

    let mut rows = Vec::with_capacity(noise_levels.len());
    for (k, &level) in noise_levels.iter().enumerate() {
        let augmenter = NoiseAugmenter::fit(city_a.to_vec(), level)?;
        let mut rng = seeded_rng(seed.wrapping_add(k as u64));
        let augmented = augmenter.sample_many(&mut rng, samples_per_level);
        let aug_col = column(&augmented, feature);
        let hist_aug = Histogram::from_samples(bins, lo, hi, &aug_col)?;
        let p_aug = hist_aug.probabilities();
        rows.push(NoiseStudyRow {
            noise_level: level,
            entropy_bits: shannon_entropy(&p_aug)?,
            jsd_to_original: jensen_shannon_distance(&p_aug, &p_a)?,
            jsd_between_cities,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::space::feature;
    use hvac_stats::{sample_normal, seeded_rng};

    /// Synthetic "city" climates: Gaussian outdoor temperatures.
    fn city(mean: f64, std: f64, n: usize, seed: u64) -> Vec<[f64; POLICY_INPUT_DIM]> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let t = sample_normal(&mut rng, mean, std);
                [21.0, t, 60.0, 4.0, 100.0, 0.0, 12.0]
            })
            .collect()
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(noise_study(&[], &city(0.0, 1.0, 10, 1), 1, &[0.01], 100, 20, 0).is_err());
    }

    #[test]
    fn entropy_increases_with_noise() {
        let a = city(-1.5, 3.0, 800, 1);
        let b = city(0.5, 3.0, 800, 2);
        let rows = noise_study(
            &a,
            &b,
            feature::OUTDOOR_TEMPERATURE,
            &[0.01, 0.5],
            4000,
            40,
            0,
        )
        .unwrap();
        assert!(rows[1].entropy_bits > rows[0].entropy_bits);
    }

    #[test]
    fn jsd_to_original_increases_with_noise() {
        let a = city(-1.5, 3.0, 800, 1);
        let b = city(0.5, 3.0, 800, 2);
        let rows = noise_study(
            &a,
            &b,
            feature::OUTDOOR_TEMPERATURE,
            &[0.01, 1.0],
            4000,
            40,
            0,
        )
        .unwrap();
        assert!(rows[1].jsd_to_original > rows[0].jsd_to_original);
    }

    #[test]
    fn small_noise_is_acceptable_like_the_paper() {
        // Paper's conclusion: noise in [0.01, 0.09] keeps the augmented
        // distribution closer to the original than the sibling 4A city.
        let a = city(-1.5, 3.0, 1500, 1);
        let b = city(0.8, 3.2, 1500, 2); // similar but distinct climate
        let rows = noise_study(
            &a,
            &b,
            feature::OUTDOOR_TEMPERATURE,
            &[0.01, 0.05, 0.09],
            6000,
            40,
            0,
        )
        .unwrap();
        for row in &rows {
            assert!(
                row.acceptable(),
                "noise {} drifted too far: {} >= {}",
                row.noise_level,
                row.jsd_to_original,
                row.jsd_between_cities
            );
        }
    }

    #[test]
    fn huge_noise_is_rejected() {
        let a = city(-1.5, 3.0, 1500, 1);
        let b = city(0.8, 3.2, 1500, 2);
        let rows = noise_study(&a, &b, feature::OUTDOOR_TEMPERATURE, &[8.0], 6000, 40, 0).unwrap();
        assert!(!rows[0].acceptable());
    }

    #[test]
    fn jsd_between_cities_constant_across_rows() {
        let a = city(-1.5, 3.0, 400, 1);
        let b = city(11.0, 2.0, 400, 2);
        let rows = noise_study(
            &a,
            &b,
            feature::OUTDOOR_TEMPERATURE,
            &[0.01, 0.1, 0.3],
            1000,
            30,
            0,
        )
        .unwrap();
        assert!(rows
            .windows(2)
            .all(|w| w[0].jsd_between_cities == w[1].jsd_between_cities));
    }
}
