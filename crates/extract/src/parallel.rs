//! Parallel decision-dataset generation.
//!
//! Distilling each decision point is embarrassingly parallel: every
//! `(x, a*)` pair needs `mc_runs` independent optimizer invocations and
//! touches no shared state. This module fans the points out over
//! crossbeam scoped threads, with one derived RNG/controller per worker,
//! so the paper's dominant offline cost (the paper quotes 16.8 s *per
//! point*) scales with cores.
//!
//! The output is **not** bitwise identical to the sequential
//! [`crate::generate_decision_dataset`] (workers consume different RNG
//! streams) but it is deterministic for a fixed `(seed, threads)` pair
//! and statistically equivalent.
//!
//! Thread-level fan-out composes with the controller's lockstep-batched
//! candidate evaluation (`rs_config.batched`, on by default): each
//! worker's optimizer advances all its candidate sequences through the
//! dynamics model one horizon step at a time, so the per-point cost
//! drops by the batch factor *and* the points spread across cores.

use crate::augment::NoiseAugmenter;
use crate::decision::{DecisionDataset, Distillation, ExtractionConfig};
use crate::error::ExtractError;
use hvac_control::{Predictor, RandomShootingConfig, RandomShootingController};
use hvac_env::{ActionSpace, Observation, POLICY_INPUT_DIM};
use hvac_stats::{seeded_rng, split_seed};

/// Generates a decision dataset with `threads` workers.
///
/// Each worker owns a fresh [`RandomShootingController`] built from
/// `rs_config` and a clone of `predictor`, seeded by
/// `split_seed(config.seed, worker)`.
///
/// # Determinism contract
///
/// The output is a pure function of `(config.seed, threads)`: inputs
/// are drawn sequentially from `config.seed` before the fan-out, and
/// worker `w` labels its fixed chunk with RNG stream
/// `split_seed(config.seed, w)`. Changing `threads` changes the
/// chunk-to-stream assignment (and therefore the labels), never the
/// inputs. `threads` is clamped to `n_points` up front — asking for
/// more workers than points would previously spawn only
/// `ceil(n_points / ceil(n_points / threads))` workers anyway (the
/// chunking left the rest without work), so the clamp changes no
/// observable output; it only makes the effective worker count, and
/// hence the seed assignment, explicit.
///
/// # Errors
///
/// Returns [`ExtractError::BadExtractionConfig`] for zero threads or an
/// invalid extraction configuration, and propagates controller
/// construction errors.
///
/// # Example
///
/// ```no_run
/// use hvac_extract::{generate_decision_dataset_parallel, ExtractionConfig, NoiseAugmenter};
/// use hvac_control::RandomShootingConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let model: hvac_dynamics::DynamicsModel = unimplemented!();
/// # let augmenter: NoiseAugmenter = unimplemented!();
/// let dataset = generate_decision_dataset_parallel(
///     &model,
///     RandomShootingConfig::paper(),
///     &augmenter,
///     &ExtractionConfig::paper(),
///     8, // workers
/// )?;
/// # Ok(())
/// # }
/// ```
pub fn generate_decision_dataset_parallel<P>(
    predictor: &P,
    rs_config: RandomShootingConfig,
    augmenter: &NoiseAugmenter,
    config: &ExtractionConfig,
    threads: usize,
) -> Result<DecisionDataset, ExtractError>
where
    P: Predictor + Clone + Send + Sync,
{
    config.validate()?;
    if threads == 0 {
        return Err(ExtractError::BadExtractionConfig { name: "threads" });
    }
    // More workers than points is silently wasteful, never useful: the
    // chunking below would hand the surplus workers empty ranges. Clamp
    // so the effective worker count (and seed assignment) is explicit.
    let threads = threads.min(config.n_points);

    // Pre-draw all inputs sequentially so the sampled input set matches
    // the sequential generator exactly; only the labeling fans out.
    let mut rng = seeded_rng(config.seed);
    let inputs: Vec<[f64; POLICY_INPUT_DIM]> = (0..config.n_points)
        .map(|_| augmenter.sample(&mut rng))
        .collect();

    let space = ActionSpace::new();
    let chunk = config.n_points.div_ceil(threads);
    let chunks: Vec<&[[f64; POLICY_INPUT_DIM]]> = inputs.chunks(chunk.max(1)).collect();

    let span = hvac_telemetry::Span::enter("extract.parallel");
    let points_total = hvac_telemetry::counter("extract.points");
    let rollouts_total = hvac_telemetry::counter("extract.rollouts");
    let rollouts_per_point = match config.distillation {
        Distillation::Mode => config.mc_runs as u64,
        Distillation::Mean | Distillation::Single => 1,
    };

    // Workers record counters on their own threads; propagate the
    // caller's telemetry scope (if any) so a `RunScope`-attributed run
    // still sees the fanned-out work as its own.
    let run_scope = hvac_telemetry::current_scope();
    let labels_per_chunk = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(w, chunk_inputs)| {
                let worker_predictor = predictor.clone();
                let worker_space = space.clone();
                let worker_scope = run_scope.clone();
                scope.spawn(move |_| -> Result<Vec<usize>, ExtractError> {
                    let _scope_guard = worker_scope.as_ref().map(|s| s.enter());
                    let mut controller = RandomShootingController::new(
                        worker_predictor,
                        rs_config,
                        split_seed(config.seed, w as u64),
                    )?;
                    // Per-worker rollout counter: exposes skew between
                    // workers when chunk sizes are uneven.
                    let worker_rollouts =
                        hvac_telemetry::counter(&format!("extract.worker.{w}.rollouts"));
                    let mut labels = Vec::with_capacity(chunk_inputs.len());
                    for x in *chunk_inputs {
                        let obs = Observation::from_vector(x);
                        let action = match config.distillation {
                            Distillation::Mode => {
                                controller.most_frequent_action(&obs, config.mc_runs)
                            }
                            Distillation::Mean | Distillation::Single => {
                                // The parallel path supports the paper's
                                // mode rule plus single-run; the mean
                                // rule shares the distribution helper in
                                // `decision.rs`, so route through mode
                                // semantics here to stay self-contained.
                                controller.plan(&obs)
                            }
                        };
                        points_total.incr();
                        rollouts_total.add(rollouts_per_point);
                        worker_rollouts.add(rollouts_per_point);
                        labels.push(worker_space.index_of(action));
                    }
                    Ok(labels)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("extraction worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope");

    let wall = span.close();
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        hvac_telemetry::gauge("extract.points_per_sec").set((config.n_points as f64 / secs) as u64);
    }

    let mut dataset = DecisionDataset::new();
    let mut cursor = 0;
    for worker_labels in labels_per_chunk {
        for label in worker_labels? {
            dataset.push(inputs[cursor], label);
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, config.n_points);
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_env::space::feature;
    use hvac_env::SetpointAction;

    #[derive(Clone)]
    struct Toy;
    impl Predictor for Toy {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let s = obs.zone_temperature;
            let pull = 0.3 * (f64::from(action.heating()) - s).max(0.0)
                - 0.3 * (s - f64::from(action.cooling())).max(0.0);
            s + pull - 0.1
        }
    }

    fn augmenter() -> NoiseAugmenter {
        let rows: Vec<[f64; POLICY_INPUT_DIM]> = (0..60)
            .map(|i| {
                let mut r = [0.0; POLICY_INPUT_DIM];
                r[feature::ZONE_TEMPERATURE] = 15.0 + (i % 12) as f64;
                r[feature::OUTDOOR_TEMPERATURE] = -5.0 + (i % 7) as f64;
                r[feature::OCCUPANT_COUNT] = f64::from(i % 2 == 0);
                r
            })
            .collect();
        NoiseAugmenter::fit(rows, 0.05).unwrap()
    }

    fn rs_config() -> RandomShootingConfig {
        RandomShootingConfig {
            samples: 60,
            ..RandomShootingConfig::paper()
        }
    }

    fn extraction(n: usize) -> ExtractionConfig {
        ExtractionConfig {
            n_points: n,
            mc_runs: 3,
            ..ExtractionConfig::paper()
        }
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(matches!(
            generate_decision_dataset_parallel(&Toy, rs_config(), &augmenter(), &extraction(5), 0),
            Err(ExtractError::BadExtractionConfig { name: "threads" })
        ));
    }

    #[test]
    fn produces_requested_size() {
        let d =
            generate_decision_dataset_parallel(&Toy, rs_config(), &augmenter(), &extraction(23), 4)
                .unwrap();
        assert_eq!(d.len(), 23);
        assert!(d.labels().iter().all(|&l| l < 90));
    }

    #[test]
    fn inputs_match_sequential_generator() {
        use hvac_control::RandomShootingController;
        let parallel =
            generate_decision_dataset_parallel(&Toy, rs_config(), &augmenter(), &extraction(15), 3)
                .unwrap();
        let mut teacher = RandomShootingController::new(Toy, rs_config(), 0).unwrap();
        let sequential =
            crate::generate_decision_dataset(&mut teacher, &augmenter(), &extraction(15)).unwrap();
        assert_eq!(parallel.inputs(), sequential.inputs());
    }

    #[test]
    fn deterministic_for_fixed_thread_count() {
        let run = || {
            generate_decision_dataset_parallel(&Toy, rs_config(), &augmenter(), &extraction(12), 3)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn surplus_threads_match_clamped_thread_count() {
        let run = |threads| {
            generate_decision_dataset_parallel(
                &Toy,
                rs_config(),
                &augmenter(),
                &extraction(5),
                threads,
            )
            .unwrap()
        };
        // 64 workers over 5 points degenerates to one point per worker —
        // bitwise identical to asking for exactly 5.
        assert_eq!(run(64), run(5));
    }

    #[test]
    fn single_thread_works() {
        let d =
            generate_decision_dataset_parallel(&Toy, rs_config(), &augmenter(), &extraction(8), 1)
                .unwrap();
        assert_eq!(d.len(), 8);
    }
}
