//! VIPER-style DAgger refinement of the extracted policy.
//!
//! The paper builds on Bastani et al.'s "Verifiable reinforcement
//! learning via policy extraction" (its reference \[5\]), whose VIPER
//! algorithm improves naive one-shot distillation with **data
//! aggregation**: deploy the *current* tree, collect the states it
//! actually visits, label them with the teacher, add them to the
//! decision dataset, refit, repeat. This closes the distribution gap
//! between the extraction inputs (augmented historical data) and the
//! states the tree steers the building into.
//!
//! The paper itself uses one-shot extraction; this module implements
//! the aggregation loop as the natural extension, reusing every
//! building block (teacher, augmenter, CART).

use crate::augment::NoiseAugmenter;
use crate::decision::{
    fit_decision_tree, generate_decision_dataset, DecisionDataset, ExtractionConfig,
};
use crate::error::ExtractError;
use hvac_control::{DtPolicy, Predictor, RandomShootingController};
use hvac_dtree::TreeConfig;
use hvac_env::{run_episode, EnvConfig, HvacEnv};

/// Settings for the DAgger loop.
#[derive(Debug, Clone)]
pub struct DaggerConfig {
    /// Initial (round-0) extraction settings; later rounds reuse the
    /// Monte-Carlo budget but draw inputs from deployments.
    pub extraction: ExtractionConfig,
    /// CART settings for every refit.
    pub tree: TreeConfig,
    /// Number of aggregation rounds after the initial fit.
    pub rounds: usize,
    /// Deployment steps per round (states collected for relabeling).
    pub rollout_steps: usize,
    /// Of the visited states, how many (evenly strided) get teacher
    /// labels per round — relabeling is the expensive part.
    pub labels_per_round: usize,
}

impl DaggerConfig {
    /// A light configuration: 2 rounds, 2 deployment days, 50 new
    /// labels per round.
    pub fn light(extraction: ExtractionConfig) -> Self {
        Self {
            extraction,
            tree: TreeConfig::default(),
            rounds: 2,
            rollout_steps: 2 * 96,
            labels_per_round: 50,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::BadExtractionConfig`] for zero rounds,
    /// rollout steps, or labels, and propagates extraction validation.
    pub fn validate(&self) -> Result<(), ExtractError> {
        self.extraction.validate()?;
        if self.rounds == 0 {
            return Err(ExtractError::BadExtractionConfig { name: "rounds" });
        }
        if self.rollout_steps == 0 {
            return Err(ExtractError::BadExtractionConfig {
                name: "rollout_steps",
            });
        }
        if self.labels_per_round == 0 {
            return Err(ExtractError::BadExtractionConfig {
                name: "labels_per_round",
            });
        }
        Ok(())
    }
}

/// Result of a DAgger run.
#[derive(Debug, Clone)]
pub struct DaggerOutcome {
    /// The final fitted policy (not yet verified — run the verification
    /// pass on it like on any extracted tree).
    pub policy: DtPolicy,
    /// The aggregated decision dataset across all rounds.
    pub dataset: DecisionDataset,
    /// Decision-dataset size after each round (including round 0).
    pub dataset_sizes: Vec<usize>,
}

/// Runs one-shot extraction followed by `rounds` of deploy-relabel-refit
/// aggregation.
///
/// # Errors
///
/// Propagates configuration, environment, and fitting errors.
pub fn extract_with_dagger<P>(
    teacher: &mut RandomShootingController<P>,
    augmenter: &NoiseAugmenter,
    env_config: &EnvConfig,
    config: &DaggerConfig,
) -> Result<DaggerOutcome, ExtractError>
where
    P: Predictor + Sync,
{
    config.validate()?;

    // Round 0: the paper's one-shot extraction.
    let mut dataset = generate_decision_dataset(teacher, augmenter, &config.extraction)?;
    let mut policy = fit_decision_tree(&dataset, &config.tree)?;
    let mut sizes = vec![dataset.len()];

    for round in 0..config.rounds {
        // Deploy the current tree and record the visited states.
        let deploy_config = env_config
            .clone()
            .with_episode_steps(config.rollout_steps)
            .with_seed(env_config.weather_seed.wrapping_add(round as u64 + 1));
        let mut env = HvacEnv::new(deploy_config)?;
        let record = run_episode(&mut env, &mut policy)?;

        // Relabel an evenly-strided subset of visited states with the
        // teacher's mode action.
        let stride = (record.steps.len() / config.labels_per_round).max(1);
        let space = policy.action_space().clone();
        for step in record.steps.iter().step_by(stride) {
            let action = teacher.most_frequent_action(&step.observation, config.extraction.mc_runs);
            dataset.push(step.observation.to_vector(), space.index_of(action));
        }

        policy = fit_decision_tree(&dataset, &config.tree)?;
        sizes.push(dataset.len());
    }

    Ok(DaggerOutcome {
        policy,
        dataset,
        dataset_sizes: sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_control::RandomShootingConfig;
    use hvac_dynamics::{collect_historical_dataset, DynamicsModel, ModelConfig};
    use hvac_nn::TrainConfig;

    fn stack() -> (
        RandomShootingController<DynamicsModel>,
        NoiseAugmenter,
        EnvConfig,
    ) {
        let env_config = EnvConfig::pittsburgh().with_episode_steps(96);
        let historical = collect_historical_dataset(&env_config, 1, 3).unwrap();
        let model = DynamicsModel::train(
            &historical,
            &ModelConfig {
                hidden: vec![16],
                train: TrainConfig {
                    epochs: 20,
                    ..TrainConfig::paper()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
        let augmenter = NoiseAugmenter::fit(historical.policy_inputs(), 0.05).unwrap();
        let teacher = RandomShootingController::new(
            model,
            RandomShootingConfig {
                samples: 40,
                ..RandomShootingConfig::paper()
            },
            0,
        )
        .unwrap();
        (teacher, augmenter, env_config)
    }

    fn light() -> DaggerConfig {
        DaggerConfig::light(ExtractionConfig {
            n_points: 20,
            mc_runs: 2,
            ..ExtractionConfig::paper()
        })
    }

    #[test]
    fn validates_configuration() {
        let mut c = light();
        c.rounds = 0;
        assert!(c.validate().is_err());
        let mut c = light();
        c.rollout_steps = 0;
        assert!(c.validate().is_err());
        let mut c = light();
        c.labels_per_round = 0;
        assert!(c.validate().is_err());
        assert!(light().validate().is_ok());
    }

    #[test]
    fn aggregates_across_rounds() {
        let (mut teacher, augmenter, env_config) = stack();
        let mut config = light();
        config.rounds = 2;
        config.rollout_steps = 48;
        config.labels_per_round = 10;
        let outcome = extract_with_dagger(&mut teacher, &augmenter, &env_config, &config).unwrap();
        assert_eq!(outcome.dataset_sizes.len(), 3);
        assert!(outcome.dataset_sizes.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(
            outcome.dataset.len(),
            *outcome.dataset_sizes.last().unwrap()
        );
        assert!(outcome.policy.tree().node_count() >= 1);
    }

    #[test]
    fn final_policy_is_deployable() {
        use hvac_env::Policy;
        let (mut teacher, augmenter, env_config) = stack();
        let outcome = extract_with_dagger(&mut teacher, &augmenter, &env_config, &light()).unwrap();
        let mut policy = outcome.policy;
        let mut env = HvacEnv::new(env_config.with_episode_steps(24)).unwrap();
        let record = run_episode(&mut env, &mut policy).unwrap();
        assert_eq!(record.steps.len(), 24);
        assert!(policy.is_deterministic());
    }
}
