//! Decision-dataset generation and tree fitting (Section 3.2).
//!
//! Each entry of the decision dataset `Π : {(s, d, a*)}` is produced by
//! *distilling* the stochastic MBRL decision at an augmented input: the
//! random-shooting optimizer is run `mc_runs` times and the most
//! frequent action becomes the label (the paper's mode-of-`p(â)` rule).
//! A mean-distillation variant is included for the ablation called out
//! in DESIGN.md.
//!
//! Extraction is the repo's hottest loop — `n_points × mc_runs`
//! optimizer invocations, each scoring `samples` sequences over the
//! horizon — so the teacher controller's lockstep-batched evaluation
//! (`RandomShootingConfig::batched`, on by default) matters most here:
//! every distilled label costs `H` batched dynamics-model calls per
//! optimizer run instead of `N × H` scalar calls, with bit-identical
//! labels either way.

use crate::augment::NoiseAugmenter;
use crate::error::ExtractError;
use hvac_control::{DtPolicy, Predictor, RandomShootingController};
use hvac_dtree::{DecisionTree, TreeConfig};
use hvac_env::{ActionSpace, Observation, SetpointAction, POLICY_INPUT_DIM};
use hvac_stats::seeded_rng;

/// How to collapse the optimizer's action distribution into one label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distillation {
    /// The most frequent action over the Monte-Carlo runs — the paper's
    /// choice (Section 3.2.1).
    #[default]
    Mode,
    /// The setpoint-wise mean action, rounded onto the legal grid — the
    /// ablation alternative.
    Mean,
    /// A single optimizer run (no distillation) — the naive baseline.
    Single,
}

/// Extraction settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionConfig {
    /// Number of decision data points to generate (Fig. 6 shows ~100
    /// suffices).
    pub n_points: usize,
    /// Monte-Carlo optimizer runs per point.
    pub mc_runs: usize,
    /// Distillation rule.
    pub distillation: Distillation,
    /// Seed for input sampling.
    pub seed: u64,
}

impl ExtractionConfig {
    /// The paper's extraction settings: mode distillation over a
    /// moderate Monte-Carlo budget.
    pub fn paper() -> Self {
        Self {
            n_points: 100,
            mc_runs: 10,
            distillation: Distillation::Mode,
            seed: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::BadExtractionConfig`] when `n_points` or
    /// `mc_runs` is zero.
    pub fn validate(&self) -> Result<(), ExtractError> {
        if self.n_points == 0 {
            return Err(ExtractError::BadExtractionConfig { name: "n_points" });
        }
        if self.mc_runs == 0 {
            return Err(ExtractError::BadExtractionConfig { name: "mc_runs" });
        }
        Ok(())
    }
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The decision dataset `Π`: policy inputs paired with distilled optimal
/// action labels (action-space indices).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionDataset {
    inputs: Vec<[f64; POLICY_INPUT_DIM]>,
    labels: Vec<usize>,
}

impl DecisionDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(x, a*)` pairs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Adds one pair.
    pub fn push(&mut self, input: [f64; POLICY_INPUT_DIM], label: usize) {
        self.inputs.push(input);
        self.labels.push(label);
    }

    /// The input rows.
    pub fn inputs(&self) -> &[[f64; POLICY_INPUT_DIM]] {
        &self.inputs
    }

    /// The action-class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// A prefix of the dataset (used by the Fig. 6/7 data-efficiency
    /// sweeps to fit trees on growing subsets without regenerating).
    pub fn truncated(&self, n: usize) -> DecisionDataset {
        let n = n.min(self.len());
        DecisionDataset {
            inputs: self.inputs[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }
}

fn mean_action(space: &ActionSpace, counts: &[usize]) -> SetpointAction {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return SetpointAction::off();
    }
    let mut heat = 0.0;
    let mut cool = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            let a = space.action(i).expect("count index in range");
            heat += c as f64 * f64::from(a.heating());
            cool += c as f64 * f64::from(a.cooling());
        }
    }
    SetpointAction::from_clamped(heat / total as f64, cool / total as f64)
}

/// Generates the decision dataset by sampling augmented inputs and
/// distilling the stochastic optimizer's choices.
///
/// # Errors
///
/// Returns [`ExtractError::BadExtractionConfig`] for an invalid
/// configuration.
pub fn generate_decision_dataset<P: Predictor + Sync>(
    controller: &mut RandomShootingController<P>,
    augmenter: &NoiseAugmenter,
    config: &ExtractionConfig,
) -> Result<DecisionDataset, ExtractError> {
    config.validate()?;
    let space = ActionSpace::new();
    let mut rng = seeded_rng(config.seed);
    let mut dataset = DecisionDataset::new();
    let points = hvac_telemetry::counter("extract.points");
    let rollouts = hvac_telemetry::counter("extract.rollouts");

    for _ in 0..config.n_points {
        let x = augmenter.sample(&mut rng);
        let obs = Observation::from_vector(&x);
        let action = match config.distillation {
            Distillation::Mode => controller.most_frequent_action(&obs, config.mc_runs),
            Distillation::Mean => {
                let counts = controller.action_distribution(&obs, config.mc_runs);
                mean_action(&space, &counts)
            }
            Distillation::Single => controller.plan(&obs),
        };
        points.incr();
        rollouts.add(match config.distillation {
            Distillation::Mode | Distillation::Mean => config.mc_runs as u64,
            Distillation::Single => 1,
        });
        dataset.push(x, space.index_of(action));
    }
    Ok(dataset)
}

/// Fits a CART policy on a decision dataset (Section 3.2.2).
///
/// # Errors
///
/// Returns [`ExtractError::EmptyDecisionDataset`] for an empty dataset
/// and propagates tree-fitting / policy-wrapping errors.
pub fn fit_decision_tree(
    dataset: &DecisionDataset,
    tree_config: &TreeConfig,
) -> Result<DtPolicy, ExtractError> {
    if dataset.is_empty() {
        return Err(ExtractError::EmptyDecisionDataset);
    }
    let inputs: Vec<Vec<f64>> = dataset.inputs().iter().map(|r| r.to_vec()).collect();
    let tree = DecisionTree::fit(
        &inputs,
        dataset.labels(),
        ActionSpace::new().len(),
        tree_config,
    )?;
    Ok(DtPolicy::new(tree)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_control::RandomShootingConfig;
    use hvac_env::space::feature;
    use hvac_env::Policy;

    /// Toy predictor: heating setpoint pulls the zone temperature up.
    struct Toy;
    impl Predictor for Toy {
        fn predict_next(&self, obs: &Observation, action: SetpointAction) -> f64 {
            let s = obs.zone_temperature;
            let pull = 0.3 * (f64::from(action.heating()) - s).max(0.0)
                - 0.3 * (s - f64::from(action.cooling())).max(0.0);
            s + pull - 0.1
        }
    }

    fn controller(seed: u64) -> RandomShootingController<Toy> {
        let config = RandomShootingConfig {
            samples: 80,
            ..RandomShootingConfig::paper()
        };
        RandomShootingController::new(Toy, config, seed).unwrap()
    }

    fn augmenter() -> NoiseAugmenter {
        let rows: Vec<[f64; POLICY_INPUT_DIM]> = (0..60)
            .map(|i| {
                let mut r = [0.0; POLICY_INPUT_DIM];
                r[feature::ZONE_TEMPERATURE] = 15.0 + (i % 12) as f64;
                r[feature::OUTDOOR_TEMPERATURE] = -5.0 + (i % 7) as f64;
                r[feature::RELATIVE_HUMIDITY] = 60.0;
                r[feature::WIND_SPEED] = 4.0;
                r[feature::SOLAR_RADIATION] = 80.0;
                r[feature::OCCUPANT_COUNT] = f64::from(i % 2 == 0);
                r
            })
            .collect();
        NoiseAugmenter::fit(rows, 0.05).unwrap()
    }

    fn quick_config() -> ExtractionConfig {
        ExtractionConfig {
            n_points: 25,
            mc_runs: 3,
            distillation: Distillation::Mode,
            seed: 0,
        }
    }

    #[test]
    fn config_validation() {
        assert!(ExtractionConfig::paper().validate().is_ok());
        assert!(ExtractionConfig {
            n_points: 0,
            ..quick_config()
        }
        .validate()
        .is_err());
        assert!(ExtractionConfig {
            mc_runs: 0,
            ..quick_config()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn generates_requested_size() {
        let mut c = controller(1);
        let d = generate_decision_dataset(&mut c, &augmenter(), &quick_config()).unwrap();
        assert_eq!(d.len(), 25);
        assert!(d.labels().iter().all(|&l| l < 90));
    }

    #[test]
    fn generation_is_seeded_in_inputs() {
        let d1 =
            generate_decision_dataset(&mut controller(1), &augmenter(), &quick_config()).unwrap();
        let d2 =
            generate_decision_dataset(&mut controller(1), &augmenter(), &quick_config()).unwrap();
        assert_eq!(d1.inputs(), d2.inputs());
        assert_eq!(d1.labels(), d2.labels());
    }

    #[test]
    fn fitted_policy_heats_cold_occupied_zones() {
        let mut c = controller(2);
        let config = ExtractionConfig {
            n_points: 60,
            mc_runs: 5,
            ..quick_config()
        };
        let d = generate_decision_dataset(&mut c, &augmenter(), &config).unwrap();
        let mut policy = fit_decision_tree(&d, &TreeConfig::default()).unwrap();
        let obs = Observation::new(
            15.0,
            hvac_env::Disturbances {
                outdoor_temperature: -3.0,
                relative_humidity: 60.0,
                wind_speed: 4.0,
                solar_radiation: 80.0,
                occupant_count: 1.0,
                hour_of_day: 10.0,
            },
        );
        let a = policy.decide(&obs);
        assert!(a.heating() >= 19, "extracted policy chose {a}");
    }

    #[test]
    fn empty_dataset_rejected_by_fit() {
        assert!(matches!(
            fit_decision_tree(&DecisionDataset::new(), &TreeConfig::default()),
            Err(ExtractError::EmptyDecisionDataset)
        ));
    }

    #[test]
    fn truncated_takes_prefix() {
        let mut d = DecisionDataset::new();
        for i in 0..10 {
            d.push([i as f64; POLICY_INPUT_DIM], i % 4);
        }
        let t = d.truncated(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.labels(), &[0, 1, 2, 3]);
        assert_eq!(d.truncated(99).len(), 10);
    }

    #[test]
    fn mean_action_averages() {
        let space = ActionSpace::new();
        let mut counts = vec![0usize; space.len()];
        counts[space.index_of(SetpointAction::new(16, 22).unwrap())] = 1;
        counts[space.index_of(SetpointAction::new(20, 28).unwrap())] = 1;
        let m = mean_action(&space, &counts);
        assert_eq!(m.heating(), 18);
        assert_eq!(m.cooling(), 25);
    }

    #[test]
    fn mean_action_on_empty_counts_is_off() {
        let space = ActionSpace::new();
        let counts = vec![0usize; space.len()];
        assert_eq!(mean_action(&space, &counts), SetpointAction::off());
    }

    #[test]
    fn distillation_modes_all_work() {
        for mode in [Distillation::Mode, Distillation::Mean, Distillation::Single] {
            let mut c = controller(3);
            let config = ExtractionConfig {
                n_points: 5,
                mc_runs: 3,
                distillation: mode,
                seed: 0,
            };
            let d = generate_decision_dataset(&mut c, &augmenter(), &config).unwrap();
            assert_eq!(d.len(), 5);
        }
    }
}
