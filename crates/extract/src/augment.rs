//! Eq. 5 noise augmentation of the historical input distribution.
//!
//! ```text
//! p̂(x) = X + N(0, noise_level × sqrt(Σ(xᵢ − x̄)² / |X|))
//! ```
//!
//! i.e. draw a row of the historical data `X` uniformly and add
//! element-wise Gaussian noise whose scale is `noise_level` times that
//! column's (population) standard deviation. This concentrates the
//! decision dataset on the scenarios that actually occur in the target
//! city's climate — the importance-sampling insight of Section 3.2.1.

use crate::error::ExtractError;
use hvac_env::space::feature;
use hvac_env::{Observation, POLICY_INPUT_DIM};
use hvac_stats::sample_standard_normal;
use rand::Rng;

/// A sampler for the augmented historical-input distribution `p̂(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseAugmenter {
    rows: Vec<[f64; POLICY_INPUT_DIM]>,
    noise_scales: [f64; POLICY_INPUT_DIM],
    noise_level: f64,
}

impl NoiseAugmenter {
    /// Fits the augmenter on historical policy inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::NoHistoricalData`] for an empty dataset
    /// and [`ExtractError::BadNoiseLevel`] for a negative or non-finite
    /// noise level.
    pub fn fit(rows: Vec<[f64; POLICY_INPUT_DIM]>, noise_level: f64) -> Result<Self, ExtractError> {
        if rows.is_empty() {
            return Err(ExtractError::NoHistoricalData);
        }
        if !(noise_level >= 0.0) || !noise_level.is_finite() {
            return Err(ExtractError::BadNoiseLevel { value: noise_level });
        }
        let n = rows.len() as f64;
        let mut means = [0.0; POLICY_INPUT_DIM];
        for row in &rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut scales = [0.0; POLICY_INPUT_DIM];
        for row in &rows {
            for ((s, v), m) in scales.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut scales {
            *s = noise_level * (*s / n).sqrt();
        }
        Ok(Self {
            rows,
            noise_scales: scales,
            noise_level,
        })
    }

    /// The configured noise level.
    pub fn noise_level(&self) -> f64 {
        self.noise_level
    }

    /// Number of historical rows backing the sampler.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the sampler has no rows (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Per-column Gaussian scales (`noise_level × column std`).
    pub fn noise_scales(&self) -> &[f64; POLICY_INPUT_DIM] {
        &self.noise_scales
    }

    /// The historical rows backing the sampler (serialization support;
    /// refitting on these rows with [`NoiseAugmenter::noise_level`]
    /// reconstructs the augmenter exactly).
    pub fn rows(&self) -> &[[f64; POLICY_INPUT_DIM]] {
        &self.rows
    }

    /// Draws one augmented input vector: a uniformly random historical
    /// row plus element-wise Gaussian noise. Physically impossible
    /// results are clamped (humidity into `[0, 100]`, wind/solar/
    /// occupancy to ≥ 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; POLICY_INPUT_DIM] {
        let base = self.rows[rng.gen_range(0..self.rows.len())];
        let mut out = base;
        for (v, s) in out.iter_mut().zip(&self.noise_scales) {
            *v += s * sample_standard_normal(rng);
        }
        out[feature::RELATIVE_HUMIDITY] = out[feature::RELATIVE_HUMIDITY].clamp(0.0, 100.0);
        out[feature::WIND_SPEED] = out[feature::WIND_SPEED].max(0.0);
        out[feature::SOLAR_RADIATION] = out[feature::SOLAR_RADIATION].max(0.0);
        out[feature::OCCUPANT_COUNT] = out[feature::OCCUPANT_COUNT].max(0.0);
        out[feature::HOUR_OF_DAY] = out[feature::HOUR_OF_DAY].rem_euclid(24.0);
        out
    }

    /// Draws one augmented input as an [`Observation`].
    pub fn sample_observation<R: Rng + ?Sized>(&self, rng: &mut R) -> Observation {
        Observation::from_vector(&self.sample(rng))
    }

    /// Draws `n` augmented rows.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
    ) -> Vec<[f64; POLICY_INPUT_DIM]> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvac_stats::seeded_rng;

    fn rows() -> Vec<[f64; POLICY_INPUT_DIM]> {
        (0..100)
            .map(|i| {
                let t = 18.0 + (i % 10) as f64 * 0.5;
                [
                    t,
                    -5.0 + (i % 7) as f64,
                    70.0,
                    4.0,
                    100.0,
                    (i % 3) as f64,
                    (i % 24) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            NoiseAugmenter::fit(Vec::new(), 0.05),
            Err(ExtractError::NoHistoricalData)
        ));
    }

    #[test]
    fn negative_noise_rejected() {
        assert!(NoiseAugmenter::fit(rows(), -0.1).is_err());
        assert!(NoiseAugmenter::fit(rows(), f64::NAN).is_err());
    }

    #[test]
    fn zero_noise_reproduces_rows() {
        let a = NoiseAugmenter::fit(rows(), 0.0).unwrap();
        let mut rng = seeded_rng(0);
        let s = a.sample(&mut rng);
        assert!(rows().contains(&s));
    }

    #[test]
    fn noise_scales_proportional_to_level() {
        let a1 = NoiseAugmenter::fit(rows(), 0.01).unwrap();
        let a9 = NoiseAugmenter::fit(rows(), 0.09).unwrap();
        for (s1, s9) in a1.noise_scales().iter().zip(a9.noise_scales()) {
            assert!((s9 - 9.0 * s1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_physical() {
        let a = NoiseAugmenter::fit(rows(), 2.0).unwrap(); // huge noise
        let mut rng = seeded_rng(7);
        for _ in 0..500 {
            let s = a.sample(&mut rng);
            assert!((0.0..=100.0).contains(&s[feature::RELATIVE_HUMIDITY]));
            assert!(s[feature::WIND_SPEED] >= 0.0);
            assert!(s[feature::SOLAR_RADIATION] >= 0.0);
            assert!(s[feature::OCCUPANT_COUNT] >= 0.0);
        }
    }

    #[test]
    fn sampling_is_seeded() {
        let a = NoiseAugmenter::fit(rows(), 0.05).unwrap();
        let s1 = a.sample_many(&mut seeded_rng(3), 10);
        let s2 = a.sample_many(&mut seeded_rng(3), 10);
        assert_eq!(s1, s2);
    }

    #[test]
    fn higher_noise_spreads_distribution() {
        use hvac_stats::OnlineStats;
        let spread = |level: f64| {
            let a = NoiseAugmenter::fit(rows(), level).unwrap();
            let mut rng = seeded_rng(11);
            let s: OnlineStats = a
                .sample_many(&mut rng, 2000)
                .iter()
                .map(|r| r[feature::OUTDOOR_TEMPERATURE])
                .collect();
            s.sample_std()
        };
        assert!(spread(0.5) > spread(0.01));
    }

    #[test]
    fn observation_sampling_roundtrips() {
        let a = NoiseAugmenter::fit(rows(), 0.05).unwrap();
        let mut rng = seeded_rng(1);
        let obs = a.sample_observation(&mut rng);
        assert!(obs.zone_temperature.is_finite());
    }
}
