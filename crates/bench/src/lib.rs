//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). All binaries accept:
//!
//! * `--paper` — run at the paper's full scale (month-long episodes,
//!   1000-sample random shooting). Without it a reduced scale is used
//!   that preserves the qualitative shape in a fraction of the time.
//! * `--csv` — additionally write the rows to `results/<name>.csv`.
//! * `--verbose` / `--quiet` — raise/lower the stderr progress level.
//! * `--metrics-addr HOST:PORT` — expose the live metrics registry
//!   over HTTP (`/metrics`, `/healthz`, `/summary.json`) for the
//!   duration of the run, so long benches can be watched from a
//!   Prometheus scrape or a `curl` loop.
//!
//! Output is printed as aligned text tables; CSVs land in `results/`.
//! Progress lines go through the `hvac-telemetry` stderr sink;
//! `HVAC_TELEMETRY=<path>` additionally captures JSONL events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hvac_telemetry::{info, warn, Level, StderrSink};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use veri_hvac::control::{PlanningConfig, RandomShootingConfig};
use veri_hvac::dynamics::{DynamicsEnsemble, EnsembleConfig, ModelConfig};
use veri_hvac::env::EnvConfig;
use veri_hvac::extract::ExtractionConfig;
use veri_hvac::nn::TrainConfig;
use veri_hvac::pipeline::{run_pipeline, PipelineArtifacts, PipelineConfig};

/// Execution scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale: qualitative shape in seconds-to-minutes.
    Reduced,
    /// The paper's scale: month-long January episodes, RS with 1000
    /// samples and horizon 20.
    Paper,
}

impl Scale {
    /// Evaluation episode length in 15-minute steps.
    pub fn episode_steps(self) -> usize {
        match self {
            Scale::Reduced => 7 * 96,
            Scale::Paper => 31 * 96,
        }
    }

    /// Random-shooting sample count.
    pub fn rs_samples(self) -> usize {
        match self {
            Scale::Reduced => 200,
            Scale::Paper => 1000,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Reduced => "reduced",
            Scale::Paper => "paper",
        }
    }
}

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Requested scale.
    pub scale: Scale,
    /// Whether to write CSV output.
    pub csv: bool,
}

/// The metrics server started by `--metrics-addr`, held for the
/// lifetime of the process so the listener outlives `parse_options`.
static METRICS_SERVER: OnceLock<hvac_telemetry::http::HttpServer> = OnceLock::new();

/// Parses `--paper` / `--csv` / `--verbose` / `--quiet` /
/// `--metrics-addr HOST:PORT` from `std::env::args` and installs the
/// harness's leveled stderr sink (plus the `HVAC_TELEMETRY` JSONL sink
/// when the variable is set). With `--metrics-addr` the live registry
/// is additionally exposed over HTTP until the process exits.
pub fn parse_options() -> HarnessOptions {
    let mut options = HarnessOptions {
        scale: Scale::Reduced,
        csv: false,
    };
    let mut level = Level::Info;
    let mut metrics_addr = None;
    let mut unknown = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => options.scale = Scale::Paper,
            "--csv" => options.csv = true,
            "--verbose" => level = Level::Debug,
            "--quiet" => level = Level::Warn,
            "--metrics-addr" => metrics_addr = args.next(),
            other => unknown.push(other.to_string()),
        }
    }
    hvac_telemetry::set_sink(Arc::new(StderrSink::new(level)));
    hvac_telemetry::init_from_env();
    hvac_telemetry::install_panic_flush_hook();
    for other in unknown {
        warn!("ignoring unknown argument {other}");
    }
    if let Some(addr) = metrics_addr {
        match hvac_telemetry::http::HttpServer::bind(&addr) {
            Ok(server) => {
                let _ = METRICS_SERVER.set(server);
            }
            Err(e) => warn!("cannot bind metrics server on {addr}: {e}"),
        }
    }
    options
}

/// The two evaluation cities of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum City {
    /// Pittsburgh, PA — ASHRAE 4A.
    Pittsburgh,
    /// Tucson, AZ — ASHRAE 2B.
    Tucson,
}

impl City {
    /// Both cities in paper order.
    pub const BOTH: [City; 2] = [City::Pittsburgh, City::Tucson];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Pittsburgh => "Pittsburgh",
            City::Tucson => "Tucson",
        }
    }

    /// Environment configuration for the city.
    pub fn env_config(self) -> EnvConfig {
        match self {
            City::Pittsburgh => EnvConfig::pittsburgh(),
            City::Tucson => EnvConfig::tucson(),
        }
    }
}

/// Builds the scale-appropriate pipeline configuration for a city.
pub fn pipeline_config(city: City, scale: Scale) -> PipelineConfig {
    let env = city.env_config();
    let planning = PlanningConfig::paper_with_schedule(env.schedule, env.controlled_zone);
    match scale {
        Scale::Paper => {
            let mut config = PipelineConfig::paper_with_env(city.env_config());
            config.rs = RandomShootingConfig {
                planning,
                ..config.rs
            };
            // Fig. 6 shows ~100 points saturate *control performance*,
            // but Table 2's trees (599/1646 leaves) imply a much larger
            // decision dataset; use one so leaf boxes are fine enough
            // for Algorithm 1 to find few violations.
            config.extraction = ExtractionConfig {
                n_points: 1000,
                mc_runs: 10,
                ..ExtractionConfig::paper()
            };
            config
        }
        Scale::Reduced => {
            let mut config = PipelineConfig::reduced(env);
            config.rs = RandomShootingConfig {
                samples: 200,
                planning,
                ..RandomShootingConfig::paper()
            };
            config
        }
    }
}

/// Runs the extraction pipeline for a city at the requested scale,
/// logging wall time.
///
/// # Panics
///
/// Panics if the pipeline fails — harness binaries treat that as fatal.
pub fn build_artifacts(city: City, scale: Scale) -> PipelineArtifacts {
    let started = Instant::now();
    info!(
        "[harness] building artifacts for {} at {} scale…",
        city.name(),
        scale.label()
    );
    let artifacts =
        run_pipeline(&pipeline_config(city, scale)).expect("pipeline must succeed for benches");
    info!(
        "[harness] {} artifacts ready in {:.1}s (tree: {} nodes, val RMSE {:.3} °C)",
        city.name(),
        started.elapsed().as_secs_f64(),
        artifacts.policy.tree().node_count(),
        artifacts.model.validation_rmse()
    );
    artifacts
}

/// Trains a CLUE-style ensemble at the requested scale.
///
/// # Panics
///
/// Panics if ensemble training fails.
pub fn build_ensemble(artifacts: &PipelineArtifacts, scale: Scale) -> DynamicsEnsemble {
    let members = match scale {
        Scale::Reduced => 3,
        Scale::Paper => 5,
    };
    let config = EnsembleConfig {
        members,
        model: ModelConfig {
            hidden: vec![64],
            train: TrainConfig {
                epochs: match scale {
                    Scale::Reduced => 40,
                    Scale::Paper => 150,
                },
                ..TrainConfig::paper()
            },
            ..ModelConfig::default()
        },
        bootstrap: true,
    };
    DynamicsEnsemble::train(&artifacts.historical, &config).expect("ensemble training")
}

/// A simple text/CSV table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        println!("{}", header.join("  "));
        println!("{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Writes the table to `results/<name>.csv`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (harness binaries treat that as fatal).
    pub fn write_csv(&self, name: &str) {
        std::fs::create_dir_all("results").expect("create results dir");
        let path = format!("results/{name}.csv");
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write csv");
        println!("[csv] wrote {path}");
    }

    /// Prints, and writes CSV when requested.
    pub fn emit(&self, name: &str, options: &HarnessOptions) {
        self.print();
        if options.csv {
            self.write_csv(name);
        }
    }
}

/// Formats a float with fixed decimals for table cells.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::Reduced.episode_steps(), 672);
        assert_eq!(Scale::Paper.episode_steps(), 2976);
        assert_eq!(Scale::Paper.rs_samples(), 1000);
        assert_eq!(Scale::Reduced.label(), "reduced");
    }

    #[test]
    fn city_configs_differ() {
        assert_ne!(
            City::Pittsburgh.env_config().climate.name,
            City::Tucson.env_config().climate.name
        );
        assert_eq!(City::BOTH.len(), 2);
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("demo", &["a", "b"]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
        t.print(); // must not panic
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-0.5, 0), "-0");
    }

    #[test]
    fn pipeline_configs_scale() {
        let reduced = pipeline_config(City::Pittsburgh, Scale::Reduced);
        let paper = pipeline_config(City::Pittsburgh, Scale::Paper);
        assert!(reduced.rs.samples < paper.rs.samples);
        assert_eq!(paper.rs.samples, 1000);
        assert_eq!(paper.rs.planning.horizon, 20);
    }
}
