//! Figure 5 — our method's behavior example: the extracted decision-tree
//! policy is deterministic on the same fixed day where the MBRL
//! controller was stochastic (Fig. 1).
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig5_determinism [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, fmt, parse_options, City, Table};
use veri_hvac::env::{run_episode, HvacEnv};
use veri_hvac::sim::{SimClock, WeatherGenerator, STEPS_PER_DAY};
use veri_hvac::stats::OnlineStats;

const RUNS: usize = 10;

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let artifacts = build_artifacts(city, options.scale);

    // The same fixed day used by fig1_stochasticity (same seed).
    let mut generator = WeatherGenerator::new(city.env_config().climate.clone(), 424_242);
    let day = generator.trace(&SimClock::january(), STEPS_PER_DAY + 1);

    let mut traces: Vec<Vec<i32>> = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let mut policy = artifacts.policy.clone();
        let mut env = HvacEnv::with_weather_trace(
            city.env_config().with_episode_steps(STEPS_PER_DAY),
            day.clone(),
        )
        .expect("trace env");
        let record = run_episode(&mut env, &mut policy).expect("episode");
        traces.push(record.heating_setpoints());
    }

    let mut table = Table::new(
        "Fig. 5: DT policy heating setpoint across 10 runs, fixed disturbances",
        &["hour", "mean_setpoint_C", "std_C"],
    );
    let mut total_std = OnlineStats::new();
    for hour in 8..22 {
        let mut stats = OnlineStats::new();
        for trace in &traces {
            for &sp in &trace[hour * 4..(hour + 1) * 4] {
                stats.push(f64::from(sp));
            }
        }
        // std across runs at a fixed step is what matters; compute it
        // per step and average within the hour.
        let mut cross_run = OnlineStats::new();
        for step in hour * 4..(hour + 1) * 4 {
            let per_step: OnlineStats = traces.iter().map(|t| f64::from(t[step])).collect();
            cross_run.push(per_step.sample_std());
        }
        total_std.push(cross_run.mean());
        table.push_row(vec![
            format!("{hour:02}:00"),
            fmt(stats.mean(), 2),
            fmt(cross_run.mean(), 4),
        ]);
    }
    table.emit("fig5_dt_determinism", &options);

    let distinct: std::collections::HashSet<&Vec<i32>> = traces.iter().collect();
    println!(
        "\ndistinct setpoint traces across {RUNS} runs: {}",
        distinct.len()
    );
    println!("cross-run setpoint std: {:.6} °C", total_std.mean());
    assert_eq!(
        distinct.len(),
        1,
        "the decision-tree policy must be bitwise deterministic"
    );
    println!(
        "PASS: all {RUNS} runs produced the identical setpoint trace (paper's determinism claim)"
    );
}
