//! Figure 3 — the noise-level study behind Eq. 5's `noise_level`
//! choice.
//!
//! Compares, per candidate noise level, the information entropy of the
//! augmented Pittsburgh input distribution and its Jensen–Shannon
//! distance to the original data, against the JSD between Pittsburgh
//! and New York (both ASHRAE 4A). The paper accepts noise levels whose
//! augmented distribution stays closer to the original than the sibling
//! city does, and prefers higher entropy — concluding
//! `noise_level ∈ [0.01, 0.09]`.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig3_noise_study [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, Scale, Table};
use hvac_telemetry::info;
use veri_hvac::dynamics::collect_historical_dataset;
use veri_hvac::env::space::feature;
use veri_hvac::env::EnvConfig;
use veri_hvac::extract::noise_study;

fn main() {
    let options = parse_options();
    let episodes = match options.scale {
        Scale::Reduced => 2,
        Scale::Paper => 4,
    };
    let steps = match options.scale {
        Scale::Reduced => 7 * 96,
        Scale::Paper => 31 * 96,
    };

    info!("[harness] collecting historical data for Pittsburgh and New York…");
    let pittsburgh = collect_historical_dataset(
        &EnvConfig::pittsburgh().with_episode_steps(steps),
        episodes,
        11,
    )
    .expect("collect Pittsburgh");
    let new_york = collect_historical_dataset(
        &EnvConfig::new_york().with_episode_steps(steps),
        episodes,
        13,
    )
    .expect("collect New York");

    let noise_levels = [0.01, 0.03, 0.05, 0.09, 0.15, 0.25, 0.35, 0.5];
    let rows = noise_study(
        &pittsburgh.policy_inputs(),
        &new_york.policy_inputs(),
        feature::OUTDOOR_TEMPERATURE,
        &noise_levels,
        20_000,
        40,
        0,
    )
    .expect("noise study");

    let mut table = Table::new(
        "Fig. 3: entropy and JSD of the augmented distribution (outdoor temperature)",
        &[
            "noise_level",
            "entropy_bits",
            "jsd_to_original",
            "jsd_pittsburgh_newyork",
            "acceptable",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            fmt(row.noise_level, 2),
            fmt(row.entropy_bits, 3),
            fmt(row.jsd_to_original, 4),
            fmt(row.jsd_between_cities, 4),
            if row.acceptable() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.emit("fig3_noise_study", &options);

    let accepted: Vec<f64> = rows
        .iter()
        .filter(|r| r.acceptable())
        .map(|r| r.noise_level)
        .collect();
    println!("\naccepted noise levels (JSD below the cross-city budget): {accepted:?}");
    println!("paper's conclusion: noise_level ∈ [0.01, 0.09]");
    let low_ok = rows.iter().take(4).all(|r| r.acceptable());
    println!(
        "{}: the paper's [0.01, 0.09] band is {}accepted by our data",
        if low_ok { "PASS" } else { "NOTE" },
        if low_ok { "" } else { "not fully " },
    );
}
