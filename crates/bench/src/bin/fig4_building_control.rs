//! Figure 4 — building control results: energy versus comfort for the
//! four controllers in both cities.
//!
//! Reproduces the evaluation protocol of Section 4.2.1: deploy each
//! policy in the simulated building for the January episode and record
//! electrical energy and comfort-violation rate. The paper's headline:
//! DT (ours) saves more energy than CLUE, which saves more than the
//! default controller, while keeping violations low; MBRL is
//! energy-hungry and/or violation-prone in comparison.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig4_building_control [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, build_ensemble, fmt, parse_options, City, Table};
use hvac_telemetry::info;
use veri_hvac::control::{
    ClueConfig, ClueController, PlanningConfig, RandomShootingConfig, RandomShootingController,
    RuleBasedController,
};
use veri_hvac::env::{run_episode, ComfortRange, EpisodeMetrics, HvacEnv, Policy};

fn evaluate<P: Policy>(city: City, steps: usize, policy: &mut P) -> EpisodeMetrics {
    let mut env =
        HvacEnv::new(city.env_config().with_episode_steps(steps)).expect("env construction");
    run_episode(&mut env, policy).expect("episode").metrics
}

fn main() {
    let options = parse_options();
    let steps = options.scale.episode_steps();

    let mut table = Table::new(
        "Fig. 4: building control results (January episode)",
        &[
            "city",
            "controller",
            "energy_kwh",
            "zone_energy_kwh",
            "violation_rate_%",
            "mean_violation_C",
            "reward",
        ],
    );

    let mut summary: Vec<(City, String, f64, f64)> = Vec::new();

    for city in City::BOTH {
        let artifacts = build_artifacts(city, options.scale);
        let env_config = city.env_config();
        let rs_config = RandomShootingConfig {
            samples: options.scale.rs_samples(),
            planning: PlanningConfig::paper_with_schedule(
                env_config.schedule,
                env_config.controlled_zone,
            ),
            ..RandomShootingConfig::paper()
        };

        // default [12]
        let mut default_ctl = RuleBasedController::new(ComfortRange::winter());
        let m_default = evaluate(city, steps, &mut default_ctl);

        // MBRL [9]
        let mut mbrl =
            RandomShootingController::new(artifacts.model.clone(), rs_config, 1).expect("rs");
        let m_mbrl = evaluate(city, steps, &mut mbrl);

        // CLUE [1]
        let ensemble = build_ensemble(&artifacts, options.scale);
        let mut clue = ClueController::new(
            ensemble,
            ClueConfig {
                planner: rs_config,
                ..ClueConfig::paper()
            },
            RuleBasedController::new(ComfortRange::winter()),
            2,
        )
        .expect("clue");
        let m_clue = evaluate(city, steps, &mut clue);
        info!(
            "[harness] {}: CLUE fallback rate {:.1}%",
            city.name(),
            100.0 * clue.fallback_rate()
        );

        // DT (ours)
        let mut dt = artifacts.policy.clone();
        let m_dt = evaluate(city, steps, &mut dt);

        for (name, m) in [
            ("default", &m_default),
            ("mbrl", &m_mbrl),
            ("clue", &m_clue),
            ("dt (ours)", &m_dt),
        ] {
            table.push_row(vec![
                city.name().into(),
                name.into(),
                fmt(m.total_electric_kwh, 1),
                fmt(m.zone_electric_kwh, 1),
                fmt(100.0 * m.violation_rate(), 1),
                fmt(m.mean_violation_degrees, 3),
                fmt(m.total_reward, 1),
            ]);
            summary.push((
                city,
                name.to_string(),
                m.zone_electric_kwh,
                m.violation_rate(),
            ));
        }
    }

    table.emit("fig4_building_control", &options);

    // Headline comparisons (savings vs the default controller, as the
    // paper reports them).
    println!("\n-- savings vs default controller (controlled zone) --");
    for city in City::BOTH {
        let energy = |name: &str| {
            summary
                .iter()
                .find(|(c, n, _, _)| *c == city && n == name)
                .map(|(_, _, e, _)| *e)
                .expect("present")
        };
        let default = energy("default");
        for name in ["clue", "dt (ours)"] {
            println!(
                "{:<11} {:<10} saves {:>7.1} kWh ({:>5.1}%)",
                city.name(),
                name,
                default - energy(name),
                100.0 * (default - energy(name)) / default,
            );
        }
    }
    println!("\npaper (for reference): CLUE saves 129.6/32.5 kWh, DT saves 149.6/71.8 kWh (Pittsburgh/Tucson)");
    println!("expected shape: DT saves the most energy; violations stay low for default/CLUE/DT.");
}
