//! Decision latency of the tree kernels: reference enum walk vs the
//! flat compiled kernel vs its fixed-point (quantized-threshold)
//! variant, single-decision and batched, plus the end-to-end fleet
//! `/tick` p99 delta the compiled path buys.
//!
//! Every timed path is first checked bit-identical against the enum
//! walk over the full probe set — a fast kernel that disagrees with
//! the verified tree is not a result, it's a bug. The CI gate
//! (`tree-kernel-smoke`) reads `BENCH_tree_decide.json` and requires
//! `compiled_single_ns < 100`, `compiled_batch_ns < 100`, and
//! `speedup_batch >= 1.25` (a regression tripwire; see EXPERIMENTS.md
//! for why the measured ratio sits well below the aspirational 5× on
//! shared single-vCPU runners).
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin tree_decide [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, Table};
use hvac_telemetry::json::ObjectWriter;
use std::hint::black_box;
use std::time::Instant;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{prove_equivalence, CompileOptions, CompiledTree, DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, Observation, POLICY_INPUT_DIM};
use veri_hvac::fleet::{Fleet, FleetOptions};
use veri_hvac::stats::Quantiles;

/// splitmix64 — deterministic input generation, no rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fits a policy-shaped tree (7 features, the 90-action class space)
/// on `samples` synthetic rows whose label depends on several
/// interacting features, so the tree grows to a size representative of
/// shipped extraction output (hundreds of nodes, depth ≳ 10) rather
/// than a toy that fits in a couple of cache lines either way.
fn fitted_tree(seed: u64, samples: usize) -> DecisionTree {
    let space = ActionSpace::new();
    let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..samples {
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = rng.f64_in(10.0, 30.0);
        row[feature::OUTDOOR_TEMPERATURE] = rng.f64_in(-10.0, 35.0);
        row[feature::HOUR_OF_DAY] = rng.f64_in(0.0, 24.0);
        row[feature::OCCUPANT_COUNT] = (rng.next() % 2) as f64;
        let temp_band = ((row[feature::ZONE_TEMPERATURE] - 10.0) / 1.25) as usize;
        let hour_band = row[feature::HOUR_OF_DAY] as usize;
        let cold_out = usize::from(row[feature::OUTDOOR_TEMPERATURE] < 5.0);
        let workday = usize::from((6.0..18.0).contains(&row[feature::HOUR_OF_DAY]));
        inputs.push(row);
        labels.push((temp_band * 97 + hour_band * 13 + cold_out * 7 + workday) % space.len());
    }
    DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).expect("synthetic fit")
}

/// `n` plausible observation rows, flattened for the batch kernel.
fn input_rows(rng: &mut Rng, n: usize) -> Vec<f64> {
    let mut rows = Vec::with_capacity(n * POLICY_INPUT_DIM);
    for _ in 0..n {
        let mut row = [0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = rng.f64_in(10.0, 30.0);
        row[feature::OUTDOOR_TEMPERATURE] = rng.f64_in(-10.0, 35.0);
        row[feature::HOUR_OF_DAY] = rng.f64_in(0.0, 24.0);
        row[feature::OCCUPANT_COUNT] = (rng.next() % 2) as f64;
        rows.extend_from_slice(&row);
    }
    rows
}

/// Times `f` over `iters` passes of `count` decisions; ns/decision.
fn time_ns(iters: usize, count: usize, mut f: impl FnMut()) -> f64 {
    // One warm pass primes caches and the branch predictor.
    f();
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_nanos() as f64 / (iters * count) as f64
}

/// p99 per-tick latency (µs) of an in-process fleet over `ticks`
/// lockstep batches, plus the decisions for the identity check.
fn tick_p99_us(
    fleet: &Fleet,
    requests: &[(String, Observation)],
    ticks: usize,
) -> (f64, Vec<(String, u64)>) {
    let mut latencies = Vec::with_capacity(ticks);
    let mut last = Vec::new();
    for _ in 0..ticks {
        let started = Instant::now();
        let decisions = fleet.tick(black_box(requests)).expect("tick");
        latencies.push(started.elapsed().as_nanos() as f64 / 1e3);
        last = decisions
            .iter()
            .map(|d| (d.tenant.clone(), d.action.heating() as u64))
            .collect();
    }
    let q = Quantiles::from_samples(&latencies).expect("latencies");
    (q.quantile(0.99), last)
}

fn main() {
    let options = parse_options();
    let (iters, rows_n, ticks) = match options.scale {
        hvac_bench::Scale::Reduced => (2_000, 1024, 200),
        hvac_bench::Scale::Paper => (20_000, 4096, 1_000),
    };

    let tree = fitted_tree(7, 8_000);
    let kernel = CompiledTree::compile(&tree, CompileOptions { quantized: true }).expect("compile");
    let proof = prove_equivalence(&tree, &kernel).expect("equivalence");
    println!(
        "tree: {} nodes ({} splits, {} leaves, depth {}); equivalence proven over {} probes",
        tree.node_count(),
        kernel.split_count(),
        kernel.leaf_count(),
        kernel.depth(),
        proof.probes
    );

    let mut rng = Rng(42);
    let rows = input_rows(&mut rng, rows_n);
    let singles: Vec<&[f64]> = rows.chunks(POLICY_INPUT_DIM).collect();

    // Bit-identity across every timed path before any timing.
    let mut batch_out = Vec::new();
    kernel
        .predict_batch_into(&rows, &mut batch_out)
        .expect("batch");
    for (i, x) in singles.iter().enumerate() {
        let reference = tree.predict(x).expect("walk");
        assert_eq!(reference, kernel.predict(x).expect("compiled"), "row {i}");
        assert_eq!(
            reference,
            kernel.predict_quantized(x).expect("quantized"),
            "row {i}"
        );
        assert_eq!(reference, batch_out[i], "row {i} (batch)");
    }

    let walk_single = time_ns(iters, singles.len(), || {
        for x in &singles {
            black_box(tree.predict(black_box(x)).expect("walk"));
        }
    });
    let compiled_single = time_ns(iters, singles.len(), || {
        for x in &singles {
            black_box(kernel.predict(black_box(x)).expect("compiled"));
        }
    });
    let quantized_single = time_ns(iters, singles.len(), || {
        for x in &singles {
            black_box(kernel.predict_quantized(black_box(x)).expect("quantized"));
        }
    });
    let compiled_batch = time_ns(iters, singles.len(), || {
        kernel
            .predict_batch_into(black_box(&rows), &mut batch_out)
            .expect("batch");
        black_box(&batch_out);
    });

    let speedup_single = walk_single / compiled_single;
    let speedup_batch = walk_single / compiled_batch;

    // End-to-end: a 32-tenant fleet (8 distinct trees × 4 buildings)
    // ticking in lockstep, compiled kernels vs pinned enum walks.
    let compiled_fleet = Fleet::new(FleetOptions::default());
    let walk_fleet = Fleet::new(FleetOptions::default());
    for t in 0..8u64 {
        let tree = fitted_tree(100 + t, 2_000);
        for b in 0..4 {
            let id = format!("b{t}-{b}");
            compiled_fleet
                .add_tenant(&id, DtPolicy::new(tree.clone()).expect("policy"), None)
                .expect("tenant");
            walk_fleet
                .add_tenant(
                    &id,
                    DtPolicy::new_uncompiled(tree.clone()).expect("policy"),
                    None,
                )
                .expect("tenant");
        }
    }
    let mut requests = Vec::new();
    for t in 0..8 {
        for b in 0..4 {
            let mut x = [0.0; POLICY_INPUT_DIM];
            x[feature::ZONE_TEMPERATURE] = rng.f64_in(10.0, 30.0);
            x[feature::HOUR_OF_DAY] = rng.f64_in(0.0, 24.0);
            requests.push((format!("b{t}-{b}"), Observation::from_vector(&x)));
        }
    }
    let (tick_p99_walk, walk_decisions) = tick_p99_us(&walk_fleet, &requests, ticks);
    let (tick_p99_compiled, compiled_decisions) = tick_p99_us(&compiled_fleet, &requests, ticks);
    assert_eq!(
        walk_decisions, compiled_decisions,
        "compiled fleet must tick bit-identically"
    );

    let mut table = Table::new(
        "Tree decision latency: enum walk vs compiled flat kernel",
        &["path", "ns/decide", "speedup"],
    );
    table.push_row(vec!["enum walk".into(), fmt(walk_single, 2), "1.00".into()]);
    table.push_row(vec![
        "compiled".into(),
        fmt(compiled_single, 2),
        fmt(speedup_single, 2),
    ]);
    table.push_row(vec![
        "compiled (quantized)".into(),
        fmt(quantized_single, 2),
        fmt(walk_single / quantized_single, 2),
    ]);
    table.push_row(vec![
        format!("compiled batch ({rows_n})"),
        fmt(compiled_batch, 2),
        fmt(speedup_batch, 2),
    ]);
    table.emit("tree_decide", &options);
    println!(
        "\nfleet /tick p99 (32 tenants): walk {tick_p99_walk:.1} µs → compiled \
         {tick_p99_compiled:.1} µs over {ticks} ticks"
    );

    let mut json = ObjectWriter::new();
    json.str_field("bench", "tree_decide");
    json.str_field("scale", options.scale.label());
    json.u64_field("tree_nodes", tree.node_count() as u64);
    json.u64_field("probes", proof.probes as u64);
    json.u64_field("rows", rows_n as u64);
    json.f64_field("walk_single_ns", walk_single);
    json.f64_field("compiled_single_ns", compiled_single);
    json.f64_field("quantized_single_ns", quantized_single);
    json.f64_field("compiled_batch_ns", compiled_batch);
    json.f64_field("speedup_single", speedup_single);
    json.f64_field("speedup_batch", speedup_batch);
    json.u64_field("tick_tenants", requests.len() as u64);
    json.f64_field("tick_p99_walk_us", tick_p99_walk);
    json.f64_field("tick_p99_compiled_us", tick_p99_compiled);
    let body = json.finish();
    let path = "BENCH_tree_decide.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");
}
