//! Scalar vs. lockstep-batched planner latency.
//!
//! The paper's random-shooting optimizer (N = 1000 candidate sequences,
//! H = 20 steps) dominates both online decision latency (Table 3) and
//! the offline extraction cost (16.8 s per decision point). This bench
//! times the same controller twice over a trained [`DynamicsModel`] —
//! once with scalar candidate evaluation (`N × H` model calls per
//! decision) and once with the lockstep-batched path (`H` batched calls
//! per decision) — and checks the two pick identical actions, since
//! `batched` is a pure latency knob.
//!
//! Results land in `BENCH_planner_latency.json` next to the text table,
//! so the speedup is machine-checkable across commits.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin planner_latency [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, City, Scale, Table};
use hvac_telemetry::json::ObjectWriter;
use std::time::Instant;
use veri_hvac::control::{
    forecast_rollout, PlanningConfig, RandomShootingConfig, RandomShootingController,
};
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel, ModelConfig};
use veri_hvac::env::{Disturbances, Observation, SetpointAction};
use veri_hvac::nn::TrainConfig;
use veri_hvac::stats::OnlineStats;

/// The paper's planner shape — the comparison point the acceptance
/// criterion names, timed at both scales (only the model-training budget
/// and the number of timed decisions shrink under `Reduced`).
const SAMPLES: usize = 1000;
const HORIZON: usize = 20;

fn observations(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            Observation::new(
                15.0 + (i % 10) as f64,
                Disturbances {
                    outdoor_temperature: -5.0 + (i % 7) as f64,
                    relative_humidity: 60.0,
                    wind_speed: 3.0,
                    solar_radiation: 50.0 * (i % 4) as f64,
                    occupant_count: f64::from(i % 2 == 0),
                    hour_of_day: (6 + i % 12) as f64,
                },
            )
        })
        .collect()
}

/// Times `decisions` plans, returning per-decision latency stats in
/// milliseconds plus the chosen actions (for the identity check).
fn time_plans(
    model: &DynamicsModel,
    batched: bool,
    decisions: usize,
) -> (OnlineStats, Vec<SetpointAction>) {
    let config = RandomShootingConfig {
        samples: SAMPLES,
        planning: PlanningConfig {
            horizon: HORIZON,
            ..PlanningConfig::paper()
        },
        threads: 1,
        batched,
    };
    let mut controller =
        RandomShootingController::new(model.clone(), config, 42).expect("controller");
    let mut stats = OnlineStats::new();
    let mut actions = Vec::with_capacity(decisions);
    for obs in observations(decisions) {
        let started = Instant::now();
        actions.push(controller.plan(&obs));
        stats.push(started.elapsed().as_secs_f64() * 1e3);
    }
    (stats, actions)
}

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let (episodes, steps, epochs, decisions) = match options.scale {
        Scale::Reduced => (2, 96 * 3, 30, 15),
        Scale::Paper => (3, 96 * 7, 150, 50),
    };

    let dataset =
        collect_historical_dataset(&city.env_config().with_episode_steps(steps), episodes, 0)
            .expect("historical data");
    let model_config = ModelConfig {
        hidden: vec![64, 64],
        train: TrainConfig {
            epochs,
            ..TrainConfig::paper()
        },
        ..ModelConfig::default()
    };
    let model = DynamicsModel::train(&dataset, &model_config).expect("model training");

    let (scalar, scalar_actions) = time_plans(&model, false, decisions);
    let (batched, batched_actions) = time_plans(&model, true, decisions);
    assert_eq!(
        scalar_actions, batched_actions,
        "batched planning must pick bit-identical actions"
    );
    let speedup = scalar.mean() / batched.mean();

    let mut table = Table::new(
        "Planner latency: scalar vs lockstep-batched candidate evaluation",
        &["path", "model_calls/plan", "average_ms", "std_ms", "max_ms"],
    );
    table.push_row(vec![
        "scalar".to_string(),
        format!("{}", SAMPLES * HORIZON),
        fmt(scalar.mean(), 3),
        fmt(scalar.sample_std(), 3),
        fmt(scalar.max(), 3),
    ]);
    table.push_row(vec![
        "batched".to_string(),
        format!("{HORIZON} (batch {SAMPLES})"),
        fmt(batched.mean(), 3),
        fmt(batched.sample_std(), 3),
        fmt(batched.max(), 3),
    ]);
    table.emit("planner_latency", &options);
    println!("\nspeedup (scalar / batched): {speedup:.2}x over {decisions} decisions at N={SAMPLES}, H={HORIZON}");

    // Exercise the exported forecast-aware rollout on the last decision:
    // repeating the chosen setpoint over the horizon shows the predicted
    // temperature envelope the planner committed to.
    let last_obs = observations(decisions).pop().expect("nonempty");
    let hold = vec![*batched_actions.last().expect("nonempty"); HORIZON];
    let planning = PlanningConfig {
        horizon: HORIZON,
        ..PlanningConfig::paper()
    };
    let trajectory = forecast_rollout(&model, &last_obs, &hold, &planning.forecast);
    let lo = trajectory.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = trajectory.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "holding {} from {:.1} °C keeps the model's forecast in [{lo:.1}, {hi:.1}] °C",
        hold[0], last_obs.zone_temperature
    );

    let mut json = ObjectWriter::new();
    json.str_field("bench", "planner_latency");
    json.str_field("scale", options.scale.label());
    json.u64_field("samples", SAMPLES as u64);
    json.u64_field("horizon", HORIZON as u64);
    json.u64_field("decisions", decisions as u64);
    json.f64_field("scalar_mean_ms", scalar.mean());
    json.f64_field("scalar_max_ms", scalar.max());
    json.f64_field("batched_mean_ms", batched.mean());
    json.f64_field("batched_max_ms", batched.max());
    json.f64_field("speedup", speedup);
    let body = json.finish();
    let path = "BENCH_planner_latency.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");
}
