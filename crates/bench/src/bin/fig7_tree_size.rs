//! Figure 7 — decision-tree size versus the number of decision data
//! points.
//!
//! Companion sweep to Fig. 6: the same growing prefixes of the decision
//! dataset, but reporting tree size (nodes/leaves/depth) instead of
//! control performance. The paper's observation: tree size keeps
//! growing (or converges much later) even after control performance has
//! converged — size and performance are not tightly linked.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig7_tree_size [--paper] [--csv]
//! ```

use hvac_bench::{parse_options, pipeline_config, City, Scale, Table};
use hvac_telemetry::info;
use veri_hvac::control::RandomShootingController;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::extract::{
    fit_decision_tree, generate_decision_dataset, ExtractionConfig, NoiseAugmenter,
};

fn main() {
    let options = parse_options();
    let sizes: &[usize] = match options.scale {
        Scale::Reduced => &[10, 25, 50, 100, 200],
        Scale::Paper => &[10, 25, 50, 100, 200, 400, 800],
    };
    let max_points = *sizes.last().expect("nonempty sizes");

    let mut table = Table::new(
        "Fig. 7: decision-tree size vs. number of decision data points",
        &["city", "n_points", "total_nodes", "leaf_nodes", "depth"],
    );

    for city in City::BOTH {
        let config = pipeline_config(city, options.scale);
        info!("[harness] {}: building teacher…", city.name());
        let historical =
            collect_historical_dataset(&config.env, config.historical_episodes, config.seed)
                .expect("collect");
        let model = DynamicsModel::train(&historical, &config.model).expect("train");
        let augmenter =
            NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level).expect("augment");
        let mut teacher = RandomShootingController::new(model, config.rs, config.seed).expect("rs");
        let extraction = ExtractionConfig {
            n_points: max_points,
            ..config.extraction
        };
        let decision_data =
            generate_decision_dataset(&mut teacher, &augmenter, &extraction).expect("distill");

        for &n in sizes {
            let subset = decision_data.truncated(n);
            let policy = fit_decision_tree(&subset, &config.tree).expect("fit");
            let tree = policy.tree();
            table.push_row(vec![
                city.name().into(),
                n.to_string(),
                tree.node_count().to_string(),
                tree.leaf_count().to_string(),
                tree.depth().to_string(),
            ]);
        }
    }

    table.emit("fig7_tree_size", &options);
    println!("\npaper's observation: tree size converges later than control performance (compare Fig. 6),");
    println!("so there is no definitive relationship between DT size and control quality.");
}
