//! Fleet-serving throughput: the multi-tenant controller vs the
//! single-global-mutex baseline.
//!
//! Three serving variants answer the same 16-tenant workload:
//!
//! * **baseline** — the pre-fleet path: one `serve_with_options`
//!   endpoint, every request through one global `Mutex<GuardedPolicy>`,
//!   one TCP connection per request (the old server always closed the
//!   connection after answering);
//! * **fleet/decide** — `serve_fleet` with 16 tenants behind sharded
//!   per-tenant locks, each load generator holding a keep-alive
//!   connection to `POST /decide/{tenant}`;
//! * **fleet/tick** — the lockstep path: one `POST /tick` round trip
//!   carries all 16 tenants' observations, coalesced into batched tree
//!   evaluations.
//!
//! Each variant is driven closed-loop to saturation (measured
//! decisions/s) and open-loop at increasing offered load (p50/p99 with
//! latency measured from the *intended* send time, so coordinated
//! omission cannot hide queueing). Every served decision is replayed
//! against the in-process policy and must be bit-identical, and an
//! audited run shuts down under load and must leave every tenant's
//! chain sealed green.
//!
//! Results land in `BENCH_serve_throughput.json`. The acceptance
//! target is ≥4× decisions/s for the fleet at 16 concurrent tenants.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin serve_throughput [--paper] [--quiet]
//! # CI smoke against a running fleet:
//! cargo run --release -p hvac-bench --bin serve_throughput -- \
//!     --external 127.0.0.1:9464 --tenants alpha,beta [--policy FILE] [--rate 500]
//! ```

use hvac_bench::{fmt, Table};
use hvac_telemetry::http::{blocking_request, BlockingClient};
use hvac_telemetry::json::{parse, JsonValue, ObjectWriter};
use hvac_telemetry::{warn, Level, StderrSink};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use veri_hvac::audit::Auditor;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, Disturbances, Observation, SetpointAction, POLICY_INPUT_DIM};
use veri_hvac::fleet::{serve_fleet, Fleet, FleetOptions};
use veri_hvac::{serve_with_options, ServeOptions};

/// Concurrent tenants (and load-generator clients) — the acceptance
/// criterion's fleet size.
const TENANTS: usize = 16;

/// The serve tests' toy tree: cold zones heat hard, warm zones idle.
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// Deterministic per-tenant observation schedule, replayable in
/// process for the bit-identity check.
fn temp_for(tenant: usize, step: usize) -> f64 {
    14.0 + ((step * 7 + tenant * 3) % 120) as f64 / 10.0
}

fn obs_for(tenant: usize, step: usize) -> Observation {
    Observation::new(temp_for(tenant, step), Disturbances::default())
}

/// The q-quantile of an ascending sample vector (empty → NaN).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Extracts `(heating, cooling)` from a decide response body.
fn setpoints(body: &str) -> Option<(u64, u64)> {
    let v = parse(body).ok()?;
    Some((
        v.get("heating_setpoint").and_then(JsonValue::as_u64)?,
        v.get("cooling_setpoint").and_then(JsonValue::as_u64)?,
    ))
}

/// One closed-loop measurement: decisions/s plus sorted latencies (µs)
/// and any bit-identity mismatches against the in-process policy.
struct Measured {
    decisions_per_s: f64,
    latencies_us: Vec<f64>,
    mismatches: u64,
}

/// Saturates a serving endpoint with `TENANTS` closed-loop clients,
/// `steps` requests each. `keep_alive` selects the fleet wire (one
/// persistent connection per client, path-addressed tenants) vs the
/// baseline wire (one connection per request to the global `/decide`).
fn closed_loop(addr: SocketAddr, steps: usize, keep_alive: bool, reference: &DtPolicy) -> Measured {
    let started = Instant::now();
    let handles: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            std::thread::spawn(move || {
                // Bodies are rendered before the clock starts and
                // responses verified after it stops, so client-side
                // work doesn't shadow the server under measurement.
                let bodies: Vec<String> = (0..steps)
                    .map(|step| format!(r#"{{"zone_temperature":{}}}"#, temp_for(tenant, step)))
                    .collect();
                let path = format!("/decide/tenant-{tenant:02}");
                let mut client = keep_alive.then(|| BlockingClient::connect(addr).unwrap());
                let mut latencies = Vec::with_capacity(steps);
                let mut responses = Vec::with_capacity(steps);
                for body in &bodies {
                    let sent = Instant::now();
                    let (status, text) = match &mut client {
                        Some(c) => {
                            let (status, _, text) = c.request("POST", &path, &[], body).unwrap();
                            (status, text)
                        }
                        None => blocking_request(addr, "POST", "/decide", body).unwrap(),
                    };
                    latencies.push(sent.elapsed().as_secs_f64() * 1e6);
                    assert_eq!(status, 200, "{text}");
                    responses.push(text);
                }
                (latencies, responses)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut per_tenant = Vec::new();
    for h in handles {
        let (l, responses) = h.join().unwrap();
        latencies.extend(l);
        per_tenant.push(responses);
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Off-the-clock replay: every served decision must be
    // bit-identical to the in-process policy on the same observation.
    let mut mismatches = 0u64;
    for (tenant, responses) in per_tenant.iter().enumerate() {
        for (step, text) in responses.iter().enumerate() {
            let expected = reference.decide_shared(&obs_for(tenant, step));
            match setpoints(text) {
                Some((h, c))
                    if h as i32 == expected.heating() && c as i32 == expected.cooling() => {}
                _ => mismatches += 1,
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    Measured {
        decisions_per_s: (TENANTS * steps) as f64 / elapsed,
        latencies_us: latencies,
        mismatches,
    }
}

/// Renders one lockstep `/tick` body covering every tenant at `step`.
fn tick_body(tenants: &[String], step: usize) -> String {
    let mut body = String::from("{\"requests\":[");
    for (i, tenant) in tenants.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            r#"{{"tenant":"{tenant}","observation":{{"zone_temperature":{}}}}}"#,
            temp_for(i, step)
        ));
    }
    body.push_str("]}");
    body
}

/// Saturates the lockstep path: one closed-loop driver, each round
/// trip deciding for all `TENANTS` tenants at once.
fn closed_loop_tick(addr: SocketAddr, rounds: usize, reference: &DtPolicy) -> Measured {
    let tenants: Vec<String> = (0..TENANTS).map(|t| format!("tenant-{t:02}")).collect();
    let bodies: Vec<String> = (0..rounds).map(|step| tick_body(&tenants, step)).collect();
    let mut client = BlockingClient::connect(addr).unwrap();
    let mut latencies = Vec::with_capacity(rounds);
    let mut responses = Vec::with_capacity(rounds);
    let started = Instant::now();
    for body in &bodies {
        let sent = Instant::now();
        let (status, _, text) = client.request("POST", "/tick", &[], body).unwrap();
        latencies.push(sent.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200, "{text}");
        responses.push(text);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let mut mismatches = 0u64;
    for (step, text) in responses.iter().enumerate() {
        let v = parse(text).unwrap();
        let decisions = v.get("decisions").and_then(JsonValue::as_array).unwrap();
        for (tenant, d) in decisions.iter().enumerate() {
            let expected = reference.decide_shared(&obs_for(tenant, step));
            let h = d.get("heating_setpoint").and_then(JsonValue::as_u64);
            let c = d.get("cooling_setpoint").and_then(JsonValue::as_u64);
            if h != Some(expected.heating() as u64) || c != Some(expected.cooling() as u64) {
                mismatches += 1;
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    Measured {
        decisions_per_s: (TENANTS * rounds) as f64 / elapsed,
        latencies_us: latencies,
        mismatches,
    }
}

/// One open-loop rung: offered vs achieved decisions/s and quantiles
/// with latency measured from the intended send time.
struct OpenLoopPoint {
    offered_rps: f64,
    achieved_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Offers `rate_rps` total decisions/s split across the tenant
/// clients for `duration`. Clients never skip a scheduled send: a
/// stalled server makes later sends late, and their latency is charged
/// from the schedule, not from the delayed write.
fn open_loop(
    addr: SocketAddr,
    tenants: Vec<String>,
    rate_rps: f64,
    duration: Duration,
    keep_alive: bool,
) -> OpenLoopPoint {
    let interval = tenants.len() as f64 / rate_rps;
    let wall = duration.as_secs_f64();
    let handles: Vec<_> = tenants
        .into_iter()
        .map(|tenant| {
            std::thread::spawn(move || {
                let path = format!("/decide/{tenant}");
                let mut client = keep_alive.then(|| BlockingClient::connect(addr).unwrap());
                let mut latencies = Vec::new();
                let started = Instant::now();
                let mut step = 0usize;
                loop {
                    let intended = interval * step as f64;
                    if intended > wall {
                        break;
                    }
                    let now = started.elapsed().as_secs_f64();
                    if now < intended {
                        std::thread::sleep(Duration::from_secs_f64(intended - now));
                    }
                    let body = format!(r#"{{"zone_temperature":{}}}"#, temp_for(0, step));
                    let status = match &mut client {
                        Some(c) => c.request("POST", &path, &[], &body).unwrap().0,
                        None => blocking_request(addr, "POST", "/decide", &body).unwrap().0,
                    };
                    assert_eq!(status, 200);
                    latencies.push((started.elapsed().as_secs_f64() - intended) * 1e6);
                    step += 1;
                }
                (latencies, started.elapsed().as_secs_f64())
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut total = 0usize;
    let mut longest = 0f64;
    for h in handles {
        let (l, elapsed) = h.join().unwrap();
        total += l.len();
        latencies.extend(l);
        longest = longest.max(elapsed);
    }
    latencies.sort_by(f64::total_cmp);
    OpenLoopPoint {
        offered_rps: rate_rps,
        achieved_rps: total as f64 / longest,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

/// Builds a 16-tenant fleet over one shared toy policy.
fn build_fleet(options: FleetOptions) -> Fleet {
    let fleet = Fleet::new(options);
    for t in 0..TENANTS {
        fleet
            .add_tenant(&format!("tenant-{t:02}"), toy_policy(), None)
            .unwrap();
    }
    fleet
}

/// Loaded shutdown: hammers an audited fleet from every tenant, shuts
/// the server down mid-traffic, and audits every sealed chain. Returns
/// the number of green chains (want `TENANTS`).
fn audited_loaded_shutdown() -> usize {
    let dir = std::env::temp_dir().join(format!("hvac-bench-fleet-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fleet = build_fleet(FleetOptions {
        audit_dir: Some(dir.clone()),
        ..FleetOptions::default()
    });
    let server = serve_fleet(fleet, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let path = format!("/decide/tenant-{tenant:02}");
                let Ok(mut client) = BlockingClient::connect(addr) else {
                    return;
                };
                let mut step = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let body = format!(r#"{{"zone_temperature":{}}}"#, temp_for(tenant, step));
                    if client.request("POST", &path, &[], &body).is_err() {
                        break;
                    }
                    step += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let reference = toy_policy();
    let mut green = 0;
    for t in 0..TENANTS {
        let path = dir.join(format!("tenant-{t:02}.jsonl"));
        let text = std::fs::read_to_string(&path).expect("chain file");
        let report = Auditor::new(&text).with_policy(&reference).run();
        if report.passed() && report.sealed {
            green += 1;
        } else {
            warn!("tenant-{t:02} chain failed the audit: {report}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    green
}

/// Flags this harness understands (`hvac_bench::parse_options` would
/// warn on the external-mode flags, so parsing is local).
struct Options {
    paper: bool,
    csv: bool,
    external: Option<String>,
    tenants: Vec<String>,
    policy: Option<String>,
    rate: f64,
}

fn parse_args() -> Options {
    let mut options = Options {
        paper: false,
        csv: false,
        external: None,
        tenants: Vec::new(),
        policy: None,
        rate: 500.0,
    };
    let mut level = Level::Info;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => options.paper = true,
            "--csv" => options.csv = true,
            "--verbose" => level = Level::Debug,
            "--quiet" => level = Level::Warn,
            "--external" => options.external = args.next(),
            "--policy" => options.policy = args.next(),
            "--rate" => {
                options.rate = args
                    .next()
                    .and_then(|r| r.parse().ok())
                    .expect("--rate RPS");
            }
            "--tenants" => {
                options.tenants = args
                    .next()
                    .map(|t| t.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    hvac_telemetry::set_sink(Arc::new(StderrSink::new(level)));
    options
}

/// CI smoke: open-loop load against an already-running fleet binary.
fn run_external(options: &Options) {
    let addr: SocketAddr = options
        .external
        .as_deref()
        .unwrap()
        .parse()
        .expect("--external HOST:PORT");
    assert!(
        options.tenants.len() >= 2,
        "--external needs --tenants a,b[,…] (≥2 for a fleet smoke)"
    );
    let point = open_loop(
        addr,
        options.tenants.clone(),
        options.rate,
        Duration::from_secs(2),
        true,
    );
    // Bit-identity when the served policy file is at hand: replay a
    // few observations in process and compare.
    let mut identical = None;
    if let Some(path) = &options.policy {
        let text = std::fs::read_to_string(path).expect("read --policy");
        let reference = DtPolicy::from_compact_string(&text).expect("parse --policy");
        let mut mismatches = 0u64;
        let mut client = BlockingClient::connect(addr).unwrap();
        for (i, tenant) in options.tenants.iter().enumerate() {
            for step in 0..32 {
                let body = format!(r#"{{"zone_temperature":{}}}"#, temp_for(i, step));
                let (status, _, text) = client
                    .request("POST", &format!("/decide/{tenant}"), &[], &body)
                    .unwrap();
                assert_eq!(status, 200, "{text}");
                let expected = reference.decide_shared(&obs_for(i, step));
                match setpoints(&text) {
                    Some((h, c))
                        if h as i32 == expected.heating() && c as i32 == expected.cooling() => {}
                    _ => mismatches += 1,
                }
            }
        }
        identical = Some(mismatches == 0);
        assert_eq!(mismatches, 0, "served decisions diverged from in-process");
    }
    println!(
        "external fleet @ {addr}: offered {:.0}/s achieved {:.0}/s p50 {:.0} µs p99 {:.0} µs",
        point.offered_rps, point.achieved_rps, point.p50_us, point.p99_us
    );
    let mut json = ObjectWriter::new();
    json.str_field("bench", "serve_throughput");
    json.str_field("mode", "external");
    json.u64_field("tenants", options.tenants.len() as u64);
    json.f64_field("offered_rps", point.offered_rps);
    json.f64_field("achieved_rps", point.achieved_rps);
    json.f64_field("p50_us", point.p50_us);
    json.f64_field("p99_us", point.p99_us);
    if let Some(ok) = identical {
        json.u64_field("bit_identical", u64::from(ok));
    }
    let body = json.finish();
    std::fs::write("BENCH_serve_throughput.json", format!("{body}\n")).expect("write bench json");
    println!("wrote BENCH_serve_throughput.json");
}

fn main() {
    let options = parse_args();
    if options.external.is_some() {
        run_external(&options);
        return;
    }

    let (steps, tick_rounds, ladder, open_secs): (usize, usize, &[f64], f64) = if options.paper {
        (2000, 2000, &[2000.0, 4000.0, 8000.0, 16000.0], 3.0)
    } else {
        (300, 400, &[1000.0, 2000.0, 4000.0], 1.0)
    };
    let reference = toy_policy();
    let tenant_names: Vec<String> = (0..TENANTS).map(|t| format!("tenant-{t:02}")).collect();

    // Baseline: one policy, one global mutex, one connection per
    // request — the pre-fleet serve path's wire behavior.
    let baseline_server =
        serve_with_options(toy_policy(), ServeOptions::default(), "127.0.0.1:0").expect("bind");
    let baseline = closed_loop(baseline_server.addr(), steps, false, &reference);
    let baseline_open: Vec<OpenLoopPoint> = ladder
        .iter()
        .map(|&rate| {
            open_loop(
                baseline_server.addr(),
                tenant_names.clone(),
                rate,
                Duration::from_secs_f64(open_secs),
                false,
            )
        })
        .collect();
    baseline_server.shutdown();

    // Fleet: sharded per-tenant guards, keep-alive clients, and the
    // lockstep tick path.
    let fleet_server =
        serve_fleet(build_fleet(FleetOptions::default()), "127.0.0.1:0").expect("bind");
    let fleet = closed_loop(fleet_server.addr(), steps, true, &reference);
    let tick = closed_loop_tick(fleet_server.addr(), tick_rounds, &reference);
    let fleet_open: Vec<OpenLoopPoint> = ladder
        .iter()
        .map(|&rate| {
            open_loop(
                fleet_server.addr(),
                tenant_names.clone(),
                rate,
                Duration::from_secs_f64(open_secs),
                true,
            )
        })
        .collect();
    fleet_server.shutdown();

    let green = audited_loaded_shutdown();

    let speedup_decide = fleet.decisions_per_s / baseline.decisions_per_s;
    let speedup_tick = tick.decisions_per_s / baseline.decisions_per_s;
    let mut table = Table::new(
        &format!("Serving throughput at {TENANTS} concurrent tenants (closed loop, loopback)"),
        &[
            "variant",
            "decisions_per_s",
            "p50_us",
            "p99_us",
            "vs_baseline",
        ],
    );
    for (label, m, speedup) in [
        ("baseline (global mutex, conn/request)", &baseline, 1.0),
        (
            "fleet /decide (sharded, keep-alive)",
            &fleet,
            speedup_decide,
        ),
        ("fleet /tick (lockstep batch)", &tick, speedup_tick),
    ] {
        table.push_row(vec![
            label.to_string(),
            fmt(m.decisions_per_s, 0),
            fmt(percentile(&m.latencies_us, 0.50), 1),
            fmt(percentile(&m.latencies_us, 0.99), 1),
            format!("{speedup:.1}x"),
        ]);
    }
    table.print();
    if options.csv {
        // Matches the other harnesses' --csv behavior.
        let mut csv = String::from("variant,decisions_per_s,p50_us,p99_us\n");
        for (label, m) in [
            ("baseline", &baseline),
            ("fleet_decide", &fleet),
            ("fleet_tick", &tick),
        ] {
            csv.push_str(&format!(
                "{label},{:.0},{:.1},{:.1}\n",
                m.decisions_per_s,
                percentile(&m.latencies_us, 0.50),
                percentile(&m.latencies_us, 0.99)
            ));
        }
        std::fs::write("BENCH_serve_throughput.csv", csv).expect("write csv");
    }

    println!("\nOpen loop (latency from intended send time):");
    let mut open_table = Table::new(
        "offered vs achieved decisions/s",
        &["variant", "offered_rps", "achieved_rps", "p50_us", "p99_us"],
    );
    for (label, points) in [("baseline", &baseline_open), ("fleet", &fleet_open)] {
        for p in points.iter() {
            open_table.push_row(vec![
                label.to_string(),
                fmt(p.offered_rps, 0),
                fmt(p.achieved_rps, 0),
                fmt(p.p50_us, 1),
                fmt(p.p99_us, 1),
            ]);
        }
    }
    open_table.print();

    let identical = baseline.mismatches == 0 && fleet.mismatches == 0 && tick.mismatches == 0;
    println!(
        "\nbit-identity: {} (baseline {} / fleet {} / tick {} mismatches)",
        if identical { "PASS" } else { "FAIL" },
        baseline.mismatches,
        fleet.mismatches,
        tick.mismatches
    );
    println!("audited loaded shutdown: {green}/{TENANTS} chains sealed green");
    println!(
        "fleet speedup at {TENANTS} tenants: {speedup_decide:.1}x per-request, \
         {speedup_tick:.1}x lockstep (target ≥4x)"
    );

    let mut json = ObjectWriter::new();
    json.str_field("bench", "serve_throughput");
    json.str_field("scale", if options.paper { "paper" } else { "reduced" });
    json.u64_field("tenants", TENANTS as u64);
    json.u64_field("steps_per_client", steps as u64);
    json.f64_field("baseline_rps", baseline.decisions_per_s);
    json.f64_field("baseline_p50_us", percentile(&baseline.latencies_us, 0.50));
    json.f64_field("baseline_p99_us", percentile(&baseline.latencies_us, 0.99));
    json.f64_field("fleet_rps", fleet.decisions_per_s);
    json.f64_field("fleet_p50_us", percentile(&fleet.latencies_us, 0.50));
    json.f64_field("fleet_p99_us", percentile(&fleet.latencies_us, 0.99));
    json.f64_field("tick_rps", tick.decisions_per_s);
    json.f64_field("tick_p50_us", percentile(&tick.latencies_us, 0.50));
    json.f64_field("tick_p99_us", percentile(&tick.latencies_us, 0.99));
    json.f64_field("speedup_decide", speedup_decide);
    json.f64_field("speedup_tick", speedup_tick);
    json.u64_field("bit_identical", u64::from(identical));
    json.u64_field("audited_chains_green", green as u64);
    json.u64_field("audited_chains_total", TENANTS as u64);
    for (label, points) in [("baseline", &baseline_open), ("fleet", &fleet_open)] {
        for p in points.iter() {
            let key = format!("{label}_open_{:.0}", p.offered_rps);
            json.f64_field(&format!("{key}_achieved_rps"), p.achieved_rps);
            json.f64_field(&format!("{key}_p99_us"), p.p99_us);
        }
    }
    let body = json.finish();
    std::fs::write("BENCH_serve_throughput.json", format!("{body}\n")).expect("write bench json");
    println!("wrote BENCH_serve_throughput.json");

    assert!(identical, "served decisions diverged from in-process");
    assert_eq!(
        green, TENANTS,
        "an audited chain failed after loaded shutdown"
    );
    assert!(
        speedup_decide.max(speedup_tick) >= 4.0,
        "fleet speedup {speedup_decide:.1}x / {speedup_tick:.1}x misses the 4x target"
    );
}
