//! Figure 6 — data efficiency: control performance versus the number of
//! decision data points.
//!
//! Generates one large decision dataset, then fits trees on growing
//! prefixes, deploys each, and reports the paper's performance index
//! (comfort rate ÷ zone energy × 1000). The paper finds convergence
//! within ~100 points for both cities.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig6_data_efficiency [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, pipeline_config, City, Scale, Table};
use hvac_telemetry::info;
use veri_hvac::control::RandomShootingController;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::env::{run_episode, HvacEnv};
use veri_hvac::extract::{
    fit_decision_tree, generate_decision_dataset, ExtractionConfig, NoiseAugmenter,
};
use veri_hvac::verify::{verify_and_correct, VerificationConfig};

fn main() {
    let options = parse_options();
    let sizes: &[usize] = match options.scale {
        Scale::Reduced => &[10, 25, 50, 100, 200],
        Scale::Paper => &[10, 25, 50, 100, 200, 400, 800],
    };
    let max_points = *sizes.last().expect("nonempty sizes");
    let eval_steps = options.scale.episode_steps();

    let mut table = Table::new(
        "Fig. 6: performance index vs. number of decision data points",
        &[
            "city",
            "n_points",
            "performance_index",
            "violation_%",
            "zone_kwh",
        ],
    );

    for city in City::BOTH {
        let config = pipeline_config(city, options.scale);
        info!(
            "[harness] {}: collecting data + training model…",
            city.name()
        );
        let historical =
            collect_historical_dataset(&config.env, config.historical_episodes, config.seed)
                .expect("collect");
        let model = DynamicsModel::train(&historical, &config.model).expect("train");
        let augmenter =
            NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level).expect("augment");
        let mut teacher =
            RandomShootingController::new(model.clone(), config.rs, config.seed).expect("rs");

        info!(
            "[harness] {}: generating {max_points} decision points…",
            city.name()
        );
        let extraction = ExtractionConfig {
            n_points: max_points,
            ..config.extraction
        };
        let decision_data =
            generate_decision_dataset(&mut teacher, &augmenter, &extraction).expect("distill");

        for &n in sizes {
            let subset = decision_data.truncated(n);
            let mut policy = fit_decision_tree(&subset, &config.tree).expect("fit");
            let _ = verify_and_correct(
                &mut policy,
                &model,
                &augmenter,
                &VerificationConfig {
                    samples: 200,
                    ..config.verification
                },
            )
            .expect("verify");
            let mut env =
                HvacEnv::new(city.env_config().with_episode_steps(eval_steps)).expect("env");
            let metrics = run_episode(&mut env, &mut policy).expect("episode").metrics;
            table.push_row(vec![
                city.name().into(),
                n.to_string(),
                fmt(metrics.performance_index(), 2),
                fmt(100.0 * metrics.violation_rate(), 1),
                fmt(metrics.zone_electric_kwh, 1),
            ]);
        }
    }

    table.emit("fig6_data_efficiency", &options);
    println!("\npaper's finding: performance converges within ~100 decision data points for both cities.");
    println!(
        "with decision data generated at ~{}ms per point, 100 points ≈ minutes of offline work",
        200
    );
}
