//! Figure 1 — the motivation experiment: decision stochasticity of the
//! MBRL (random-shooting) controller.
//!
//! Runs the RS controller 10 times over one fixed day of disturbances
//! (identical weather every run; only the optimizer's randomness
//! differs) and reports (a) the mean ± std heating setpoint per hour
//! from 08:00 to 22:00 (the left panel) and (b) the empirical setpoint
//! distribution at a fixed decision step (the right panel).
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fig1_stochasticity [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, fmt, parse_options, City, Table};
use veri_hvac::control::{RandomShootingConfig, RandomShootingController};
use veri_hvac::env::{run_episode, HvacEnv};
use veri_hvac::sim::{SimClock, WeatherGenerator, STEPS_PER_DAY};
use veri_hvac::stats::OnlineStats;

const RUNS: usize = 10;

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let artifacts = build_artifacts(city, options.scale);

    // One fixed day of disturbances shared by every run.
    let mut generator = WeatherGenerator::new(city.env_config().climate.clone(), 424_242);
    let day = generator.trace(&SimClock::january(), STEPS_PER_DAY + 1);

    let rs_config = RandomShootingConfig {
        samples: options.scale.rs_samples(),
        ..RandomShootingConfig::paper()
    };

    let mut traces: Vec<Vec<i32>> = Vec::with_capacity(RUNS);
    for seed in 0..RUNS as u64 {
        let mut controller =
            RandomShootingController::new(artifacts.model.clone(), rs_config, seed)
                .expect("valid RS config");
        let mut env = HvacEnv::with_weather_trace(
            city.env_config().with_episode_steps(STEPS_PER_DAY),
            day.clone(),
        )
        .expect("trace env");
        let record = run_episode(&mut env, &mut controller).expect("episode");
        traces.push(record.heating_setpoints());
    }

    // Left panel: hourly mean ± std across the 10 runs, 08:00–22:00.
    let mut left = Table::new(
        "Fig. 1 (left): heating setpoint across 10 runs, fixed disturbances",
        &["hour", "mean_setpoint_C", "std_C", "min", "max"],
    );
    for hour in 8..22 {
        let mut stats = OnlineStats::new();
        for trace in &traces {
            for &sp in &trace[hour * 4..(hour + 1) * 4] {
                stats.push(f64::from(sp));
            }
        }
        left.push_row(vec![
            format!("{hour:02}:00"),
            fmt(stats.mean(), 2),
            fmt(stats.sample_std(), 2),
            fmt(stats.min(), 0),
            fmt(stats.max(), 0),
        ]);
    }
    left.emit("fig1_left_setpoint_trace", &options);

    // Right panel: distribution of the setpoint at one fixed step
    // (12:00, i.e. step 48).
    let step = 48;
    let mut counts = std::collections::BTreeMap::new();
    for trace in &traces {
        *counts.entry(trace[step]).or_insert(0usize) += 1;
    }
    let mut right = Table::new(
        "Fig. 1 (right): setpoint distribution at 12:00 over 10 runs",
        &["setpoint_C", "probability"],
    );
    for (sp, count) in &counts {
        right.push_row(vec![sp.to_string(), fmt(*count as f64 / RUNS as f64, 2)]);
    }
    right.emit("fig1_right_setpoint_distribution", &options);

    // The headline check: the runs differ (the paper's stochasticity
    // claim) — report how many distinct traces were observed.
    let distinct: std::collections::HashSet<&Vec<i32>> = traces.iter().collect();
    println!(
        "\ndistinct setpoint traces across {RUNS} runs: {} (paper claim: > 1, i.e. stochastic)",
        distinct.len()
    );
    let hourly_std: f64 = {
        let mut s = OnlineStats::new();
        for hour in 8..22 {
            let mut h = OnlineStats::new();
            for trace in &traces {
                for &sp in &trace[hour * 4..(hour + 1) * 4] {
                    h.push(f64::from(sp));
                }
            }
            s.push(h.sample_std());
        }
        s.mean()
    };
    println!("mean hourly std of the heating setpoint: {hourly_std:.2} °C (paper shows a visibly wide band)");
}
