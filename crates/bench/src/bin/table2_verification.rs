//! Table 2 — verification results for the two cities.
//!
//! For each city: extract a decision-tree policy, run the offline
//! verification (Algorithm 1 + probabilistic criterion #1), and print
//! the same five rows the paper tabulates.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin table2_verification [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, fmt, parse_options, City, Table};

fn main() {
    let options = parse_options();

    let mut table = Table::new(
        "Table 2: verification results",
        &["metric", "Pittsburgh", "Tucson"],
    );

    let reports: Vec<_> = City::BOTH
        .iter()
        .map(|&city| build_artifacts(city, options.scale).report)
        .collect();

    table.push_row(vec![
        "Total No. of nodes".into(),
        reports[0].total_nodes.to_string(),
        reports[1].total_nodes.to_string(),
    ]);
    table.push_row(vec![
        "No. of leaf nodes (unique path)".into(),
        reports[0].leaf_nodes.to_string(),
        reports[1].leaf_nodes.to_string(),
    ]);
    table.push_row(vec![
        "Safe probability estimated by crit. #1".into(),
        format!("{}%", fmt(100.0 * reports[0].criterion_1.probability(), 1)),
        format!("{}%", fmt(100.0 * reports[1].criterion_1.probability(), 1)),
    ]);
    table.push_row(vec![
        "Wilson 95% lower bound on crit. #1".into(),
        format!(
            "{}%",
            fmt(100.0 * reports[0].criterion_1.wilson_interval(1.96).0, 1)
        ),
        format!(
            "{}%",
            fmt(100.0 * reports[1].criterion_1.wilson_interval(1.96).0, 1)
        ),
    ]);
    table.push_row(vec![
        "No. of nodes corrected by crit. #2".into(),
        reports[0].corrected_criterion_2.to_string(),
        reports[1].corrected_criterion_2.to_string(),
    ]);
    table.push_row(vec![
        "No. of nodes corrected by crit. #3".into(),
        reports[0].corrected_criterion_3.to_string(),
        reports[1].corrected_criterion_3.to_string(),
    ]);

    table.emit("table2_verification", &options);

    println!("\npaper (for reference): nodes 1199/3291, leaves 599/1646, safe 94.6%/95.1%, corrected #2 0/0, corrected #3 0/88");
    println!("expected shape: high (>90%) crit.#1 safe probability in both cities;");
    println!("few or zero corrections, with the warmer/sunnier city more likely to need them.");
}
