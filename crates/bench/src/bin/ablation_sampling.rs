//! Ablation — importance sampling (Eq. 5) versus uniform input
//! sampling for decision-dataset generation.
//!
//! Section 3.2.1 motivates importance sampling: uniformly covering the
//! 6-dimensional input space wastes the Monte-Carlo budget on scenarios
//! the city never experiences. This ablation holds the extraction
//! budget fixed and compares the deployed control performance of a tree
//! distilled from (a) the augmented historical distribution and (b) a
//! uniform distribution over plausible input ranges.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin ablation_sampling [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, pipeline_config, City, Table};
use hvac_telemetry::info;
use rand::Rng;
use veri_hvac::control::RandomShootingController;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::env::space::feature;
use veri_hvac::env::{run_episode, ActionSpace, HvacEnv, Observation, POLICY_INPUT_DIM};
use veri_hvac::extract::{
    fit_decision_tree, generate_decision_dataset, DecisionDataset, NoiseAugmenter,
};
use veri_hvac::stats::seeded_rng;
use veri_hvac::verify::{verify_and_correct, VerificationConfig};

/// Generates a decision dataset from *uniform* inputs over generous
/// physical ranges (the strategy the paper rejects as hopeless at equal
/// budget).
fn uniform_decision_dataset(
    teacher: &mut RandomShootingController<DynamicsModel>,
    n_points: usize,
    mc_runs: usize,
    seed: u64,
) -> DecisionDataset {
    let mut rng = seeded_rng(seed);
    let space = ActionSpace::new();
    let mut dataset = DecisionDataset::new();
    for _ in 0..n_points {
        let mut x = [0.0; POLICY_INPUT_DIM];
        x[feature::ZONE_TEMPERATURE] = rng.gen_range(5.0..40.0);
        x[feature::OUTDOOR_TEMPERATURE] = rng.gen_range(-20.0..45.0);
        x[feature::RELATIVE_HUMIDITY] = rng.gen_range(5.0..100.0);
        x[feature::WIND_SPEED] = rng.gen_range(0.0..15.0);
        x[feature::SOLAR_RADIATION] = rng.gen_range(0.0..1000.0);
        x[feature::OCCUPANT_COUNT] = rng.gen_range(0.0..12.0);
        let obs = Observation::from_vector(&x);
        let action = teacher.most_frequent_action(&obs, mc_runs);
        dataset.push(x, space.index_of(action));
    }
    dataset
}

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let config = pipeline_config(city, options.scale);
    let eval_steps = options.scale.episode_steps();

    info!("[harness] building teacher for {}…", city.name());
    let historical =
        collect_historical_dataset(&config.env, config.historical_episodes, config.seed)
            .expect("collect");
    let model = DynamicsModel::train(&historical, &config.model).expect("train");
    let augmenter =
        NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level).expect("augment");

    let mut table = Table::new(
        "Ablation: Eq.5 importance sampling vs uniform input sampling (equal budget)",
        &[
            "sampling",
            "performance_index",
            "violation_%",
            "zone_kwh",
            "tree_nodes",
        ],
    );

    for (name, importance) in [("importance (Eq.5)", true), ("uniform", false)] {
        let mut teacher =
            RandomShootingController::new(model.clone(), config.rs, config.seed).expect("rs");
        let dataset = if importance {
            generate_decision_dataset(&mut teacher, &augmenter, &config.extraction)
                .expect("distill")
        } else {
            uniform_decision_dataset(
                &mut teacher,
                config.extraction.n_points,
                config.extraction.mc_runs,
                config.extraction.seed,
            )
        };
        let mut policy = fit_decision_tree(&dataset, &config.tree).expect("fit");
        let _ = verify_and_correct(
            &mut policy,
            &model,
            &augmenter,
            &VerificationConfig {
                samples: 200,
                ..config.verification
            },
        )
        .expect("verify");
        let nodes = policy.tree().node_count();
        let mut env = HvacEnv::new(city.env_config().with_episode_steps(eval_steps)).expect("env");
        let metrics = run_episode(&mut env, &mut policy).expect("episode").metrics;
        table.push_row(vec![
            name.into(),
            fmt(metrics.performance_index(), 2),
            fmt(100.0 * metrics.violation_rate(), 1),
            fmt(metrics.zone_electric_kwh, 1),
            nodes.to_string(),
        ]);
    }

    table.emit("ablation_sampling", &options);
    println!("\nexpected shape: at equal Monte-Carlo budget, the importance-sampled dataset");
    println!("yields a policy at least as good as uniform sampling, because its labels are");
    println!("spent on inputs the deployment distribution actually visits (Section 3.2.1).");
}
