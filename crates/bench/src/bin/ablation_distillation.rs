//! Ablation — mode vs mean vs single-run distillation of the
//! Monte-Carlo action distribution.
//!
//! Section 3.2.1 defines the decision label as the *most frequent*
//! action over repeated optimizer runs. This ablation compares that
//! choice against averaging the sampled actions and against trusting a
//! single optimizer run, at equal extraction budget.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin ablation_distillation [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, pipeline_config, City, Table};
use hvac_telemetry::info;
use veri_hvac::control::RandomShootingController;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::env::{run_episode, HvacEnv};
use veri_hvac::extract::{
    fit_decision_tree, generate_decision_dataset, Distillation, ExtractionConfig, NoiseAugmenter,
};
use veri_hvac::verify::{verify_and_correct, VerificationConfig};

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let config = pipeline_config(city, options.scale);
    let eval_steps = options.scale.episode_steps();

    info!("[harness] building teacher for {}…", city.name());
    let historical =
        collect_historical_dataset(&config.env, config.historical_episodes, config.seed)
            .expect("collect");
    let model = DynamicsModel::train(&historical, &config.model).expect("train");
    let augmenter =
        NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level).expect("augment");

    let mut table = Table::new(
        "Ablation: distillation rule for the decision label",
        &[
            "distillation",
            "performance_index",
            "violation_%",
            "zone_kwh",
            "reward",
        ],
    );

    for (name, rule) in [
        ("mode (paper)", Distillation::Mode),
        ("mean", Distillation::Mean),
        ("single run", Distillation::Single),
    ] {
        let mut teacher =
            RandomShootingController::new(model.clone(), config.rs, config.seed).expect("rs");
        let extraction = ExtractionConfig {
            distillation: rule,
            ..config.extraction
        };
        let dataset =
            generate_decision_dataset(&mut teacher, &augmenter, &extraction).expect("distill");
        let mut policy = fit_decision_tree(&dataset, &config.tree).expect("fit");
        let _ = verify_and_correct(
            &mut policy,
            &model,
            &augmenter,
            &VerificationConfig {
                samples: 200,
                ..config.verification
            },
        )
        .expect("verify");
        let mut env = HvacEnv::new(city.env_config().with_episode_steps(eval_steps)).expect("env");
        let metrics = run_episode(&mut env, &mut policy).expect("episode").metrics;
        table.push_row(vec![
            name.into(),
            fmt(metrics.performance_index(), 2),
            fmt(100.0 * metrics.violation_rate(), 1),
            fmt(metrics.zone_electric_kwh, 1),
            fmt(metrics.total_reward, 1),
        ]);
    }

    table.emit("ablation_distillation", &options);
    println!("\nexpected shape: mode distillation filters the optimizer's noise (Section 3.2.1),");
    println!("single-run labels inherit the stochasticity that Fig. 1 demonstrates.");
}
