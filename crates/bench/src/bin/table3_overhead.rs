//! Table 3 — online computation overhead: per-decision latency of each
//! deployed controller.
//!
//! Times every setpoint selection over a deployment episode, exactly as
//! the paper does ("for every method, we record the computation time of
//! each setpoint selection"). Absolute numbers depend on hardware; the
//! claim being reproduced is the *ratio* — the decision tree is about
//! three orders of magnitude cheaper than the stochastic-optimizer
//! controllers.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin table3_overhead [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, build_ensemble, fmt, parse_options, City, Scale, Table};
use std::time::Instant;
use veri_hvac::control::{
    ClueConfig, ClueController, PlanningConfig, RandomShootingConfig, RandomShootingController,
    RuleBasedController,
};
use veri_hvac::env::{ComfortRange, HvacEnv, Policy};
use veri_hvac::stats::OnlineStats;

/// Times `policy` over one deployment episode, returning per-decision
/// latency stats in milliseconds.
fn time_policy<P: Policy>(city: City, steps: usize, policy: &mut P) -> OnlineStats {
    let mut env =
        HvacEnv::new(city.env_config().with_episode_steps(steps)).expect("env construction");
    let mut obs = env.reset();
    let mut stats = OnlineStats::new();
    loop {
        let started = Instant::now();
        let action = policy.decide(&obs);
        stats.push(started.elapsed().as_secs_f64() * 1e3);
        let out = env.step(action).expect("step");
        obs = out.observation;
        if out.done {
            break;
        }
    }
    stats
}

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    // Latency measurement doesn't need a month: limit the episode so the
    // expensive controllers finish promptly, but keep enough samples.
    let steps = match options.scale {
        Scale::Reduced => 2 * 96,
        Scale::Paper => 7 * 96,
    };

    let artifacts = build_artifacts(city, options.scale);
    let env_config = city.env_config();
    let rs_config = RandomShootingConfig {
        samples: options.scale.rs_samples(),
        planning: PlanningConfig::paper_with_schedule(
            env_config.schedule,
            env_config.controlled_zone,
        ),
        ..RandomShootingConfig::paper()
    };

    let mut results: Vec<(&str, OnlineStats)> = Vec::new();

    let mut default_ctl = RuleBasedController::new(ComfortRange::winter());
    results.push(("default", time_policy(city, steps, &mut default_ctl)));

    let mut mbrl =
        RandomShootingController::new(artifacts.model.clone(), rs_config, 1).expect("rs");
    results.push(("mbrl", time_policy(city, steps, &mut mbrl)));

    let ensemble = build_ensemble(&artifacts, options.scale);
    let mut clue = ClueController::new(
        ensemble,
        ClueConfig {
            planner: rs_config,
            ..ClueConfig::paper()
        },
        RuleBasedController::new(ComfortRange::winter()),
        2,
    )
    .expect("clue");
    results.push(("clue", time_policy(city, steps, &mut clue)));

    let mut dt = artifacts.policy.clone();
    results.push(("dt (ours)", time_policy(city, steps, &mut dt)));

    let mut table = Table::new(
        "Table 3: online computation overhead (per setpoint selection)",
        &["controller", "average_ms", "std_ms", "max_ms", "decisions"],
    );
    for (name, stats) in &results {
        table.push_row(vec![
            (*name).to_string(),
            fmt(stats.mean(), 4),
            fmt(stats.sample_std(), 4),
            fmt(stats.max(), 4),
            stats.count().to_string(),
        ]);
    }
    table.emit("table3_overhead", &options);

    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.mean())
            .expect("present")
    };
    let dt_ms = mean_of("dt (ours)");
    println!("\n-- speedups of the DT policy --");
    println!("vs mbrl: {:.0}x", mean_of("mbrl") / dt_ms);
    println!("vs clue: {:.0}x", mean_of("clue") / dt_ms);
    println!("\npaper (for reference, i9-11900KF + RTX 3080Ti): default 0.0 ms, mbrl 212.87 ms, clue 326.30 ms, dt 0.1888 ms → 1127–1728x");
    println!("expected shape: dt within a few hundred microseconds; stochastic planners hundreds-to-thousands of times slower.");
}
