//! Table 3 — online computation overhead: per-decision latency of each
//! deployed controller.
//!
//! Times every setpoint selection over a deployment episode, exactly as
//! the paper does ("for every method, we record the computation time of
//! each setpoint selection"). Absolute numbers depend on hardware; the
//! claim being reproduced is the *ratio* — the decision tree is about
//! three orders of magnitude cheaper than the stochastic-optimizer
//! controllers.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin table3_overhead [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, build_ensemble, fmt, parse_options, City, Scale, Table};
use hvac_telemetry::http::blocking_request;
use std::time::Instant;
use veri_hvac::control::{
    ClueConfig, ClueController, PlanningConfig, RandomShootingConfig, RandomShootingController,
    RuleBasedController,
};
use veri_hvac::env::{ComfortRange, HvacEnv, Policy};
use veri_hvac::pipeline::PipelineArtifacts;
use veri_hvac::serve_policy;
use veri_hvac::stats::{OnlineStats, Quantiles};

/// Times `policy` over one deployment episode, returning per-decision
/// latency stats in milliseconds.
fn time_policy<P: Policy>(city: City, steps: usize, policy: &mut P) -> OnlineStats {
    let mut env =
        HvacEnv::new(city.env_config().with_episode_steps(steps)).expect("env construction");
    let mut obs = env.reset();
    let mut stats = OnlineStats::new();
    loop {
        let started = Instant::now();
        let action = policy.decide(&obs);
        stats.push(started.elapsed().as_secs_f64() * 1e3);
        let out = env.step(action).expect("step");
        obs = out.observation;
        if out.done {
            break;
        }
    }
    stats
}

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    // Latency measurement doesn't need a month: limit the episode so the
    // expensive controllers finish promptly, but keep enough samples.
    let steps = match options.scale {
        Scale::Reduced => 2 * 96,
        Scale::Paper => 7 * 96,
    };

    let artifacts = build_artifacts(city, options.scale);
    let env_config = city.env_config();
    let rs_config = RandomShootingConfig {
        samples: options.scale.rs_samples(),
        planning: PlanningConfig::paper_with_schedule(
            env_config.schedule,
            env_config.controlled_zone,
        ),
        ..RandomShootingConfig::paper()
    };

    let mut results: Vec<(&str, OnlineStats)> = Vec::new();

    let mut default_ctl = RuleBasedController::new(ComfortRange::winter());
    results.push(("default", time_policy(city, steps, &mut default_ctl)));

    let mut mbrl =
        RandomShootingController::new(artifacts.model.clone(), rs_config, 1).expect("rs");
    results.push(("mbrl", time_policy(city, steps, &mut mbrl)));

    let ensemble = build_ensemble(&artifacts, options.scale);
    let mut clue = ClueController::new(
        ensemble,
        ClueConfig {
            planner: rs_config,
            ..ClueConfig::paper()
        },
        RuleBasedController::new(ComfortRange::winter()),
        2,
    )
    .expect("clue");
    results.push(("clue", time_policy(city, steps, &mut clue)));

    let mut dt = artifacts.policy.clone();
    results.push(("dt (ours)", time_policy(city, steps, &mut dt)));

    let mut table = Table::new(
        "Table 3: online computation overhead (per setpoint selection)",
        &["controller", "average_ms", "std_ms", "max_ms", "decisions"],
    );
    for (name, stats) in &results {
        table.push_row(vec![
            (*name).to_string(),
            fmt(stats.mean(), 4),
            fmt(stats.sample_std(), 4),
            fmt(stats.max(), 4),
            stats.count().to_string(),
        ]);
    }
    table.emit("table3_overhead", &options);

    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.mean())
            .expect("present")
    };
    let dt_ms = mean_of("dt (ours)");
    println!("\n-- speedups of the DT policy --");
    println!("vs mbrl: {:.0}x", mean_of("mbrl") / dt_ms);
    println!("vs clue: {:.0}x", mean_of("clue") / dt_ms);
    println!("\npaper (for reference, i9-11900KF + RTX 3080Ti): default 0.0 ms, mbrl 212.87 ms, clue 326.30 ms, dt 0.1888 ms → 1127–1728x");
    println!("expected shape: dt within a few hundred microseconds; stochastic planners hundreds-to-thousands of times slower.");

    serve_latency_section(&artifacts, &options);
}

/// Serves the extracted policy over `POST /decide` on a loopback port
/// and reports the end-to-end request latency — the paper's Table 3
/// argument carried one step further: the tree is cheap enough that
/// even a full HTTP round-trip stays in the sub-millisecond range.
fn serve_latency_section(artifacts: &PipelineArtifacts, options: &hvac_bench::HarnessOptions) {
    const REQUESTS: usize = 200;
    let server = match serve_policy(artifacts.policy.clone(), "127.0.0.1:0") {
        Ok(server) => server,
        Err(e) => {
            println!("\n(serve-path latency skipped: cannot bind loopback server: {e})");
            return;
        }
    };
    let before = hvac_telemetry::snapshot();
    let mut wire_ms = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let temp = 15.0 + 10.0 * (i as f64) / (REQUESTS as f64);
        let body = format!(
            r#"{{"zone_temperature":{temp:.3},"hour_of_day":{}}}"#,
            i % 24
        );
        let started = Instant::now();
        let (status, _) =
            blocking_request(server.addr(), "POST", "/decide", &body).expect("loopback request");
        wire_ms.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "decide request failed");
    }
    let after = hvac_telemetry::snapshot();
    let handler = match before.histograms.get("serve.decide.ns") {
        Some(b) => after.histograms["serve.decide.ns"].delta(b),
        None => after.histograms["serve.decide.ns"].clone(),
    };
    server.shutdown();

    let wire = Quantiles::from_samples(&wire_ms).expect("wire samples");
    let mut table = Table::new(
        "Serve path: POST /decide latency over loopback HTTP",
        &["segment", "p50_ms", "p99_ms", "max_ms", "requests"],
    );
    table.push_row(vec![
        "handler (decide only)".to_string(),
        fmt(handler.quantile(0.50) as f64 / 1e6, 4),
        fmt(handler.quantile(0.99) as f64 / 1e6, 4),
        fmt(handler.max as f64 / 1e6, 4),
        handler.count.to_string(),
    ]);
    table.push_row(vec![
        "wire (client round-trip)".to_string(),
        fmt(wire.quantile(0.50), 4),
        fmt(wire.quantile(0.99), 4),
        fmt(wire.quantile(1.0), 4),
        wire.len().to_string(),
    ]);
    table.emit("table3_serve_latency", options);
    println!("(handler quantiles come from the serve.decide.ns histogram; wire time adds loopback TCP + HTTP parsing.)");
}
