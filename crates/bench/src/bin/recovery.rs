//! Crash-recovery and hot-reload cost: how long a torn chain takes to
//! recover as it grows, and how much a manifest swap pauses a loaded
//! fleet.
//!
//! Part 1 tears the final record of sealed chains of 1 k / 10 k /
//! 100 k decisions and times `AuditChain::recover` over each
//! (best-of-reps, file rebuilt between reps). Recovery re-verifies
//! every record exactly once, so wall time must grow linearly: the
//! acceptance gate is per-record cost at 100 k within 3× of per-record
//! cost at 1 k (a quadratic scan would blow this by orders of
//! magnitude).
//!
//! Part 2 hammers an 8-tenant in-process fleet with lockstep `tick`
//! batches from worker threads while the main thread reloads the
//! manifest (one tenant's policy flipping each time). The roster swap
//! holds the write lock ticks ride on, so any pause shows up directly
//! in tick latency: the gate is tick p99 under 50 ms across the
//! reload storm.
//!
//! Results land in `BENCH_recovery.json`.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin recovery [--paper]
//! ```

use hvac_bench::{parse_options, Scale};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use veri_hvac::audit::{AuditChain, ChainConfig, FlushPolicy};
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, Disturbances, Observation, SetpointAction, POLICY_INPUT_DIM};
use veri_hvac::{Fleet, FleetOptions, TenantSpec};

/// The serve benches' toy tree with a tunable split.
fn toy_policy(split: f64) -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let temp = 12.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < split { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hvac-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bytes of a sealed `records`-decision chain with its final record
/// torn mid-write — the crash fixture recovery is timed over.
fn torn_chain_bytes(dir: &std::path::Path, records: usize) -> Vec<u8> {
    let path = dir.join(format!("fixture-{records}.jsonl"));
    let chain = AuditChain::create(
        &path,
        "abababababababababababababababababababababababababababababababab",
        "cert-0",
        ChainConfig {
            checkpoint_every: 256,
            // Buffered: fixture construction is off the clock and the
            // seal flushes everything.
            flush: FlushPolicy::OnSeal,
        },
    )
    .unwrap();
    for i in 0..records {
        let mut x = [0.0f64; POLICY_INPUT_DIM];
        x[feature::ZONE_TEMPERATURE] = 14.0 + (i % 160) as f64 * 0.063;
        chain
            .append_decision(x, 23, 30, 3, "normal", Some(&format!("req-{i:08x}")))
            .unwrap();
    }
    chain.seal().unwrap();
    drop(chain);
    let mut bytes = std::fs::read(&path).unwrap();
    // Tear the seal record roughly in half: a torn tail recovery must
    // truncate and replace with a recovery record.
    let last_line = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap()
        + 1;
    bytes.truncate(last_line + (bytes.len() - last_line) / 2);
    let _ = std::fs::remove_file(&path);
    bytes
}

struct RecoveryPoint {
    records: usize,
    bytes: usize,
    best_ms: f64,
    per_record_us: f64,
}

fn time_recovery(dir: &std::path::Path, records: usize, reps: usize) -> RecoveryPoint {
    let fixture = torn_chain_bytes(dir, records);
    let path = dir.join(format!("recover-{records}.jsonl"));
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // recover() mutates the file, so each rep starts from the
        // pristine torn bytes.
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&fixture).unwrap();
        f.sync_all().unwrap();
        drop(f);
        let start = Instant::now();
        let (chain, report) = AuditChain::recover(
            &path,
            ChainConfig {
                checkpoint_every: 256,
                flush: FlushPolicy::Always,
            },
        )
        .expect("fixture must recover");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.truncated_bytes > 0, "fixture must be torn");
        assert_eq!(report.decisions, records as u64);
        std::mem::forget(chain); // keep the timed region recovery-only
        best = best.min(elapsed);
    }
    let _ = std::fs::remove_file(&path);
    RecoveryPoint {
        records,
        bytes: fixture.len(),
        best_ms: best,
        per_record_us: best * 1e3 / records as f64,
    }
}

struct ReloadPoint {
    reloads: usize,
    ticks: usize,
    tick_p50_ms: f64,
    tick_p99_ms: f64,
    reload_p99_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn reload_swap_pause(dir: &std::path::Path, reloads: usize) -> ReloadPoint {
    const TENANTS: usize = 8;
    let fleet = Arc::new(Fleet::new(FleetOptions {
        audit_dir: Some(dir.join("reload-chains")),
        audit_flush: FlushPolicy::OnSeal,
        ..FleetOptions::default()
    }));
    for i in 0..TENANTS {
        fleet
            .add_tenant(&format!("zone-{i}"), toy_policy(20.0), None)
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let mut local = Vec::new();
                let mut step = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<(String, Observation)> = (0..TENANTS)
                        .map(|i| {
                            let temp = 14.0 + ((step + w + i as u64 * 3) % 12) as f64 * 0.5;
                            (
                                format!("zone-{i}"),
                                Observation::new(temp, Disturbances::default()),
                            )
                        })
                        .collect();
                    let start = Instant::now();
                    fleet.tick(&batch).expect("tick over a stable roster");
                    local.push(start.elapsed().as_secs_f64() * 1e3);
                    step += 1;
                }
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();

    // The reload storm: zone-0 flips policy every round, the other
    // seven tenants ride through unchanged.
    let mut reload_ms = Vec::with_capacity(reloads);
    for round in 0..reloads {
        let split = if round.is_multiple_of(2) { 18.0 } else { 19.0 };
        let mut specs = vec![TenantSpec {
            id: "zone-0".to_string(),
            policy: toy_policy(split),
            certificate_id: None,
        }];
        for i in 1..TENANTS {
            specs.push(TenantSpec {
                id: format!("zone-{i}"),
                policy: toy_policy(20.0),
                certificate_id: None,
            });
        }
        let start = Instant::now();
        let report = fleet.reload(specs).expect("reload");
        reload_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.changed, vec!["zone-0".to_string()], "round {round}");
        std::thread::sleep(Duration::from_millis(25));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let mut ticks = Arc::try_unwrap(latencies)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    ticks.sort_by(f64::total_cmp);
    reload_ms.sort_by(f64::total_cmp);
    ReloadPoint {
        reloads,
        ticks: ticks.len(),
        tick_p50_ms: percentile(&ticks, 0.50),
        tick_p99_ms: percentile(&ticks, 0.99),
        reload_p99_ms: percentile(&reload_ms, 0.99),
    }
}

fn main() {
    let options = parse_options();
    let dir = scratch_dir();

    let (lengths, reps): (&[usize], usize) = match options.scale {
        Scale::Reduced => (&[1_000, 10_000, 100_000], 3),
        Scale::Paper => (&[1_000, 10_000, 100_000], 5),
    };
    let points: Vec<RecoveryPoint> = lengths
        .iter()
        .map(|&n| {
            let p = time_recovery(&dir, n, reps);
            println!(
                "recover {:>7} records ({:>9} bytes): {:>8.2} ms ({:.2} µs/record)",
                p.records, p.bytes, p.best_ms, p.per_record_us
            );
            p
        })
        .collect();
    // O(n) gate: per-record cost must not grow with chain length. A
    // second pass over the prefix per torn byte (quadratic) would push
    // this ratio into the hundreds.
    let linear_ratio = points.last().unwrap().per_record_us / points[0].per_record_us;
    let single_pass = linear_ratio < 3.0;
    println!("per-record cost ratio 100k/1k: {linear_ratio:.2} (gate < 3.0)");

    let reload = reload_swap_pause(
        &dir,
        if options.scale == Scale::Paper {
            40
        } else {
            20
        },
    );
    println!(
        "{} reloads under load: {} ticks, tick p50 {:.2} ms p99 {:.2} ms, reload p99 {:.2} ms",
        reload.reloads, reload.ticks, reload.tick_p50_ms, reload.tick_p99_ms, reload.reload_p99_ms
    );
    let swap_ok = reload.tick_p99_ms < 50.0;

    let mut recovery_json = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            recovery_json.push(',');
        }
        recovery_json.push_str(&format!(
            r#"{{"records":{},"bytes":{},"wall_ms":{:.3},"per_record_us":{:.4}}}"#,
            p.records, p.bytes, p.best_ms, p.per_record_us
        ));
    }
    recovery_json.push(']');
    let body = format!(
        concat!(
            "{{\"bench\":\"recovery\",\"scale\":\"{}\",",
            "\"recovery\":{},\"linear_ratio\":{:.3},",
            "\"reload\":{{\"reloads\":{},\"ticks\":{},\"tick_p50_ms\":{:.3},",
            "\"tick_p99_ms\":{:.3},\"reload_p99_ms\":{:.3}}},",
            "\"asserts\":{{\"single_pass_linear\":{},\"swap_pause_under_50ms\":{}}}}}"
        ),
        options.scale.label(),
        recovery_json,
        linear_ratio,
        reload.reloads,
        reload.ticks,
        reload.tick_p50_ms,
        reload.tick_p99_ms,
        reload.reload_p99_ms,
        single_pass,
        swap_ok,
    );
    std::fs::write("BENCH_recovery.json", format!("{body}\n")).expect("write bench json");
    println!("wrote BENCH_recovery.json");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        single_pass,
        "recovery is not single-pass linear: per-record ratio {linear_ratio:.2}"
    );
    assert!(
        swap_ok,
        "reload swap pause too long: tick p99 {:.2} ms (gate 50 ms)",
        reload.tick_p99_ms
    );
}
