//! Serve-path latency with the live ops plane off vs. on.
//!
//! The ops plane adds per-request work to `/decide`: minting or
//! validating a trace id, a windowed-histogram record, three SLO
//! counter updates, and one flight-recorder push (a handful of relaxed
//! atomic stores). This bench measures what that costs two ways:
//!
//! 1. **End to end**: the same toy policy is served with the ops plane
//!    fully off (`flight_capacity: 0`, `windowed: false`) and fully on
//!    (defaults); the same request mix is fired at both in interleaved
//!    trials (so OS scheduling drift hits both configurations equally)
//!    and client-observed p50/p99 are compared. Reported for context —
//!    loopback tail quantiles on a shared machine are jitter-dominated
//!    and can swing either way.
//! 2. **In-process**: the exact per-decision instrument sequence the
//!    serve handler runs (flight-record build + ring push, windowed
//!    record, SLO updates) is timed in a tight loop. This is the
//!    asserted number: its p99 must stay under 5% of the measured
//!    serve-path p99, i.e. the plane can never be the reason a
//!    latency SLO burns.
//!
//! Results land in `BENCH_ops_overhead.json`.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin ops_overhead [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, Scale, Table};
use hvac_telemetry::http::blocking_request;
use hvac_telemetry::json::ObjectWriter;
use hvac_telemetry::{FlightRecord, FlightRecorder, SloConfig, SloTracker, WindowedHistogram};
use std::time::Instant;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, SetpointAction, POLICY_INPUT_DIM};
use veri_hvac::{serve_with_options, OpsOptions, ServeOptions};

/// The serve tests' toy tree: cold zones heat hard, warm zones idle.
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

fn ops_options(enabled: bool) -> OpsOptions {
    if enabled {
        OpsOptions::default()
    } else {
        OpsOptions {
            flight_capacity: 0,
            windowed: false,
            ..OpsOptions::default()
        }
    }
}

/// Fires `n` decisions at a freshly served policy and returns the
/// client-observed per-request latencies in microseconds (unsorted).
fn time_trial(enabled: bool, n: usize) -> Vec<f64> {
    let options = ServeOptions {
        ops: ops_options(enabled),
        ..ServeOptions::default()
    };
    let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    for _ in 0..20 {
        let (status, _) =
            blocking_request(addr, "POST", "/decide", r#"{"zone_temperature":18.0}"#).unwrap();
        assert_eq!(status, 200);
    }
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let body = format!(r#"{{"zone_temperature":{}}}"#, 14 + i % 12);
        let started = Instant::now();
        let (status, _) = blocking_request(addr, "POST", "/decide", &body).unwrap();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200);
    }
    server.shutdown();
    samples
}

/// The `q`-quantile of an ascending sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Times the per-decision instrument sequence the serve handler runs —
/// flight-record build + push, windowed record, three SLO updates —
/// and returns per-iteration nanoseconds, sorted ascending.
fn time_instruments(iterations: usize) -> Vec<f64> {
    let ring = FlightRecorder::new(256);
    let window = WindowedHistogram::new(
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
        60_000_000_000,
        12,
    );
    let slo = SloTracker::new(SloConfig::default());
    let mut samples = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let now_ns = i as u64 * 1_000;
        let started = Instant::now();
        window.record_at(now_ns, 75_000);
        slo.record_decide_at(now_ns, 75_000);
        slo.record_guard_at(now_ns, 0);
        slo.record_response_at(now_ns, 200);
        ring.push(&FlightRecord {
            trace_id: format!("srv-{i:016x}"),
            t_ns: now_ns,
            parse_ns: 2_000,
            decide_ns: 1_000,
            audit_ns: 0,
            guard_state: 0,
            heating_centi: 2_300,
            cooling_centi: 3_000,
            http_status: 200,
        });
        samples.push(started.elapsed().as_secs_f64() * 1e9);
    }
    samples.sort_by(f64::total_cmp);
    samples
}

fn main() {
    let options = parse_options();
    let (trials, per_trial) = match options.scale {
        Scale::Reduced => (4, 100),
        Scale::Paper => (8, 250),
    };
    let decisions = trials * per_trial;

    // Interleave off/on trials so machine drift (thermal, cache, other
    // tenants) lands on both configurations symmetrically.
    let mut off_samples = Vec::with_capacity(decisions);
    let mut on_samples = Vec::with_capacity(decisions);
    for trial in 0..trials {
        eprintln!("trial {}/{trials}", trial + 1);
        off_samples.extend(time_trial(false, per_trial));
        on_samples.extend(time_trial(true, per_trial));
    }
    off_samples.sort_by(f64::total_cmp);
    on_samples.sort_by(f64::total_cmp);

    let (p50_off, p99_off) = (
        percentile(&off_samples, 0.50),
        percentile(&off_samples, 0.99),
    );
    let (p50_on, p99_on) = (percentile(&on_samples, 0.50), percentile(&on_samples, 0.99));
    let p50_overhead = 100.0 * (p50_on - p50_off) / p50_off;
    let p99_overhead = 100.0 * (p99_on - p99_off) / p99_off;

    let mut table = Table::new(
        "Serve latency per decision, ops plane off vs on (client-observed, loopback HTTP)",
        &["ops_plane", "p50_us", "p99_us", "max_us"],
    );
    table.push_row(vec![
        "off".to_string(),
        fmt(p50_off, 1),
        fmt(p99_off, 1),
        fmt(*off_samples.last().unwrap(), 1),
    ]);
    table.push_row(vec![
        "on".to_string(),
        fmt(p50_on, 1),
        fmt(p99_on, 1),
        fmt(*on_samples.last().unwrap(), 1),
    ]);
    table.emit("ops_overhead", &options);
    println!(
        "\nops-plane overhead (client-observed): p50 {p50_overhead:+.1}%, p99 \
         {p99_overhead:+.1}% over {decisions} decisions x 2 configs ({trials} interleaved \
         trials; loopback tails are jitter-dominated)"
    );

    // The asserted number: the instrument sequence itself, in-process.
    let instrument_iterations = match options.scale {
        Scale::Reduced => 50_000,
        Scale::Paper => 200_000,
    };
    let instruments = time_instruments(instrument_iterations);
    let instr_p50_ns = percentile(&instruments, 0.50);
    let instr_p99_ns = percentile(&instruments, 0.99);
    // Budget against the better (smaller) of the two measured serve
    // p99s so a noisy "on" run cannot make the budget easier to meet.
    let serve_p99_ns = p99_off.min(p99_on) * 1_000.0;
    let instr_share_pct = 100.0 * instr_p99_ns / serve_p99_ns;
    println!(
        "per-decision instruments (in-process, {instrument_iterations} iterations): \
         p50 {instr_p50_ns:.0} ns, p99 {instr_p99_ns:.0} ns = {instr_share_pct:.2}% of \
         serve p99"
    );

    let mut json = ObjectWriter::new();
    json.str_field("bench", "ops_overhead");
    json.str_field("scale", options.scale.label());
    json.u64_field("decisions", decisions as u64);
    json.u64_field("trials", trials as u64);
    json.f64_field("p50_off_us", p50_off);
    json.f64_field("p99_off_us", p99_off);
    json.f64_field("p50_on_us", p50_on);
    json.f64_field("p99_on_us", p99_on);
    json.f64_field("p50_overhead_pct", p50_overhead);
    json.f64_field("p99_overhead_pct", p99_overhead);
    json.u64_field("instrument_iterations", instrument_iterations as u64);
    json.f64_field("instrument_p50_ns", instr_p50_ns);
    json.f64_field("instrument_p99_ns", instr_p99_ns);
    json.f64_field("instrument_share_of_serve_p99_pct", instr_share_pct);
    json.bool_field("p99_within_5pct", instr_share_pct < 5.0);
    let body = json.finish();
    let path = "BENCH_ops_overhead.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");

    assert!(
        instr_share_pct < 5.0,
        "ops-plane instruments' p99 ({instr_p99_ns:.0} ns) exceed 5% of the serve-path \
         p99 ({serve_p99_ns:.0} ns)"
    );
}
