//! Ablation — one-step vs H-step bootstrap verification of
//! criterion #1.
//!
//! Section 3.3.2 proves the one-step Monte-Carlo check equivalent to
//! classifying full H-step bootstrap rollouts, at 1/H the model
//! evaluations. This ablation measures both estimates and both wall
//! times on the same policy.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin ablation_one_step_verify [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, fmt, parse_options, City, Scale, Table};
use std::time::Instant;
use veri_hvac::env::ComfortRange;
use veri_hvac::verify::{verify_criterion_1, verify_criterion_1_bootstrap};

fn main() {
    let options = parse_options();
    let samples = match options.scale {
        Scale::Reduced => 2_000,
        Scale::Paper => 10_000,
    };
    let horizon = 20;
    let threshold = 0.9;

    let mut table = Table::new(
        "Ablation: one-step vs H-step bootstrap verification of criterion #1",
        &[
            "city",
            "method",
            "safe_probability_%",
            "wall_ms",
            "model_evals",
        ],
    );

    for city in City::BOTH {
        let artifacts = build_artifacts(city, options.scale);
        let comfort = ComfortRange::winter();
        let mut policy = artifacts.policy.clone();

        let started = Instant::now();
        let one_step = verify_criterion_1(
            &mut policy,
            &artifacts.model,
            &artifacts.augmenter,
            &comfort,
            samples,
            threshold,
            0,
        )
        .expect("one-step");
        let one_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let bootstrap = verify_criterion_1_bootstrap(
            &mut policy,
            &artifacts.model,
            &artifacts.augmenter,
            &comfort,
            samples,
            horizon,
            threshold,
            0,
        )
        .expect("bootstrap");
        let boot_ms = started.elapsed().as_secs_f64() * 1e3;

        table.push_row(vec![
            city.name().into(),
            "one-step (paper)".into(),
            fmt(100.0 * one_step.probability(), 1),
            fmt(one_ms, 1),
            samples.to_string(),
        ]);
        table.push_row(vec![
            city.name().into(),
            format!("bootstrap H={horizon}"),
            fmt(100.0 * bootstrap.probability(), 1),
            fmt(boot_ms, 1),
            format!("≤{}", samples * horizon),
        ]);
        println!(
            "{}: speedup {:.1}x, estimate gap {:.1} pp",
            city.name(),
            boot_ms / one_ms,
            100.0 * (one_step.probability() - bootstrap.probability()).abs()
        );
    }

    table.emit("ablation_one_step_verify", &options);
    println!("\nexpected shape: one-step runs ~H× faster; the bootstrap estimate is at most");
    println!("slightly lower (a trajectory fails if ANY step fails), matching the paper's proof");
    println!("that both classify the same inputs as unsafe.");
}
