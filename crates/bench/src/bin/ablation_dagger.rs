//! Ablation — one-shot extraction (the paper) versus VIPER-style DAgger
//! aggregation (the extension the paper's reference \[5\] suggests).
//!
//! At a matched teacher-query budget, compares the deployed control
//! performance of the one-shot tree against trees refined with
//! deploy-relabel-refit rounds.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin ablation_dagger [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, pipeline_config, City, Table};
use hvac_telemetry::info;
use veri_hvac::control::RandomShootingController;
use veri_hvac::dynamics::{collect_historical_dataset, DynamicsModel};
use veri_hvac::env::{run_episode, HvacEnv};
use veri_hvac::extract::{
    extract_with_dagger, fit_decision_tree, generate_decision_dataset, DaggerConfig,
    ExtractionConfig, NoiseAugmenter,
};
use veri_hvac::verify::{verify_and_correct, VerificationConfig};

fn main() {
    let options = parse_options();
    let city = City::Pittsburgh;
    let config = pipeline_config(city, options.scale);
    let eval_steps = options.scale.episode_steps();

    info!("[harness] building teacher for {}…", city.name());
    let historical =
        collect_historical_dataset(&config.env, config.historical_episodes, config.seed)
            .expect("collect");
    let model = DynamicsModel::train(&historical, &config.model).expect("train");
    let augmenter =
        NoiseAugmenter::fit(historical.policy_inputs(), config.noise_level).expect("augment");

    let mut table = Table::new(
        "Ablation: one-shot extraction vs DAgger aggregation (matched query budget)",
        &[
            "variant",
            "teacher_queries",
            "performance_index",
            "violation_%",
            "zone_kwh",
            "tree_nodes",
        ],
    );

    let rounds = 2;
    let labels_per_round = config.extraction.n_points / 4;
    // DAgger budget = n_points + rounds × labels; match one-shot to it.
    let matched_points = config.extraction.n_points + rounds * labels_per_round;

    // One-shot at the matched budget.
    {
        let mut teacher =
            RandomShootingController::new(model.clone(), config.rs, config.seed).expect("rs");
        let extraction = ExtractionConfig {
            n_points: matched_points,
            ..config.extraction
        };
        let dataset =
            generate_decision_dataset(&mut teacher, &augmenter, &extraction).expect("distill");
        let mut policy = fit_decision_tree(&dataset, &config.tree).expect("fit");
        let _ = verify_and_correct(
            &mut policy,
            &model,
            &augmenter,
            &VerificationConfig {
                samples: 200,
                ..config.verification
            },
        )
        .expect("verify");
        let nodes = policy.tree().node_count();
        let mut env = HvacEnv::new(city.env_config().with_episode_steps(eval_steps)).expect("env");
        let m = run_episode(&mut env, &mut policy).expect("episode").metrics;
        table.push_row(vec![
            "one-shot (paper)".into(),
            matched_points.to_string(),
            fmt(m.performance_index(), 2),
            fmt(100.0 * m.violation_rate(), 1),
            fmt(m.zone_electric_kwh, 1),
            nodes.to_string(),
        ]);
    }

    // DAgger.
    {
        let mut teacher =
            RandomShootingController::new(model.clone(), config.rs, config.seed).expect("rs");
        let dagger = DaggerConfig {
            extraction: config.extraction,
            tree: config.tree,
            rounds,
            rollout_steps: 2 * 96,
            labels_per_round,
        };
        let outcome =
            extract_with_dagger(&mut teacher, &augmenter, &config.env, &dagger).expect("dagger");
        info!(
            "[harness] dagger dataset growth: {:?}",
            outcome.dataset_sizes
        );
        let mut policy = outcome.policy;
        let _ = verify_and_correct(
            &mut policy,
            &model,
            &augmenter,
            &VerificationConfig {
                samples: 200,
                ..config.verification
            },
        )
        .expect("verify");
        let nodes = policy.tree().node_count();
        let mut env = HvacEnv::new(city.env_config().with_episode_steps(eval_steps)).expect("env");
        let m = run_episode(&mut env, &mut policy).expect("episode").metrics;
        table.push_row(vec![
            format!("dagger ({rounds} rounds)"),
            matched_points.to_string(),
            fmt(m.performance_index(), 2),
            fmt(100.0 * m.violation_rate(), 1),
            fmt(m.zone_electric_kwh, 1),
            nodes.to_string(),
        ]);
    }

    table.emit("ablation_dagger", &options);
    println!("\nexpected shape: DAgger spends part of the budget on states the tree actually");
    println!("visits at deployment, typically matching or improving the one-shot policy —");
    println!("the refinement VIPER (the paper's ref. [5]) motivates.");
}
