//! Fault robustness: raw vs. guarded decision-tree policy under
//! injected sensor faults.
//!
//! Extracts the Pittsburgh policy, then replays January episodes
//! through a [`FaultedEnv`] for every fault model × intensity rung of
//! the preset grid — once with the bare tree policy and once wrapped
//! in a [`GuardedPolicy`] (strict episode preset). The policy under
//! test sees the corrupted observations; a [`SafetyAudit`] runs on the
//! **true** zone state, so every row reports what the building
//! actually experienced: comfort-violation rate plus empirical
//! criterion-1/2/3 counts.
//!
//! At the highest intensity of every model the guarded rate must be
//! *strictly below* the raw rate — the degradation ladder has to buy
//! real comfort, not just different telemetry. The binary asserts it.
//!
//! Results land in `BENCH_fault_robustness.json` next to the text
//! table, so the comparison is machine-checkable across commits.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin fault_robustness [--paper] [--csv]
//! ```

use hvac_bench::{build_artifacts, fmt, parse_options, City, Table};
use hvac_telemetry::info;
use hvac_telemetry::json::ObjectWriter;
use veri_hvac::control::{GuardConfig, GuardedPolicy};
use veri_hvac::env::{EnvConfig, HvacEnv, Policy};
use veri_hvac::faults::{FaultModel, FaultSchedule, FaultedEnv};
use veri_hvac::verify::SafetyAudit;

/// Fault-stream seed shared by every case, so raw and guarded arms see
/// byte-identical corruption.
const FAULT_SEED: u64 = 1234;

/// Replays one faulted episode, auditing the policy's decisions
/// against the true (uncorrupted) zone state.
fn run_case<P: Policy>(policy: &mut P, config: &EnvConfig, schedule: FaultSchedule) -> SafetyAudit {
    let env = HvacEnv::new(config.clone()).expect("env construction");
    let mut faulted = FaultedEnv::new(env, schedule);
    let mut audit = SafetyAudit::new(config.comfort);
    let mut obs = faulted.reset();
    loop {
        let pre_temp = faulted.true_observation().zone_temperature;
        let action = policy.decide(&obs);
        let out = faulted.step(action).expect("env step");
        audit.record_step(
            pre_temp,
            action,
            faulted.true_observation().zone_temperature,
            out.occupied,
        );
        obs = out.observation;
        if out.done {
            break;
        }
    }
    audit
}

/// One audited arm rendered for the JSON report.
fn arm_json(o: &mut ObjectWriter, prefix: &str, audit: &SafetyAudit) {
    o.f64_field(
        &format!("{prefix}_violation_rate"),
        audit.comfort_violation_rate(),
    );
    o.f64_field(
        &format!("{prefix}_violation_degree_hours"),
        audit.violation_degree_hours(),
    );
    o.u64_field(
        &format!("{prefix}_criterion_1"),
        audit.criterion_1_departures() as u64,
    );
    o.u64_field(
        &format!("{prefix}_criterion_2"),
        audit.criterion_2_violations() as u64,
    );
    o.u64_field(
        &format!("{prefix}_criterion_3"),
        audit.criterion_3_violations() as u64,
    );
}

fn main() {
    let options = parse_options();
    let artifacts = build_artifacts(City::Pittsburgh, options.scale);
    let steps = options.scale.episode_steps();
    let config = City::Pittsburgh.env_config().with_episode_steps(steps);

    let guarded_policy = || {
        GuardedPolicy::new(
            artifacts.policy.clone(),
            GuardConfig::strict(config.comfort),
        )
    };

    // Clean baseline: both arms on an empty schedule. The guard is
    // bit-identical to the bare policy here, so one audited pair also
    // re-checks that property end-to-end.
    let clean_raw = run_case(
        &mut artifacts.policy.clone(),
        &config,
        FaultSchedule::new(FAULT_SEED),
    );
    let clean_guarded = run_case(
        &mut guarded_policy(),
        &config,
        FaultSchedule::new(FAULT_SEED),
    );
    assert_eq!(
        clean_raw, clean_guarded,
        "guarded policy must be bit-identical to raw on clean inputs"
    );

    let mut table = Table::new(
        "Fault robustness: comfort-violation rate, raw vs guarded DT policy (Pittsburgh)",
        &[
            "fault",
            "intensity",
            "raw_rate",
            "grd_rate",
            "raw_c1",
            "grd_c1",
            "raw_c2",
            "grd_c2",
            "raw_c3",
            "grd_c3",
            "ladder",
        ],
    );
    table.push_row(vec![
        "none".into(),
        "-".into(),
        fmt(clean_raw.comfort_violation_rate(), 4),
        fmt(clean_guarded.comfort_violation_rate(), 4),
        clean_raw.criterion_1_departures().to_string(),
        clean_guarded.criterion_1_departures().to_string(),
        clean_raw.criterion_2_violations().to_string(),
        clean_guarded.criterion_2_violations().to_string(),
        clean_raw.criterion_3_violations().to_string(),
        clean_guarded.criterion_3_violations().to_string(),
        "normal".into(),
    ]);

    let mut cases = Vec::new();
    let mut severe_ties = Vec::new();
    for model in FaultModel::ALL {
        for intensity in 0..FaultModel::INTENSITIES {
            let schedule = model.schedule(intensity, steps, FAULT_SEED);
            let raw = run_case(&mut artifacts.policy.clone(), &config, schedule.clone());
            let mut guarded = guarded_policy();
            let grd = run_case(&mut guarded, &config, schedule);
            let stats = guarded.stats();
            info!(
                "[fault_robustness] {model} {}: raw {:.4} vs guarded {:.4} ({} rejections, {} holds, {} fallbacks, {} failsafes)",
                model.intensity_label(intensity),
                raw.comfort_violation_rate(),
                grd.comfort_violation_rate(),
                stats.rejections,
                stats.holds,
                stats.fallbacks,
                stats.failsafes,
            );

            table.push_row(vec![
                model.name().into(),
                model.intensity_label(intensity),
                fmt(raw.comfort_violation_rate(), 4),
                fmt(grd.comfort_violation_rate(), 4),
                raw.criterion_1_departures().to_string(),
                grd.criterion_1_departures().to_string(),
                raw.criterion_2_violations().to_string(),
                grd.criterion_2_violations().to_string(),
                raw.criterion_3_violations().to_string(),
                grd.criterion_3_violations().to_string(),
                format!(
                    "{}h/{}f/{}fs",
                    stats.holds, stats.fallbacks, stats.failsafes
                ),
            ]);

            let mut o = ObjectWriter::new();
            o.str_field("model", model.name());
            o.u64_field("intensity", intensity as u64);
            o.str_field("intensity_label", &model.intensity_label(intensity));
            arm_json(&mut o, "raw", &raw);
            arm_json(&mut o, "guarded", &grd);
            o.u64_field("guard_rejections", stats.rejections);
            o.u64_field("guard_holds", stats.holds);
            o.u64_field("guard_fallbacks", stats.fallbacks);
            o.u64_field("guard_failsafes", stats.failsafes);
            cases.push(o.finish());

            if intensity == FaultModel::INTENSITIES - 1
                && grd.comfort_violation_rate() >= raw.comfort_violation_rate()
            {
                severe_ties.push(format!(
                    "{model}: guarded {:.4} !< raw {:.4}",
                    grd.comfort_violation_rate(),
                    raw.comfort_violation_rate()
                ));
            }
        }
    }
    table.emit("fault_robustness", &options);

    let mut clean = ObjectWriter::new();
    arm_json(&mut clean, "raw", &clean_raw);
    arm_json(&mut clean, "guarded", &clean_guarded);
    let mut meta = ObjectWriter::new();
    meta.str_field("bench", "fault_robustness");
    meta.str_field("scale", options.scale.label());
    meta.str_field("city", City::Pittsburgh.name());
    meta.u64_field("episode_steps", steps as u64);
    meta.u64_field("fault_seed", FAULT_SEED);
    meta.u64_field(
        "guarded_strictly_better_at_severe",
        u64::from(severe_ties.is_empty()),
    );
    let meta = meta.finish();
    let body = format!(
        "{},\"clean\":{},\"cases\":[{}]}}",
        meta.trim_end_matches('}'),
        clean.finish(),
        cases.join(",")
    );
    let path = "BENCH_fault_robustness.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");

    assert!(
        severe_ties.is_empty(),
        "guarded policy must strictly beat raw at the highest intensity of every fault model:\n{}",
        severe_ties.join("\n")
    );
    println!(
        "guarded policy strictly beats raw at the highest intensity of all {} fault models",
        FaultModel::ALL.len()
    );
}
