//! Serve-path latency with the tamper-evident audit chain off vs. on,
//! across flush policies.
//!
//! Every audited decision pays one hash-chained JSONL append
//! (`AuditChain::append_decision`); how often that append reaches the
//! OS is the `--audit-flush` policy. This bench serves the same toy
//! policy once per variant over loopback HTTP — plain, then audited
//! under `always` (the durable default), `every-n=64` (batched), and
//! `interval-ms=25` (clock-driven) — fires the same request mix at
//! each, and reports client-observed p50/p99 per decision plus the
//! chain's own `audit.append.ns` histogram. The acceptance target is
//! p99 overhead under 10% for the default policy.
//!
//! Results land in `BENCH_serve_audit.json`.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin serve_audit [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, Scale, Table};
use hvac_telemetry::http::blocking_request;
use hvac_telemetry::json::ObjectWriter;
use std::sync::Arc;
use std::time::Instant;
use veri_hvac::audit::{AuditChain, ChainConfig, FlushPolicy};
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, SetpointAction, POLICY_INPUT_DIM};
use veri_hvac::{serve_with_options, ServeOptions};

/// The serve tests' toy tree: cold zones heat hard, warm zones idle.
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// Fires `n` decisions at a freshly served policy (audited when `chain`
/// is given) and returns the client-observed per-request latencies in
/// microseconds, sorted ascending.
fn time_requests(chain: Option<Arc<AuditChain>>, n: usize) -> Vec<f64> {
    let options = ServeOptions {
        audit: chain,
        ..ServeOptions::default()
    };
    let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    // Warm up the accept loop and the policy path off the clock.
    for _ in 0..20 {
        let (status, _) =
            blocking_request(addr, "POST", "/decide", r#"{"zone_temperature":18.0}"#).unwrap();
        assert_eq!(status, 200);
    }
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let body = format!(r#"{{"zone_temperature":{}}}"#, 14 + i % 12);
        let started = Instant::now();
        let (status, _) = blocking_request(addr, "POST", "/decide", &body).unwrap();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200);
    }
    server.shutdown();
    samples.sort_by(f64::total_cmp);
    samples
}

/// The `q`-quantile of an ascending sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the request mix through a fresh audited server under `flush`
/// and returns sorted latencies.
fn time_audited(flush: FlushPolicy, label: &str, decisions: usize) -> Vec<f64> {
    let chain_path = std::env::temp_dir().join(format!("hvac-bench-serve-audit-{label}.jsonl"));
    let policy_hash = veri_hvac::audit::policy_hash(&toy_policy());
    let chain = Arc::new(
        AuditChain::create(
            &chain_path,
            &policy_hash,
            "",
            ChainConfig {
                flush,
                ..ChainConfig::default()
            },
        )
        .expect("audit chain"),
    );
    let samples = time_requests(Some(chain), decisions);
    let _ = std::fs::remove_file(&chain_path);
    samples
}

fn main() {
    let options = parse_options();
    let decisions = match options.scale {
        Scale::Reduced => 400,
        Scale::Paper => 2000,
    };

    let plain = time_requests(None, decisions);
    let (p50_off, p99_off) = (percentile(&plain, 0.50), percentile(&plain, 0.99));

    // Audited variants, one per flush policy. The in-process append
    // histogram is deltaed across the `always` run only (the default
    // configuration the overhead target applies to).
    let before = hvac_telemetry::snapshot();
    let always = time_audited(FlushPolicy::Always, "always", decisions);
    let append = hvac_telemetry::snapshot().histograms["audit.append.ns"].delta(
        &before
            .histograms
            .get("audit.append.ns")
            .cloned()
            .unwrap_or_default(),
    );
    let every_n = time_audited(FlushPolicy::EveryN(64), "every-n", decisions);
    let interval = time_audited(FlushPolicy::IntervalMs(25), "interval-ms", decisions);

    let mut table = Table::new(
        "Serve latency per decision by audit flush policy (client-observed, loopback HTTP)",
        &["audit", "p50_us", "p99_us", "max_us", "p99_vs_off_pct"],
    );
    table.push_row(vec![
        "off".to_string(),
        fmt(p50_off, 1),
        fmt(p99_off, 1),
        fmt(*plain.last().unwrap(), 1),
        "-".to_string(),
    ]);
    let mut json = ObjectWriter::new();
    json.str_field("bench", "serve_audit");
    json.str_field("scale", options.scale.label());
    json.u64_field("decisions", decisions as u64);
    json.f64_field("p50_off_us", p50_off);
    json.f64_field("p99_off_us", p99_off);
    let mut default_overheads = (0.0, 0.0);
    for (label, key, samples) in [
        ("always", "always", &always),
        ("every-n=64", "every_n_64", &every_n),
        ("interval-ms=25", "interval_ms_25", &interval),
    ] {
        let (p50_on, p99_on) = (percentile(samples, 0.50), percentile(samples, 0.99));
        let p50_overhead = 100.0 * (p50_on - p50_off) / p50_off;
        let p99_overhead = 100.0 * (p99_on - p99_off) / p99_off;
        if label == "always" {
            default_overheads = (p50_overhead, p99_overhead);
        }
        table.push_row(vec![
            label.to_string(),
            fmt(p50_on, 1),
            fmt(p99_on, 1),
            fmt(*samples.last().unwrap(), 1),
            fmt(p99_overhead, 1),
        ]);
        json.f64_field(&format!("p50_{key}_us"), p50_on);
        json.f64_field(&format!("p99_{key}_us"), p99_on);
        json.f64_field(&format!("p50_{key}_overhead_pct"), p50_overhead);
        json.f64_field(&format!("p99_{key}_overhead_pct"), p99_overhead);
    }
    table.emit("serve_audit", &options);
    println!(
        "\naudit overhead (always): p50 {:+.1}%, p99 {:+.1}% over {decisions} decisions",
        default_overheads.0, default_overheads.1
    );
    println!(
        "chain append (in-process, always): {} records, p50 {} ns, p99 {} ns",
        append.count,
        append.quantile(0.50),
        append.quantile(0.99)
    );

    // Keep the legacy field names so existing dashboards read the
    // default-policy numbers unchanged.
    json.f64_field("p50_on_us", percentile(&always, 0.50));
    json.f64_field("p99_on_us", percentile(&always, 0.99));
    json.f64_field("p50_overhead_pct", default_overheads.0);
    json.f64_field("p99_overhead_pct", default_overheads.1);
    json.u64_field("append_count", append.count);
    json.u64_field("append_p50_ns", append.quantile(0.50));
    json.u64_field("append_p99_ns", append.quantile(0.99));
    let body = json.finish();
    let path = "BENCH_serve_audit.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");
}
