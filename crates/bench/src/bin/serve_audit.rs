//! Serve-path latency with the tamper-evident audit chain off vs. on.
//!
//! Every audited decision pays one hash-chained, flushed JSONL append
//! (`AuditChain::append_decision`). This bench serves the same toy
//! policy twice over loopback HTTP — once plain, once with an audit
//! chain in the durable default configuration — fires the same request
//! mix at both, and reports client-observed p50/p99 per decision plus
//! the chain's own `audit.append.ns` histogram. The acceptance target
//! is p99 overhead under 10%.
//!
//! Results land in `BENCH_serve_audit.json`.
//!
//! ```sh
//! cargo run --release -p hvac-bench --bin serve_audit [--paper] [--csv]
//! ```

use hvac_bench::{fmt, parse_options, Scale, Table};
use hvac_telemetry::http::blocking_request;
use hvac_telemetry::json::ObjectWriter;
use std::sync::Arc;
use std::time::Instant;
use veri_hvac::audit::{AuditChain, ChainConfig};
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, SetpointAction, POLICY_INPUT_DIM};
use veri_hvac::{serve_with_options, ServeOptions};

/// The serve tests' toy tree: cold zones heat hard, warm zones idle.
fn toy_policy() -> DtPolicy {
    let space = ActionSpace::new();
    let heat = space.index_of(SetpointAction::new(23, 30).unwrap());
    let off = space.index_of(SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..20 {
        let temp = 14.0 + f64::from(i) * 0.5;
        let mut row = vec![0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = temp;
        inputs.push(row);
        labels.push(if temp < 20.0 { heat } else { off });
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// Fires `n` decisions at a freshly served policy (audited when `chain`
/// is given) and returns the client-observed per-request latencies in
/// microseconds, sorted ascending.
fn time_requests(chain: Option<Arc<AuditChain>>, n: usize) -> Vec<f64> {
    let options = ServeOptions {
        audit: chain,
        ..ServeOptions::default()
    };
    let server = serve_with_options(toy_policy(), options, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    // Warm up the accept loop and the policy path off the clock.
    for _ in 0..20 {
        let (status, _) =
            blocking_request(addr, "POST", "/decide", r#"{"zone_temperature":18.0}"#).unwrap();
        assert_eq!(status, 200);
    }
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let body = format!(r#"{{"zone_temperature":{}}}"#, 14 + i % 12);
        let started = Instant::now();
        let (status, _) = blocking_request(addr, "POST", "/decide", &body).unwrap();
        samples.push(started.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200);
    }
    server.shutdown();
    samples.sort_by(f64::total_cmp);
    samples
}

/// The `q`-quantile of an ascending sample vector.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let options = parse_options();
    let decisions = match options.scale {
        Scale::Reduced => 400,
        Scale::Paper => 2000,
    };

    let plain = time_requests(None, decisions);

    let chain_path = std::env::temp_dir().join("hvac-bench-serve-audit.jsonl");
    let policy_hash = veri_hvac::audit::policy_hash(&toy_policy());
    let chain = Arc::new(
        AuditChain::create(&chain_path, &policy_hash, "", ChainConfig::default())
            .expect("audit chain"),
    );
    let before = hvac_telemetry::snapshot();
    let audited = time_requests(Some(Arc::clone(&chain)), decisions);
    let append = hvac_telemetry::snapshot().histograms["audit.append.ns"].delta(
        &before
            .histograms
            .get("audit.append.ns")
            .cloned()
            .unwrap_or_default(),
    );

    let (p50_off, p99_off) = (percentile(&plain, 0.50), percentile(&plain, 0.99));
    let (p50_on, p99_on) = (percentile(&audited, 0.50), percentile(&audited, 0.99));
    let p50_overhead = 100.0 * (p50_on - p50_off) / p50_off;
    let p99_overhead = 100.0 * (p99_on - p99_off) / p99_off;

    let mut table = Table::new(
        "Serve latency per decision, audit chain off vs on (client-observed, loopback HTTP)",
        &["audit", "p50_us", "p99_us", "max_us"],
    );
    table.push_row(vec![
        "off".to_string(),
        fmt(p50_off, 1),
        fmt(p99_off, 1),
        fmt(*plain.last().unwrap(), 1),
    ]);
    table.push_row(vec![
        "on".to_string(),
        fmt(p50_on, 1),
        fmt(p99_on, 1),
        fmt(*audited.last().unwrap(), 1),
    ]);
    table.emit("serve_audit", &options);
    println!(
        "\naudit overhead: p50 {p50_overhead:+.1}%, p99 {p99_overhead:+.1}% over {decisions} decisions"
    );
    println!(
        "chain append (in-process): {} records, p50 {} ns, p99 {} ns",
        append.count,
        append.quantile(0.50),
        append.quantile(0.99)
    );

    let mut json = ObjectWriter::new();
    json.str_field("bench", "serve_audit");
    json.str_field("scale", options.scale.label());
    json.u64_field("decisions", decisions as u64);
    json.f64_field("p50_off_us", p50_off);
    json.f64_field("p99_off_us", p99_off);
    json.f64_field("p50_on_us", p50_on);
    json.f64_field("p99_on_us", p99_on);
    json.f64_field("p50_overhead_pct", p50_overhead);
    json.f64_field("p99_overhead_pct", p99_overhead);
    json.u64_field("append_count", append.count);
    json.u64_field("append_p50_ns", append.quantile(0.50));
    json.u64_field("append_p99_ns", append.quantile(0.99));
    let body = json.finish();
    let path = "BENCH_serve_audit.json";
    std::fs::write(path, format!("{body}\n")).expect("write bench json");
    println!("wrote {path}");
    let _ = std::fs::remove_file(&chain_path);
}
