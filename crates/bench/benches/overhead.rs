//! Criterion micro-benchmarks for Table 3: per-decision latency of each
//! controller family.
//!
//! Complements the `table3_overhead` binary (which measures in-situ over
//! a deployment episode) with statistically rigorous isolated timings.
//! Run with `cargo bench -p hvac-bench --bench overhead`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use veri_hvac::control::{
    Predictor, RandomShootingConfig, RandomShootingController, RuleBasedController,
};
use veri_hvac::dtree::TreeConfig;
use veri_hvac::dynamics::{DynamicsModel, ModelConfig, TransitionDataset};
use veri_hvac::env::{ComfortRange, Disturbances, Observation, Policy, SetpointAction, Transition};
use veri_hvac::extract::{
    fit_decision_tree, generate_decision_dataset, ExtractionConfig, NoiseAugmenter,
};
use veri_hvac::nn::TrainConfig;

/// A synthetic but realistic training corpus (keeps bench setup fast
/// and hermetic — no simulator in the hot path).
fn synthetic_transitions(n: usize) -> TransitionDataset {
    (0..n)
        .map(|i| {
            let s = 15.0 + (i % 12) as f64;
            let h = 15 + (i % 9) as i32;
            let c = 21 + (i % 10) as i32;
            let action = SetpointAction::new(h, c).expect("in range");
            Transition {
                observation: Observation::new(
                    s,
                    Disturbances {
                        outdoor_temperature: -5.0 + (i % 15) as f64,
                        relative_humidity: 60.0,
                        wind_speed: 4.0,
                        solar_radiation: (i % 7) as f64 * 60.0,
                        occupant_count: f64::from(i % 3 == 0),
                        hour_of_day: (i % 96) as f64 * 0.25,
                    },
                ),
                action,
                next_zone_temperature: 0.9 * s + 0.08 * f64::from(h),
            }
        })
        .collect()
}

struct Stack {
    model: DynamicsModel,
    policy: veri_hvac::control::DtPolicy,
    obs: Observation,
}

fn build_stack() -> Stack {
    let data = synthetic_transitions(600);
    let model = DynamicsModel::train(
        &data,
        &ModelConfig {
            hidden: vec![64, 64],
            train: TrainConfig {
                epochs: 30,
                ..TrainConfig::paper()
            },
            ..ModelConfig::default()
        },
    )
    .expect("train");
    let augmenter = NoiseAugmenter::fit(data.policy_inputs(), 0.05).expect("augment");
    let mut teacher = RandomShootingController::new(
        model.clone(),
        RandomShootingConfig {
            samples: 50,
            ..RandomShootingConfig::paper()
        },
        0,
    )
    .expect("rs");
    let decision_data = generate_decision_dataset(
        &mut teacher,
        &augmenter,
        &ExtractionConfig {
            n_points: 60,
            mc_runs: 3,
            ..ExtractionConfig::paper()
        },
    )
    .expect("distill");
    let policy = fit_decision_tree(&decision_data, &TreeConfig::default()).expect("fit");
    let obs = Observation::new(
        21.0,
        Disturbances {
            outdoor_temperature: -2.0,
            relative_humidity: 65.0,
            wind_speed: 4.0,
            solar_radiation: 120.0,
            occupant_count: 6.0,
            hour_of_day: 10.0,
        },
    );
    Stack { model, policy, obs }
}

fn bench_decisions(c: &mut Criterion) {
    let stack = build_stack();
    let mut group = c.benchmark_group("table3_per_decision");

    let mut default_ctl = RuleBasedController::new(ComfortRange::winter());
    group.bench_function("default_rule_based", |b| {
        b.iter(|| black_box(default_ctl.decide(black_box(&stack.obs))))
    });

    let mut dt = stack.policy.clone();
    group.bench_function("dt_policy", |b| {
        b.iter(|| black_box(dt.decide(black_box(&stack.obs))))
    });

    // The paper's RS uses 1000 samples × horizon 20; that configuration
    // is the slow path being escaped. Benchmark it at both the paper's
    // configuration and a reduced one for context.
    for samples in [100usize, 1000] {
        let mut rs = RandomShootingController::new(
            stack.model.clone(),
            RandomShootingConfig {
                samples,
                ..RandomShootingConfig::paper()
            },
            1,
        )
        .expect("rs");
        group.sample_size(10);
        group.bench_function(format!("mbrl_rs_{samples}x20"), |b| {
            b.iter(|| black_box(rs.plan(black_box(&stack.obs))))
        });
    }

    group.bench_function("dynamics_model_single_step", |b| {
        b.iter(|| {
            black_box(
                stack
                    .model
                    .predict_next(black_box(&stack.obs), SetpointAction::off()),
            )
        })
    });

    group.finish();
}

/// Guards the telemetry crate's overhead contract: with the default
/// `NullSink`, an instrumented call site must cost no more than a few
/// relaxed atomic operations. The `dt_policy` benchmark above exercises
/// the instrumented planner end-to-end; these isolate the primitives.
fn bench_disabled_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_disabled");

    // Baseline: the cheapest observable operation.
    let mut x = 0u64;
    group.bench_function("baseline_wrapping_add", |b| {
        b.iter(|| {
            x = black_box(x).wrapping_add(1);
            black_box(x)
        })
    });

    // A cached counter handle: one relaxed fetch_add per call.
    let counter = hvac_telemetry::counter("bench.disabled.counter");
    group.bench_function("counter_incr", |b| b.iter(|| black_box(counter).incr()));

    // A full span enter/close pair against the NullSink: two clock
    // reads, a thread-local push/pop, and two counter adds.
    group.bench_function("span_enter_close", |b| {
        b.iter(|| hvac_telemetry::Span::enter(black_box("bench.disabled.span")).close())
    });

    // A level-gated message that the NullSink drops: must short-circuit
    // before formatting.
    group.bench_function("debug_message_dropped", |b| {
        b.iter(|| hvac_telemetry::debug!("never formatted: {}", black_box(42)))
    });

    group.finish();
}

criterion_group!(benches, bench_decisions, bench_disabled_telemetry);
criterion_main!(benches);
