//! Criterion micro-benchmarks for the pipeline's building blocks:
//! simulator stepping, weather generation, CART fitting, tree
//! prediction, Eq. 5 sampling, and Algorithm 1 verification.
//!
//! Run with `cargo bench -p hvac-bench --bench pipeline_stages`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, ComfortRange, POLICY_INPUT_DIM};
use veri_hvac::extract::NoiseAugmenter;
use veri_hvac::sim::{
    Building, BuildingConfig, ClimatePreset, OccupancySchedule, SimClock, WeatherGenerator,
};
use veri_hvac::stats::seeded_rng;
use veri_hvac::verify::verify_paths;

/// Deterministic synthetic decision dataset of the given size.
fn decision_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let space = ActionSpace::new();
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = [0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = 15.0 + (i % 40) as f64 * 0.3;
        row[feature::OUTDOOR_TEMPERATURE] = -10.0 + (i % 23) as f64;
        row[feature::RELATIVE_HUMIDITY] = 40.0 + (i % 11) as f64 * 5.0;
        row[feature::WIND_SPEED] = (i % 7) as f64;
        row[feature::SOLAR_RADIATION] = (i % 9) as f64 * 80.0;
        row[feature::OCCUPANT_COUNT] = (i % 4) as f64;
        inputs.push(row.to_vec());
        labels.push((i * 7 + i / 3) % space.len());
    }
    (inputs, labels)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let mut building = Building::new(BuildingConfig::five_zone_463m2()).expect("building");
    let mut weather = WeatherGenerator::new(ClimatePreset::pittsburgh_4a(), 0);
    let schedule = OccupancySchedule::office();
    let mut clock = SimClock::january();
    let sample = weather.sample(&clock);

    group.bench_function("building_step_5_zones", |b| {
        b.iter(|| {
            let occupants = schedule.occupants(&clock);
            black_box(
                building
                    .step(black_box(&sample), &occupants, &[(20.0, 24.0); 5])
                    .expect("step"),
            );
            clock.advance();
        })
    });

    group.bench_function("weather_sample", |b| {
        b.iter(|| black_box(weather.sample(black_box(&clock))))
    });
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_tree");
    let space = ActionSpace::new();

    for n in [100usize, 1000] {
        let (inputs, labels) = decision_dataset(n);
        group.bench_function(format!("cart_fit_{n}_points"), |b| {
            b.iter(|| {
                black_box(
                    DecisionTree::fit(
                        black_box(&inputs),
                        black_box(&labels),
                        space.len(),
                        &TreeConfig::default(),
                    )
                    .expect("fit"),
                )
            })
        });
    }

    let (inputs, labels) = decision_dataset(1000);
    let tree =
        DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).expect("fit");
    let probe = &inputs[123];
    group.bench_function("tree_predict", |b| {
        b.iter(|| black_box(tree.predict(black_box(probe)).expect("predict")))
    });
    group.bench_function("tree_leaf_boxes", |b| {
        b.iter(|| black_box(tree.leaf_boxes()))
    });

    let policy = DtPolicy::new(tree).expect("policy");
    group.bench_function("algorithm1_verify_paths", |b| {
        b.iter(|| {
            black_box(verify_paths(black_box(&policy), &ComfortRange::winter()).expect("verify"))
        })
    });
    group.finish();
}

fn bench_augmenter(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    let (inputs, _) = decision_dataset(2000);
    let rows: Vec<[f64; POLICY_INPUT_DIM]> = inputs
        .iter()
        .map(|r| {
            let mut a = [0.0; POLICY_INPUT_DIM];
            a.copy_from_slice(r);
            a
        })
        .collect();
    let augmenter = NoiseAugmenter::fit(rows, 0.05).expect("augment");
    let mut rng = seeded_rng(0);
    group.bench_function("eq5_sample", |b| {
        b.iter(|| black_box(augmenter.sample(black_box(&mut rng))))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_tree, bench_augmenter);
criterion_main!(benches);
