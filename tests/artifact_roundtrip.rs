//! Integration tests for the deployment artifacts: a policy and model
//! extracted by the pipeline must survive text serialization and behave
//! identically afterwards — the contract behind the `veri_hvac` CLI and
//! the paper's "deploy to the building edge device" step.

use veri_hvac::control::DtPolicy;
use veri_hvac::dynamics::DynamicsModel;
use veri_hvac::env::{run_episode, EnvConfig, HvacEnv, Policy, SetpointAction};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
use veri_hvac::sim::weather_io::{weather_from_csv, weather_to_csv};
use veri_hvac::sim::{ClimatePreset, SimClock, WeatherGenerator};

fn artifacts() -> veri_hvac::pipeline::PipelineArtifacts {
    run_pipeline(&PipelineConfig::quick(EnvConfig::pittsburgh())).unwrap()
}

#[test]
fn policy_roundtrips_through_text_with_identical_behavior() {
    let a = artifacts();
    let text = a.policy.to_compact_string();
    let mut restored = DtPolicy::from_compact_string(&text).unwrap();
    let mut original = a.policy.clone();

    // Identical decisions over a whole deployment episode.
    let run = |policy: &mut DtPolicy| {
        let mut env = HvacEnv::new(EnvConfig::pittsburgh().with_episode_steps(96)).unwrap();
        run_episode(&mut env, policy).unwrap().actions()
    };
    assert_eq!(run(&mut original), run(&mut restored));
}

#[test]
fn model_roundtrips_through_text_with_identical_predictions() {
    let a = artifacts();
    let text = a.model.to_compact_string();
    let restored = DynamicsModel::from_compact_string(&text).unwrap();
    for t in a.historical.iter().take(50) {
        assert_eq!(
            a.model.predict_next_temperature(&t.observation, t.action),
            restored.predict_next_temperature(&t.observation, t.action),
        );
    }
}

#[test]
fn corrupted_policy_artifacts_are_rejected() {
    let a = artifacts();
    let text = a.policy.to_compact_string();
    // Flip the class count header: dimension validation must fire.
    let corrupted = text.replace("classes 90", "classes 10");
    assert!(DtPolicy::from_compact_string(&corrupted).is_err());
    // Truncate the body.
    let truncated: String = text.lines().take(6).collect::<Vec<_>>().join("\n");
    assert!(DtPolicy::from_compact_string(&truncated).is_err());
}

#[test]
fn weather_trace_roundtrips_and_replays_identically() {
    let mut generator = WeatherGenerator::new(ClimatePreset::tucson_2b(), 17);
    let trace = generator.trace(&SimClock::january(), 97);
    let restored = weather_from_csv(&weather_to_csv(&trace)).unwrap();
    assert_eq!(trace, restored);

    // Replaying the restored trace yields a bitwise-identical episode.
    let run = |trace: Vec<veri_hvac::sim::WeatherSample>| {
        let mut env =
            HvacEnv::with_weather_trace(EnvConfig::tucson().with_episode_steps(96), trace).unwrap();
        env.reset();
        let mut temps = Vec::new();
        for _ in 0..96 {
            let out = env.step(SetpointAction::new(20, 26).unwrap()).unwrap();
            temps.push(out.observation.zone_temperature);
        }
        temps
    };
    assert_eq!(run(trace), run(restored));
}

#[test]
fn verified_policy_text_artifact_still_passes_algorithm_1() {
    use veri_hvac::env::ComfortRange;
    use veri_hvac::verify::verify_paths;
    let a = artifacts();
    let restored = DtPolicy::from_compact_string(&a.policy.to_compact_string()).unwrap();
    let check = verify_paths(&restored, &ComfortRange::winter()).unwrap();
    assert!(
        check.passed(),
        "violations resurfaced after roundtrip: {:?}",
        check.violations
    );
}

#[test]
fn deterministic_policy_flag_survives_roundtrip() {
    let a = artifacts();
    let restored = DtPolicy::from_compact_string(&a.policy.to_compact_string()).unwrap();
    assert!(restored.is_deterministic());
    assert_eq!(restored.name(), "dt");
}
