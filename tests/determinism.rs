//! Cross-crate determinism properties — the motivation experiment
//! (paper Fig. 1) and its resolution (Fig. 5), as executable assertions.

use veri_hvac::control::{RandomShootingConfig, RandomShootingController};
use veri_hvac::env::{run_episode, EnvConfig, HvacEnv, Policy};
use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
use veri_hvac::sim::{ClimatePreset, SimClock, WeatherGenerator};

/// One fixed day of Pittsburgh weather (the paper's "fixed set of
/// disturbances of one day").
fn fixed_day() -> Vec<veri_hvac::sim::WeatherSample> {
    let mut generator = WeatherGenerator::new(ClimatePreset::pittsburgh_4a(), 99);
    generator.trace(&SimClock::january(), 97)
}

#[test]
fn mbrl_is_stochastic_on_a_fixed_day() {
    // Fig. 1: same disturbances, same model, different optimizer seeds ⇒
    // different setpoint traces.
    let artifacts = run_pipeline(&PipelineConfig::quick(EnvConfig::pittsburgh())).unwrap();
    let run = |seed: u64| {
        let config = RandomShootingConfig {
            samples: 60,
            ..RandomShootingConfig::paper()
        };
        let mut controller =
            RandomShootingController::new(artifacts.model.clone(), config, seed).unwrap();
        let mut env = HvacEnv::with_weather_trace(
            EnvConfig::pittsburgh().with_episode_steps(96),
            fixed_day(),
        )
        .unwrap();
        run_episode(&mut env, &mut controller)
            .unwrap()
            .heating_setpoints()
    };
    let traces: std::collections::HashSet<Vec<i32>> = (0..4).map(run).collect();
    assert!(
        traces.len() > 1,
        "random-shooting MBRL produced identical traces across seeds"
    );
}

#[test]
fn dt_policy_is_bitwise_deterministic_on_a_fixed_day() {
    // Fig. 5: the extracted tree replays the exact same setpoint trace,
    // run after run.
    let artifacts = run_pipeline(&PipelineConfig::quick(EnvConfig::pittsburgh())).unwrap();
    let run = || {
        let mut policy = artifacts.policy.clone();
        assert!(policy.is_deterministic());
        let mut env = HvacEnv::with_weather_trace(
            EnvConfig::pittsburgh().with_episode_steps(96),
            fixed_day(),
        )
        .unwrap();
        run_episode(&mut env, &mut policy).unwrap().actions()
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first);
    }
}

#[test]
fn whole_pipeline_is_reproducible_across_processes_worth_of_state() {
    // Same config ⇒ identical tree, identical verification counts —
    // nothing in the pipeline depends on ambient randomness.
    let config = PipelineConfig::quick(EnvConfig::tucson());
    let a = run_pipeline(&config).unwrap();
    let b = run_pipeline(&config).unwrap();
    assert_eq!(a.policy.tree(), b.policy.tree());
    assert_eq!(
        a.report.corrected_criterion_2,
        b.report.corrected_criterion_2
    );
    assert_eq!(
        a.report.corrected_criterion_3,
        b.report.corrected_criterion_3
    );
    assert_eq!(a.report.criterion_1, b.report.criterion_1);
}
