//! Property-based invariants of the verification machinery, checked on
//! randomly generated decision-tree policies.
//!
//! The central guarantee of the paper's Algorithm 1 is *universal*: for
//! **any** tree over the policy input space, one verify-and-correct pass
//! leaves no criterion-#2/#3 violations. We test exactly that with
//! randomly fitted trees.

use proptest::prelude::*;
use veri_hvac::control::DtPolicy;
use veri_hvac::dtree::{DecisionTree, TreeConfig};
use veri_hvac::env::space::feature;
use veri_hvac::env::{ActionSpace, ComfortRange, Observation, Policy, POLICY_INPUT_DIM};
use veri_hvac::verify::{correct_leaf, verify_paths, CorrectionStrategy};

/// Builds a random-but-valid DT policy with per-sample occupancy.
fn random_policy_with_occupancy(
    temps: &[f64],
    out_temps: &[f64],
    occupancy: &[f64],
    labels: &[usize],
) -> DtPolicy {
    let space = ActionSpace::new();
    let inputs: Vec<Vec<f64>> = temps
        .iter()
        .zip(out_temps)
        .zip(occupancy)
        .map(|((&t, &o), &occ)| {
            let mut row = [0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = t;
            row[feature::OUTDOOR_TEMPERATURE] = o;
            row[feature::OCCUPANT_COUNT] = occ;
            row.to_vec()
        })
        .collect();
    let labels: Vec<usize> = labels.iter().map(|&l| l % space.len()).collect();
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

/// Builds a random-but-valid DT policy from arbitrary (input, label)
/// pairs.
fn random_policy(temps: &[f64], out_temps: &[f64], labels: &[usize]) -> DtPolicy {
    let space = ActionSpace::new();
    let inputs: Vec<Vec<f64>> = temps
        .iter()
        .zip(out_temps)
        .map(|(&t, &o)| {
            let mut row = [0.0; POLICY_INPUT_DIM];
            row[feature::ZONE_TEMPERATURE] = t;
            row[feature::OUTDOOR_TEMPERATURE] = o;
            row.to_vec()
        })
        .collect();
    let labels: Vec<usize> = labels.iter().map(|&l| l % space.len()).collect();
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    DtPolicy::new(tree).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn correction_always_converges_in_one_pass(
        temps in proptest::collection::vec(5.0f64..40.0, 8..60),
        out_temps in proptest::collection::vec(-20.0f64..40.0, 60),
        labels in proptest::collection::vec(0usize..90, 60),
    ) {
        let n = temps.len();
        let mut policy = random_policy(&temps, &out_temps[..n], &labels[..n]);
        let comfort = ComfortRange::winter();

        let first = verify_paths(&policy, &comfort).unwrap();
        for (leaf, warm, cold, _) in first.merged_by_leaf() {
            correct_leaf(&mut policy, leaf, warm, cold, &comfort, CorrectionStrategy::EditLeaf)
                .unwrap();
        }
        let second = verify_paths(&policy, &comfort).unwrap();
        prop_assert!(second.passed(), "violations survived: {:?}", second.violations);
    }

    #[test]
    fn split_correction_always_converges_in_one_pass(
        temps in proptest::collection::vec(5.0f64..40.0, 8..60),
        out_temps in proptest::collection::vec(-20.0f64..40.0, 60),
        occupancy in proptest::collection::vec(0.0f64..8.0, 60),
        labels in proptest::collection::vec(0usize..90, 60),
    ) {
        let n = temps.len();
        let mut policy = random_policy_with_occupancy(
            &temps,
            &out_temps[..n],
            &occupancy[..n],
            &labels[..n],
        );
        let comfort = ComfortRange::winter();
        let first = verify_paths(&policy, &comfort).unwrap();
        for (leaf, warm, cold, _) in first.merged_by_leaf() {
            correct_leaf(
                &mut policy,
                leaf,
                warm,
                cold,
                &comfort,
                CorrectionStrategy::SplitOnOccupancy,
            )
            .unwrap();
        }
        let second = verify_paths(&policy, &comfort).unwrap();
        prop_assert!(second.passed(), "violations survived: {:?}", second.violations);
    }

    #[test]
    fn verified_policy_actually_behaves_safely(
        temps in proptest::collection::vec(5.0f64..40.0, 8..40),
        out_temps in proptest::collection::vec(-20.0f64..40.0, 40),
        labels in proptest::collection::vec(0usize..90, 40),
        probes in proptest::collection::vec(5.0f64..40.0, 20),
    ) {
        // Semantic restatement of criteria #2/#3: after correction, for
        // any out-of-range zone temperature the commanded setpoints pull
        // the right way.
        let n = temps.len();
        let mut policy = random_policy(&temps, &out_temps[..n], &labels[..n]);
        let comfort = ComfortRange::winter();
        let v = verify_paths(&policy, &comfort).unwrap();
        for (leaf, warm, cold, _) in v.merged_by_leaf() {
            correct_leaf(&mut policy, leaf, warm, cold, &comfort, CorrectionStrategy::EditLeaf)
                .unwrap();
        }

        for &probe in &probes {
            let obs = Observation::new(probe, Default::default());
            let action = policy.decide(&obs);
            if probe > comfort.hi() {
                prop_assert!(
                    f64::from(action.cooling()) < probe,
                    "at {probe} °C (> z̄) the policy cools to {} — not below the zone",
                    action.cooling()
                );
            }
            if probe < comfort.lo() {
                prop_assert!(
                    f64::from(action.heating()) > probe,
                    "at {probe} °C (< z̲) the policy heats to {} — not above the zone",
                    action.heating()
                );
            }
        }
    }

    #[test]
    fn correction_preserves_in_range_behavior(
        temps in proptest::collection::vec(5.0f64..40.0, 8..40),
        labels in proptest::collection::vec(0usize..90, 40),
        probes in proptest::collection::vec(20.5f64..23.0, 10),
    ) {
        // Leaves whose boxes live strictly inside the comfort range are
        // untouched by the correction pass.
        let n = temps.len();
        let out_temps = vec![0.0; n];
        let mut policy = random_policy(&temps, &out_temps, &labels[..n]);
        let comfort = ComfortRange::winter();

        // Record decisions of interior probes whose leaf box is strictly
        // inside the comfort range.
        let interior: Vec<(f64, veri_hvac::env::SetpointAction, bool)> = probes
            .iter()
            .map(|&p| {
                let obs = Observation::new(p, Default::default());
                let x = obs.to_vector();
                let leaf = policy.tree().apply(&x).unwrap();
                let b = policy.tree().leaf_box(leaf).unwrap();
                let side = b.side(feature::ZONE_TEMPERATURE);
                let strictly_inside =
                    side.lo >= comfort.lo() && side.hi <= comfort.hi();
                let mut p2 = policy.clone();
                (p, p2.decide(&obs), strictly_inside)
            })
            .collect();

        let v = verify_paths(&policy, &comfort).unwrap();
        for (leaf, warm, cold, _) in v.merged_by_leaf() {
            correct_leaf(&mut policy, leaf, warm, cold, &comfort, CorrectionStrategy::EditLeaf)
                .unwrap();
        }

        for (p, before, strictly_inside) in interior {
            if strictly_inside {
                let obs = Observation::new(p, Default::default());
                prop_assert_eq!(policy.decide(&obs), before);
            }
        }
    }
}

#[test]
fn correction_count_matches_violation_leaves() {
    // Deterministic spot check: every distinct violating leaf gets
    // corrected exactly once even when it violates both criteria.
    let space = ActionSpace::new();
    let lazy = space.index_of(veri_hvac::env::SetpointAction::off());
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..30 {
        let mut row = [0.0; POLICY_INPUT_DIM];
        row[feature::ZONE_TEMPERATURE] = 5.0 + i as f64 * 1.2;
        inputs.push(row.to_vec());
        labels.push(lazy);
    }
    let tree = DecisionTree::fit(&inputs, &labels, space.len(), &TreeConfig::default()).unwrap();
    // All-lazy policy: likely a single leaf handling everything.
    let policy = DtPolicy::new(tree).unwrap();
    let comfort = ComfortRange::winter();
    let v = verify_paths(&policy, &comfort).unwrap();
    // The single all-covering leaf violates #3 (off() heats to 15 < 20)
    // but not #2 (off() cools to 30 > 23.5 — wait, that IS a violation).
    // off() = (heat 15, cool 30): too-warm states keep cooling sp 30 ≥
    // them (#2 violated), too-cold states keep heating sp 15 ≤ them
    // (#3 violated): both fire on the same leaf.
    assert_eq!(v.criterion_2_count(), 1);
    assert_eq!(v.criterion_3_count(), 1);
    let distinct: std::collections::HashSet<_> = v.violations.iter().map(|x| x.leaf).collect();
    assert_eq!(distinct.len(), 1);
}
