//! Cross-crate behavioral checks of the simulated building under the
//! baseline controllers — the physics sanity layer beneath Fig. 4.

use veri_hvac::control::RuleBasedController;
use veri_hvac::env::{run_episode, ComfortRange, EnvConfig, HvacEnv, Policy, SetpointAction};
use veri_hvac::env::{EpisodeMetrics, Observation};

struct Constant(SetpointAction);
impl Policy for Constant {
    fn decide(&mut self, _o: &Observation) -> SetpointAction {
        self.0
    }
    fn name(&self) -> &str {
        "constant"
    }
    fn is_deterministic(&self) -> bool {
        true
    }
}

fn week(env_config: EnvConfig, policy: &mut impl Policy) -> EpisodeMetrics {
    let mut env = HvacEnv::new(env_config.with_episode_steps(7 * 96)).unwrap();
    run_episode(&mut env, policy).unwrap().metrics
}

#[test]
fn rule_based_controller_keeps_comfort_in_both_cities() {
    for env_config in [EnvConfig::pittsburgh(), EnvConfig::tucson()] {
        let city = env_config.climate.name.clone();
        let mut ctl = RuleBasedController::new(ComfortRange::winter());
        let m = week(env_config, &mut ctl);
        assert!(
            m.violation_rate() < 0.25,
            "{city}: default controller violated {:.0}% of occupied steps",
            100.0 * m.violation_rate()
        );
        assert!(m.total_electric_kwh > 0.0);
    }
}

#[test]
fn pittsburgh_january_needs_more_energy_than_tucson() {
    let run = |env_config: EnvConfig| {
        let mut ctl = RuleBasedController::new(ComfortRange::winter());
        week(env_config, &mut ctl).total_electric_kwh
    };
    let pit = run(EnvConfig::pittsburgh());
    let tuc = run(EnvConfig::tucson());
    assert!(
        pit > 1.5 * tuc,
        "cold-climate heating should dominate: Pittsburgh {pit:.0} kWh vs Tucson {tuc:.0} kWh"
    );
}

#[test]
fn off_policy_saves_energy_but_violates_comfort() {
    // "Off" (heat 15 / cool 30) is not literally zero energy in a
    // Pittsburgh January — the zone can sink below 15 °C — but it must
    // use far less than comfort-holding while violating massively.
    let off = week(
        EnvConfig::pittsburgh(),
        &mut Constant(SetpointAction::off()),
    );
    let hold = week(
        EnvConfig::pittsburgh(),
        &mut Constant(SetpointAction::new(21, 24).unwrap()),
    );
    assert!(off.zone_electric_kwh < 0.7 * hold.zone_electric_kwh);
    assert!(off.violation_rate() > 0.5);
    assert!(hold.violation_rate() < 0.1);
}

#[test]
fn aggressive_heating_eliminates_cold_violations_at_a_cost() {
    let warm = week(
        EnvConfig::pittsburgh(),
        &mut Constant(SetpointAction::new(22, 24).unwrap()),
    );
    let off = week(
        EnvConfig::pittsburgh(),
        &mut Constant(SetpointAction::off()),
    );
    assert!(warm.violation_rate() < off.violation_rate());
    assert!(warm.zone_electric_kwh > off.zone_electric_kwh);
}

#[test]
fn energy_monotone_in_heating_setpoint() {
    let energy = |sp: i32| {
        week(
            EnvConfig::pittsburgh(),
            &mut Constant(SetpointAction::new(sp, 30).unwrap()),
        )
        .zone_electric_kwh
    };
    let e15 = energy(15);
    let e19 = energy(19);
    let e23 = energy(23);
    assert!(e15 <= e19 + 1e-9);
    assert!(e19 < e23);
}

#[test]
fn comfort_rate_and_performance_index_consistent() {
    let mut ctl = RuleBasedController::new(ComfortRange::winter());
    let m = week(EnvConfig::tucson(), &mut ctl);
    let pi = m.performance_index();
    assert!((m.comfort_rate() / m.zone_electric_kwh * 1000.0 - pi).abs() < 1e-9);
}

#[test]
fn summer_scenario_cools_instead_of_heats() {
    // Tucson in July with the paper's summer comfort range: the default
    // controller must hold [23, 26] °C by cooling, and the energy is
    // cooling-dominated.
    let mut ctl = RuleBasedController::new(ComfortRange::summer());
    let m = week(EnvConfig::tucson_summer(), &mut ctl);
    // The margin tolerates seed/weather-draw variation: a July week in
    // Tucson routinely exceeds the deadband controller's capacity for
    // ~a quarter of occupied steps, and the exact rate moves a couple
    // of points with the sampled weather.
    assert!(
        m.violation_rate() < 0.30,
        "summer default controller violated {:.0}%",
        100.0 * m.violation_rate()
    );
    assert!(m.zone_electric_kwh > 5.0, "no cooling energy used");
}

#[test]
fn summer_pipeline_extracts_a_cooling_policy() {
    use veri_hvac::pipeline::{run_pipeline, PipelineConfig};
    let artifacts = run_pipeline(&PipelineConfig::quick(EnvConfig::tucson_summer())).unwrap();
    // The extracted policy must actively cool a too-warm occupied zone
    // (verification criterion #2 guarantees this for reachable states).
    let mut policy = artifacts.policy;
    let obs = veri_hvac::env::Observation::new(
        28.0,
        veri_hvac::env::Disturbances {
            outdoor_temperature: 35.0,
            relative_humidity: 30.0,
            wind_speed: 3.0,
            solar_radiation: 700.0,
            occupant_count: 5.0,
            hour_of_day: 14.0,
        },
    );
    let action = policy.decide(&obs);
    assert!(
        f64::from(action.cooling()) < 28.0,
        "summer policy refuses to cool: {action}"
    );
}
