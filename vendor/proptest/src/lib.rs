//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in containers with no registry access, so the
//! external `proptest` dev-dependency is replaced by this vendored
//! subset. It keeps proptest's surface syntax — the [`proptest!`]
//! macro with `name in strategy` parameters and an optional
//! `#![proptest_config(..)]` header, [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_oneof!`], [`strategy::Just`],
//! `Strategy::prop_map`, `collection::{vec, hash_set}`,
//! `array::uniform7`, and `bool::ANY` — on top of a deterministic
//! random-case runner.
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case panics with the plain assertion message), and each
//! test's case stream is seeded from a hash of the test's name, so
//! runs are reproducible build-to-build rather than driven by an
//! external entropy source.

#![forbid(unsafe_code)]

/// Config and the deterministic case generator.
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// xoshiro256++ seeded via SplitMix64 from a name hash: every
    /// property test gets its own stable, platform-independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for the named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name picks the seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased draw in `[0, bound)` via Lemire-style rejection.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below zero");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let wide = u128::from(self.next_u64()) * u128::from(bound);
                if (wide as u64) >= threshold {
                    return (wide >> 64) as u64;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident),+)),+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies!((A, B), (A, B, C), (A, B, C, D));
}

/// Collection strategies: `vec` and `hash_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec`] and [`hash_set`]: an exact `usize`
    /// or a half-open `Range<usize>`.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy producing `Vec`s of `element` with lengths in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `HashSet`s of `element` with target sizes
    /// in `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates hash sets whose elements come from `element`; draws
    /// extra candidates to absorb duplicates, so the element domain
    /// must comfortably exceed the requested size.
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        Z: SizeRange,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(50) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `[S::Value; 7]`.
    #[derive(Debug, Clone)]
    pub struct Uniform7<S>(S);

    /// Generates 7-element arrays from one element strategy.
    pub fn uniform7<S: Strategy>(element: S) -> Uniform7<S> {
        Uniform7(element)
    }

    impl<S: Strategy> Strategy for Uniform7<S> {
        type Value = [S::Value; 7];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)
/// { .. }` becomes a plain test that runs the body over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion backend for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let _ = case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current generated case when the assumption fails.
///
/// Expands to a `continue` targeting the per-case loop, so it must be
/// used at the top level of a property body (the position upstream
/// proptest requires in practice), not inside a nested loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniformly picks one of several strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($option)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..2000 {
            let x = (-3.0f64..3.0).generate(&mut rng);
            assert!((-3.0..3.0).contains(&x));
            let k = (15i32..=23).generate(&mut rng);
            assert!((15..=23).contains(&k));
            let n = (1usize..40).generate(&mut rng);
            assert!((1..40).contains(&n));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::deterministic("collections_hit_requested_sizes");
        for _ in 0..200 {
            let v = crate::collection::vec(-10.0f64..10.0, 1..20).generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            let nested =
                crate::collection::vec(crate::collection::vec(0u64..5, 3), 2..6).generate(&mut rng);
            assert!(nested.iter().all(|row| row.len() == 3));
            let set = crate::collection::hash_set(0i32..1000, 2..60).generate(&mut rng);
            assert!((2..60).contains(&set.len()));
            let arr = crate::array::uniform7(-1e3f64..1e3).generate(&mut rng);
            assert_eq!(arr.len(), 7);
        }
    }

    #[test]
    fn oneof_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("oneof_map_and_tuples_compose");
        let strat = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mapped = crate::collection::vec(0u64..10, 4).prop_map(|v| v.iter().sum::<u64>());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x = strat.generate(&mut rng);
            assert!((1..=3).contains(&x));
            seen[(x - 1) as usize] = true;
            let total = mapped.generate(&mut rng);
            assert!(total <= 36);
            let (a, b) = (0usize..20, 0usize..3).generate(&mut rng);
            assert!(a < 20 && b < 3);
            let flag = crate::bool::ANY.generate(&mut rng);
            let _ = flag;
        }
        assert!(seen.iter().all(|&s| s), "all oneof branches taken");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_with_config(x in 0.0f64..1.0, flip in crate::bool::ANY) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(u8::from(flip) <= 1);
        }
    }

    proptest! {
        #[test]
        fn macro_runs_with_default_config(n in 1usize..9) {
            prop_assert!((1..9).contains(&n));
        }
    }
}
