//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses exactly one crossbeam API —
//! [`thread::scope`] with [`thread::Scope::spawn`] — which `std` has
//! provided natively since 1.63. This shim keeps crossbeam's call
//! shape (spawn closures take a `&Scope` argument; `scope` returns a
//! `Result` that is `Err` when a child panic escaped unjoined) on top
//! of [`std::thread::scope`].

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned closures receive a reference to it so
    /// they can spawn siblings.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; joining yields the closure's
    /// return value or the payload of its panic.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be
    /// spawned; all are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the closure (or an unjoined child
    /// thread) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_surfaces_through_join() {
        let result = thread::scope(|scope| {
            let handle = scope.spawn(|_| -> u32 { panic!("boom") });
            handle.join()
        })
        .expect("scope itself survives a joined child panic");
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let n = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
