//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no registry access, so the
//! external `rand` dependency is replaced by this vendored subset with
//! the same module layout and trait surface the workspace actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator underneath is xoshiro256++ seeded through SplitMix64
//! — deterministic, high-quality, and seed-for-seed stable across
//! platforms, which is all the workspace's reproducibility story needs.
//! Numeric streams differ from upstream `rand`; nothing in the
//! workspace pins golden values to upstream streams.

#![forbid(unsafe_code)]

/// The core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type the range yields.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let bits = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(bits) * u128::from(bound);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing extension trait, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let k = rng.gen_range(15i32..=23);
            assert!((15..=23).contains(&k));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 100-element shuffle is not identity");
    }
}
