//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in containers with no registry access, so the
//! external `criterion` dev-dependency is replaced by this vendored
//! harness exposing the same call shape the benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical engine it runs a short
//! warm-up, auto-calibrates an iteration count per sample, collects
//! `sample_size` samples, and prints min/median/mean per-iteration
//! times. That is enough to eyeball regressions locally; it makes no
//! claim of criterion-grade rigour.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut ns = bencher.per_iter_ns;
        if ns.is_empty() {
            println!("{}/{}: no measurements (iter never called)", self.name, id);
            return self;
        }
        ns.sort_unstable_by(f64::total_cmp);
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!(
            "{}/{}: min {:.1} ns, median {:.1} ns, mean {:.1} ns ({} samples)",
            self.name,
            id,
            ns[0],
            median,
            mean,
            ns.len()
        );
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure to time the routine under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording per-iteration
    /// nanoseconds across the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and calibrate: grow the batch until one batch takes
        // at least ~1 ms, so timer resolution stays negligible.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= (1 << 24) {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        self.per_iter_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9;
            self.per_iter_ns.push(ns / iters_per_sample as f64);
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` invoking each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0, "routine was executed");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("demo")
            .sample_size(2)
            .bench_function(format!("string_id_{}", 1), |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn group_macro_produces_runner() {
        demo_group();
    }
}
